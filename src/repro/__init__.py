"""repro — a complete reproduction of AVMON (Morales & Gupta, ICDCS 2007).

AVMON selects and discovers *consistent availability-monitoring overlays*:
for every node ``x`` a pinging set ``PS(x)`` that is consistent, verifiable
and random, discovered scalably through gossiped coarse views.

Quick start — declare a scenario, run it, read the summary::

    from repro import Scenario, run

    summary = run(Scenario(model="SYNTH", n=100, scale="test"))
    print(summary.average_discovery_time())

Sweep a parameter grid across seed replications on every core::

    from repro import Scenario, sweep

    results = sweep(
        Scenario(model="SYNTH", scale="test"),
        grid={"n": [60, 120, 240]},
        seeds=3,
        jobs=4,
    )
    for (n,), group in results.group_by("n").items():
        print(n, group.mean("average_discovery_time"))

Scenarios are fully serialisable (``Scenario.from_json(s.to_json())``),
name every component — churn model, latency model, trace generator — by
its :mod:`repro.registry` key, and accept third-party components
registered with ``@register("churn", "MY-MODEL")``.

The original imperative API still works unchanged (legacy shim)::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(model="SYNTH", n=100,
                                             duration=3600, warmup=600))
    print(result.average_discovery_time())

Packages:

* :mod:`repro.core` — the protocol (hashing, condition, node, analysis);
* :mod:`repro.sim` / :mod:`repro.net` — event engine and network substrate;
* :mod:`repro.churn` / :mod:`repro.traces` — churn models and traces;
* :mod:`repro.baselines` — Broadcast, Central, Self-report, DHT, Cyclon;
* :mod:`repro.registry` — the pluggable component registry;
* :mod:`repro.api` — declarative scenarios, sweeps and result sets;
* :mod:`repro.experiments` — every figure/table of the paper's evaluation,
  plus the parallel sweep orchestrator;
* :mod:`repro.metrics` — collectors and statistics.
"""

from .core import (
    AvmonConfig,
    AvmonNode,
    ConsistencyCondition,
    MonitorRelation,
    NodeId,
    hash_pair,
    optimal,
    verify_monitor_report,
)
from .experiments import (
    SimulationConfig,
    SimulationResult,
    SimulationSummary,
    run_experiment,
    run_simulation,
    scenario,
)
from .api import ResultSet, Scenario, run, sweep
from .registry import (
    UnknownComponentError,
    component_kinds,
    component_names,
    register,
    resolve,
)
from .traces import (
    AvailabilityTrace,
    generate_overnet_trace,
    generate_planetlab_trace,
)

__version__ = "2.0.0"

__all__ = [
    "AvailabilityTrace",
    "AvmonConfig",
    "AvmonNode",
    "ConsistencyCondition",
    "MonitorRelation",
    "NodeId",
    "ResultSet",
    "Scenario",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSummary",
    "UnknownComponentError",
    "__version__",
    "component_kinds",
    "component_names",
    "generate_overnet_trace",
    "generate_planetlab_trace",
    "hash_pair",
    "optimal",
    "register",
    "resolve",
    "run",
    "run_experiment",
    "run_simulation",
    "scenario",
    "sweep",
    "verify_monitor_report",
]
