"""repro — a complete reproduction of AVMON (Morales & Gupta, ICDCS 2007).

AVMON selects and discovers *consistent availability-monitoring overlays*:
for every node ``x`` a pinging set ``PS(x)`` that is consistent, verifiable
and random, discovered scalably through gossiped coarse views.

Quick start::

    from repro import AvmonConfig, SimulationConfig, run_simulation

    config = SimulationConfig(model="SYNTH", n=100, duration=3600, warmup=600)
    result = run_simulation(config)
    print(result.average_discovery_time())

Packages:

* :mod:`repro.core` — the protocol (hashing, condition, node, analysis);
* :mod:`repro.sim` / :mod:`repro.net` — event engine and network substrate;
* :mod:`repro.churn` / :mod:`repro.traces` — churn models and traces;
* :mod:`repro.baselines` — Broadcast, Central, Self-report, DHT;
* :mod:`repro.experiments` — every figure/table of the paper's evaluation;
* :mod:`repro.metrics` — collectors and statistics.
"""

from .core import (
    AvmonConfig,
    AvmonNode,
    ConsistencyCondition,
    MonitorRelation,
    NodeId,
    hash_pair,
    optimal,
    verify_monitor_report,
)
from .experiments import (
    SimulationConfig,
    SimulationResult,
    run_experiment,
    run_simulation,
    scenario,
)
from .traces import (
    AvailabilityTrace,
    generate_overnet_trace,
    generate_planetlab_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AvailabilityTrace",
    "AvmonConfig",
    "AvmonNode",
    "ConsistencyCondition",
    "MonitorRelation",
    "NodeId",
    "SimulationConfig",
    "SimulationResult",
    "__version__",
    "generate_overnet_trace",
    "generate_planetlab_trace",
    "hash_pair",
    "optimal",
    "run_experiment",
    "run_simulation",
    "scenario",
    "verify_monitor_report",
]
