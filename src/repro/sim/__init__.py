"""Discrete-event simulation substrate (engine, periodic processes, RNG)."""

from .engine import EventHandle, Simulator
from .process import PeriodicProcess
from .randomness import RandomSource

__all__ = ["EventHandle", "PeriodicProcess", "RandomSource", "Simulator"]
