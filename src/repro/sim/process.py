"""Periodic processes on top of the event engine.

AVMON nodes run two periodic activities (the protocol tick of Figure 2 and
the monitoring tick of Section 3.3) whose periods are "fixed at nodes, but
are executed asynchronously across nodes".  :class:`PeriodicProcess`
implements exactly that: a fixed period, a per-node random phase, and a
guard predicate so a process attached to a node that has left the system
stays silent until the node rejoins and restarts it.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import EventHandle, Simulator

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Repeats a callback every *period* seconds until stopped."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        guard: Optional[Callable[[], bool]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.guard = guard
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, rng: random.Random, *, phase: Optional[float] = None) -> None:
        """Begin ticking; first tick after *phase* seconds (random if None).

        A uniformly random phase in ``[0, period)`` is what spreads node
        ticks across each protocol period and produces the sub-period
        discovery times of Figures 3-5.
        """
        if self._running:
            return
        if phase is None:
            phase = rng.random() * self.period
        if phase < 0:
            raise ValueError(f"phase must be non-negative, got {phase}")
        self._running = True
        self._handle = self.sim.schedule(phase, self._fire)

    def stop(self) -> None:
        """Stop ticking; safe to call repeatedly and to restart later."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._handle = self.sim.schedule(self.period, self._fire)
        if self.guard is None or self.guard():
            self.callback()
