"""Discrete-event simulation engine.

A minimal but complete event scheduler: a binary heap of timestamped
callbacks with stable FIFO ordering among simultaneous events, O(1)
cancellation through handles, and bounded runs (`run_until`).  The paper's
evaluation is a trace-driven discrete-event simulation (Section 5); this is
the substrate it runs on.

Design notes
------------

* Events scheduled for the same instant fire in scheduling order (a sequence
  counter breaks heap ties), which keeps runs deterministic for a fixed seed.
* Every heap entry is a 4-tuple.  :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at` return a cancellable :class:`EventHandle`
  and push ``(time, seq, handle, None)``.  :meth:`Simulator.schedule_call` /
  :meth:`Simulator.schedule_call_at` are the allocation-lean fast path for
  the overwhelmingly common never-cancelled events (message deliveries,
  periodic ticks): they push ``(time, seq, fn, args)`` — no handle object,
  no closure — and return nothing.  Both entry kinds carry ``fn(*args)``
  directly, so callers pass bound methods plus arguments instead of
  allocating a lambda per event.  The heap's tie-break never reaches the
  third element (``seq`` is unique), so the two shapes coexist safely.
* Cancellation marks the handle and leaves the entry in the heap; the pop
  loop discards dead entries.  This keeps cancel O(1) — important because
  every churn transition cancels its predecessor.  When dead entries exceed
  half the queue the heap is compacted *in place* (``_queue`` keeps its
  identity, so hot-path callers may cache a reference to it), so multi-hour
  runs whose cancels outpace their pops no longer grow the heap without
  bound.
* ``Network.send`` pushes delivery entries onto ``_queue`` directly (see
  :mod:`repro.net.network`); the entry layout above and the queue's stable
  identity are the contract it relies on.
* The engine knows nothing about nodes or networks; higher layers compose it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

__all__ = ["EventHandle", "Simulator"]

#: Compaction never triggers below this many dead entries: rebuilding a tiny
#: heap costs more than carrying a handful of corpses to their pop.
_COMPACT_MIN_DEAD = 64


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"],
    ) -> None:
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self.cancelled = True
        live = self.callback is not None
        self.callback = None  # release captured state eagerly
        self.args = ()
        sim = self._sim
        self._sim = None
        if live and sim is not None:
            sim._note_cancelled()


class Simulator:
    """Priority-queue discrete-event scheduler."""

    __slots__ = ("now", "_queue", "_counter", "_processed", "_dead", "_compactions")

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulated time, in seconds (read-only for callers).
        self.now = start_time
        self._queue: List[tuple] = []
        self._counter = itertools.count()
        self._processed = 0
        self._dead = 0
        self._compactions = 0

    @property
    def processed_events(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._processed

    @property
    def heap_compactions(self) -> int:
        """In-place heap compactions performed so far (diagnostics)."""
        return self._compactions

    def pending_events(self) -> int:
        """Events still queued, including cancelled ones not yet reaped."""
        return len(self._queue)

    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying the heap (diagnostics/tests)."""
        return self._dead

    # -- scheduling --------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Run ``callback(*args)`` after *delay* seconds; cancellable."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        handle = EventHandle(callback, args, self)
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), handle, None)
        )
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time *time*."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        handle = EventHandle(callback, args, self)
        heapq.heappush(self._queue, (time, next(self._counter), handle, None))
        return handle

    def schedule_call(self, delay: float, fn: Callable[..., None], *args) -> None:
        """Fast path of :meth:`schedule` for events that are never cancelled.

        No handle is allocated (and none returned): the heap entry carries
        the callable and its arguments directly.  Use for message delivery
        and other fire-and-forget work; use :meth:`schedule` when the caller
        might need to cancel.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        heapq.heappush(
            self._queue, (self.now + delay, next(self._counter), fn, args)
        )

    def schedule_call_at(self, time: float, fn: Callable[..., None], *args) -> None:
        """Absolute-time variant of :meth:`schedule_call`."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), fn, args))

    # -- cancellation bookkeeping ------------------------------------------

    def _note_cancelled(self) -> None:
        """One handle died; compact the heap once corpses pass 50 %.

        Compaction is in place — ``_queue`` keeps its identity — so callers
        that cache the queue reference (the network's send fast path) stay
        valid across compactions.
        """
        dead = self._dead + 1
        queue = self._queue
        if dead >= _COMPACT_MIN_DEAD and dead * 2 > len(queue):
            queue[:] = [
                entry
                for entry in queue
                if entry[3] is not None or not entry[2].cancelled
            ]
            heapq.heapify(queue)
            self._dead = 0
            self._compactions += 1
        else:
            self._dead = dead

    # -- execution ---------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Execute all events with timestamp <= *end_time*, then stop.

        The clock is left at *end_time* even if the queue drains earlier, so
        back-to-back windows compose cleanly.
        """
        if end_time < self.now:
            raise ValueError(
                f"end_time {end_time} precedes current time {self.now}"
            )
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        try:
            while queue and queue[0][0] <= end_time:
                time, _, fn, args = pop(queue)
                if args is None:
                    handle = fn
                    if handle.cancelled:
                        self._dead -= 1
                        continue
                    fn = handle.callback
                    args = handle.args
                    handle.callback = None
                    handle.args = ()
                    handle._sim = None
                self.now = time
                executed += 1
                fn(*args)
        finally:
            # Added as a delta so a reentrant run_until inside a callback
            # keeps its own counts.
            self._processed += executed
        self.now = end_time

    def run(self, duration: float) -> None:
        """Convenience wrapper: run for *duration* seconds from now."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.run_until(self.now + duration)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (tests); returns events executed.

        Raises RuntimeError if more than *max_events* fire, which catches
        accidental self-perpetuating schedules in unit tests.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _, fn, args = pop(queue)
            if args is None:
                handle = fn
                if handle.cancelled:
                    self._dead -= 1
                    continue
                fn = handle.callback
                args = handle.args
                handle.callback = None
                handle.args = ()
                handle._sim = None
            self.now = time
            self._processed += 1
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"run_all exceeded {max_events} events")
            fn(*args)
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={len(self._queue)})"
