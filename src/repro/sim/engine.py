"""Discrete-event simulation engine.

A minimal but complete event scheduler: a binary heap of timestamped
callbacks with stable FIFO ordering among simultaneous events, O(1)
cancellation through handles, and bounded runs (`run_until`).  The paper's
evaluation is a trace-driven discrete-event simulation (Section 5); this is
the substrate it runs on.

Design notes
------------

* Events scheduled for the same instant fire in scheduling order (a sequence
  counter breaks heap ties), which keeps runs deterministic for a fixed seed.
* Cancellation marks the handle and leaves the entry in the heap; the pop
  loop discards dead entries.  This keeps cancel O(1) — important because
  every answered ping cancels a timeout.
* The engine knows nothing about nodes or networks; higher layers compose it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self.cancelled = True
        self.callback = None  # release captured state eagerly


class Simulator:
    """Priority-queue discrete-event scheduler."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: List[tuple] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._processed

    def pending_events(self) -> int:
        """Events still queued, including cancelled ones not yet reaped."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, (time, next(self._counter), handle))
        return handle

    def run_until(self, end_time: float) -> None:
        """Execute all events with timestamp <= *end_time*, then stop.

        The clock is left at *end_time* even if the queue drains earlier, so
        back-to-back windows compose cleanly.
        """
        if end_time < self._now:
            raise ValueError(
                f"end_time {end_time} precedes current time {self._now}"
            )
        queue = self._queue
        while queue and queue[0][0] <= end_time:
            time, _, handle = heapq.heappop(queue)
            if handle.cancelled:
                continue
            self._now = time
            callback = handle.callback
            handle.callback = None
            self._processed += 1
            callback()
        self._now = end_time

    def run(self, duration: float) -> None:
        """Convenience wrapper: run for *duration* seconds from now."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.run_until(self._now + duration)

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely (tests); returns events executed.

        Raises RuntimeError if more than *max_events* fire, which catches
        accidental self-perpetuating schedules in unit tests.
        """
        executed = 0
        queue = self._queue
        while queue:
            time, _, handle = heapq.heappop(queue)
            if handle.cancelled:
                continue
            self._now = time
            callback = handle.callback
            handle.callback = None
            self._processed += 1
            executed += 1
            if executed > max_events:
                raise RuntimeError(f"run_all exceeded {max_events} events")
            callback()
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"
