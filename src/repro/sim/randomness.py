"""Deterministic random-stream management.

Every stochastic component of a simulation (each node, the churn model, the
latency model, the trace generator) draws from its own named substream
derived from a single experiment seed.  Substreams are independent of the
order in which they are created, so adding a collector or reordering node
construction does not perturb an experiment's randomness — a property the
regression tests rely on.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomSource"]


class RandomSource:
    """Root seed from which named, reproducible substreams are derived."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, *name_parts) -> random.Random:
        """A :class:`random.Random` keyed by ``(seed, *name_parts)``.

        The same name always yields an identically seeded generator; distinct
        names yield statistically independent generators (seeds are derived
        through BLAKE2b, so adjacent names do not produce adjacent seeds).
        """
        label = ":".join(str(part) for part in name_parts)
        material = f"{self.seed}|{label}".encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def node_stream(self, node_id: int) -> random.Random:
        """Convenience wrapper for per-node protocol randomness."""
        return self.stream("node", node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed})"
