"""Small shared I/O helpers."""

from __future__ import annotations

import itertools
import os
import pathlib
from typing import Union

__all__ = ["atomic_write_text"]

#: Per-process scratch-name serial: two writes of the same target from
#: one process (e.g. two daemon handler turns interleaving with a slow
#: filesystem) never share a temp file, so the final ``os.replace`` is
#: the only point where writers meet — single-writer rename discipline.
_scratch_serial = itertools.count()


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    Concurrent readers never observe a partial file; the pid+serial
    temp name keeps concurrent writers — across processes *and* within
    one — from clobbering each other's scratch.  Raises ``OSError`` on
    failure after removing the temp file — callers decide whether a
    failed write is fatal (a node state snapshot is not; see the summary
    store for the warn-and-continue variant).
    """
    target = pathlib.Path(path)
    tmp = target.with_name(
        f"{target.name}.tmp{os.getpid()}.{next(_scratch_serial)}"
    )
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, target)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
