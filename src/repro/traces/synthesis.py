"""Shared machinery for synthetic trace generation.

Both the PlanetLab-like and Overnet-like generators model each node as an
alternating-renewal process: exponentially distributed up-sessions and
down-times whose means are derived from a per-node target availability and
a characteristic cycle length.  Event times can be snapped to a measurement
grid (1 s for PlanetLab, 20 min for Overnet) to reproduce the granularity
at which the original traces were collected.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .format import NodeTrace, Session

__all__ = ["alternating_renewal_sessions", "snap_sessions", "renewal_node_trace"]


def alternating_renewal_sessions(
    rng: random.Random,
    start: float,
    end: float,
    mean_up: float,
    mean_down: float,
    *,
    starts_up: Optional[bool] = None,
) -> List[Session]:
    """Sessions of one node alternating Exp(mean_up)/Exp(mean_down) on
    ``[start, end)``.

    When *starts_up* is None the initial state is drawn from the stationary
    distribution (up with probability ``mean_up / (mean_up + mean_down)``),
    which avoids a transient at the start of the trace.
    """
    if end <= start:
        raise ValueError(f"end ({end}) must exceed start ({start})")
    if mean_up <= 0 or mean_down <= 0:
        raise ValueError(
            f"means must be positive, got up={mean_up}, down={mean_down}"
        )
    availability = mean_up / (mean_up + mean_down)
    up = rng.random() < availability if starts_up is None else starts_up
    sessions: List[Session] = []
    cursor = start
    while cursor < end:
        if up:
            length = rng.expovariate(1.0 / mean_up)
            session_end = min(cursor + length, end)
            if session_end > cursor:
                sessions.append(Session(cursor, session_end))
            cursor = session_end
        else:
            cursor += rng.expovariate(1.0 / mean_down)
        up = not up
    return sessions


def snap_sessions(sessions: List[Session], grid: float, end: float) -> List[Session]:
    """Round session boundaries to multiples of *grid*, merging collisions.

    Zero-length sessions after rounding are dropped; sessions whose rounded
    boundaries touch or overlap are merged — exactly the information loss a
    20-minute crawler (the Overnet measurement) introduces.
    """
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    snapped: List[Session] = []
    for session in sessions:
        start = round(session.start / grid) * grid
        stop = round(session.end / grid) * grid
        stop = min(stop, end)
        if stop <= start:
            continue
        if snapped and start <= snapped[-1].end:
            previous = snapped.pop()
            start = previous.start
            stop = max(stop, previous.end)
        snapped.append(Session(start, stop))
    return snapped


def renewal_node_trace(
    node_id: int,
    rng: random.Random,
    *,
    birth: float,
    trace_end: float,
    availability: float,
    cycle: float,
    grid: Optional[float] = None,
    death: Optional[float] = None,
) -> NodeTrace:
    """Build one node's trace from a target availability and cycle length.

    ``mean_up = availability * cycle`` and ``mean_down = (1-a) * cycle``, so
    the stationary availability matches the target while ``cycle`` controls
    session granularity.  Lifetime is ``[birth, death or trace_end)``.
    """
    if not 0.0 < availability < 1.0:
        raise ValueError(
            f"availability must be strictly inside (0, 1), got {availability}"
        )
    if cycle <= 0:
        raise ValueError(f"cycle must be positive, got {cycle}")
    lifetime_end = trace_end if death is None else min(death, trace_end)
    sessions: List[Session] = []
    if lifetime_end > birth:
        sessions = alternating_renewal_sessions(
            rng,
            birth,
            lifetime_end,
            mean_up=availability * cycle,
            mean_down=(1.0 - availability) * cycle,
            # A freshly born node starts its life online.
            starts_up=True if birth > 0 else None,
        )
        if grid is not None:
            sessions = snap_sessions(sessions, grid, lifetime_end)
    return NodeTrace(node_id, sessions, death=death)
