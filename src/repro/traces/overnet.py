"""Synthetic Overnet-like availability traces.

The paper injects churn traces of the Overnet p2p system collected by
Bhagwan et al. [2]: availabilities of all hosts probed once every 20
minutes, a stable alive size of ≈ 550, roughly 20 %-per-hour churn, and
heavy birth/death — 1319 distinct nodes seen after two days.  Those traces
are not redistributable, so this generator synthesises a population with the
same published calibration targets:

* initial population sized so the *stable alive* count is ``n_stable``,
* per-node availability drawn around 0.5 (typical p2p hosts),
* renewal cycles short enough to produce ≈ 20 %/h join/leave churn,
* a Poisson birth process and a matching death process so the number of
  distinct nodes grows toward the paper's ``N_longterm`` while the alive
  count stays stable,
* all events snapped to the 20-minute measurement grid.

The calibration tests in ``tests/traces`` assert these targets hold.
"""

from __future__ import annotations

from typing import List

from ..registry import register
from ..sim.randomness import RandomSource
from .format import AvailabilityTrace, NodeTrace
from .synthesis import renewal_node_trace

__all__ = ["OVERNET_N", "OVERNET_GRID", "generate_overnet_trace"]

#: Stable alive size of the paper's OV experiments.
OVERNET_N = 550

#: Overnet measurement granularity: one probe sweep every 20 minutes.
OVERNET_GRID = 20 * 60.0


def generate_overnet_trace(
    n_stable: int = OVERNET_N,
    duration: float = 48 * 3600.0,
    seed: int = 0,
    *,
    availability_alpha: float = 4.0,
    availability_beta: float = 4.0,
    cycle: float = 8 * 3600.0,
    births_per_hour: float = 4.6,
    grid: float = OVERNET_GRID,
) -> AvailabilityTrace:
    """Generate an Overnet-like trace.

    Population dynamics: the trace starts with ``2·n_stable`` incumbents
    whose stationary availability averages 0.5 (so ≈ ``n_stable`` are up at
    any instant).  Births arrive Poisson at *births_per_hour* and every
    node's lifetime is exponential with mean ``population / birth-rate``, so
    deaths balance births and the alive count stays stationary.  With the
    defaults over 48 hours this yields ``2·550 + 4.6·48 ≈ 1320`` distinct
    nodes (the paper's N_longterm = 1319) at a stable alive count ≈ 550.
    All birth and death instants are snapped to the 20-minute measurement
    grid, like every other event.
    """
    if n_stable <= 0:
        raise ValueError(f"n_stable must be positive, got {n_stable}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if births_per_hour < 0:
        raise ValueError(f"births_per_hour must be >= 0, got {births_per_hour}")
    source = RandomSource(seed)
    population_rng = source.stream("overnet", "population")

    nodes: List[NodeTrace] = []
    next_id = 0

    def draw_availability(rng) -> float:
        value = rng.betavariate(availability_alpha, availability_beta)
        return min(0.95, max(0.05, value))

    # With births arriving at rate lambda into a population of P nodes,
    # stationarity requires every node (incumbent or newborn) to die at rate
    # lambda/P, i.e. exponential lifetimes with mean P/lambda.
    initial_count = 2 * n_stable
    birth_rate_per_second = births_per_hour / 3600.0
    mean_lifetime = (
        initial_count / birth_rate_per_second if birth_rate_per_second > 0 else None
    )

    def snap(value: float) -> float:
        return round(value / grid) * grid

    def draw_death(birth_time: float):
        if mean_lifetime is None:
            return None
        death = snap(birth_time + population_rng.expovariate(1.0 / mean_lifetime))
        return death if death < duration else None

    # Incumbent population: 2*n_stable nodes, stationary availability ~0.5.
    for _ in range(initial_count):
        node_id = next_id
        next_id += 1
        rng = source.stream("overnet", "node", node_id)
        nodes.append(
            renewal_node_trace(
                node_id,
                rng,
                birth=0.0,
                trace_end=duration,
                availability=draw_availability(rng),
                cycle=cycle,
                grid=grid,
                death=draw_death(0.0),
            )
        )

    # Birth process: Poisson arrivals, each with the same lifetime law.
    if birth_rate_per_second > 0:
        cursor = population_rng.expovariate(birth_rate_per_second)
        while cursor < duration:
            node_id = next_id
            next_id += 1
            rng = source.stream("overnet", "node", node_id)
            birth = min(snap(cursor), duration - grid)
            nodes.append(
                renewal_node_trace(
                    node_id,
                    rng,
                    birth=birth,
                    trace_end=duration,
                    availability=draw_availability(rng),
                    cycle=cycle,
                    grid=grid,
                    death=draw_death(birth),
                )
            )
            cursor += population_rng.expovariate(birth_rate_per_second)

    return AvailabilityTrace(duration, nodes)


register("trace", "OV", generate_overnet_trace)
