"""Availability-trace data model.

A trace records, for every node, the sessions during which it was alive,
plus an optional death time after which it never returns.  Traces drive the
simulator's churn (classes (II) and (III) of Section 5: PlanetLab and
Overnet) and are what the synthetic generators in this package produce.

Invariants (validated on construction, property-tested in the suite):

* sessions are chronologically sorted and strictly non-overlapping,
* every session has positive length and lies within ``[0, duration]``,
* a node's death (if any) is no earlier than its last session's end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Session", "NodeTrace", "AvailabilityTrace", "TraceEvent"]


@dataclass(frozen=True)
class Session:
    """One contiguous up-interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"session start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"session end ({self.end}) must exceed start ({self.start})"
            )

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end

    def overlap(self, window_start: float, window_end: float) -> float:
        """Length of intersection with ``[window_start, window_end)``."""
        return max(0.0, min(self.end, window_end) - max(self.start, window_start))


@dataclass(frozen=True)
class TraceEvent:
    """One churn event: ``kind`` is ``"join"`` or ``"leave"``."""

    time: float
    kind: str
    node_id: int


class NodeTrace:
    """All sessions of one node, plus optional death."""

    __slots__ = ("node_id", "sessions", "death")

    def __init__(
        self,
        node_id: int,
        sessions: Iterable[Session],
        death: Optional[float] = None,
    ) -> None:
        ordered = tuple(sorted(sessions, key=lambda s: s.start))
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"node {node_id}: sessions overlap "
                    f"([{earlier.start}, {earlier.end}) and "
                    f"[{later.start}, {later.end}))"
                )
        if death is not None and ordered and death < ordered[-1].end:
            raise ValueError(
                f"node {node_id}: death ({death}) precedes last session end "
                f"({ordered[-1].end})"
            )
        self.node_id = node_id
        self.sessions = ordered
        self.death = death

    @property
    def birth(self) -> Optional[float]:
        """Time of first appearance (None if the node never shows up)."""
        return self.sessions[0].start if self.sessions else None

    def alive_at(self, time: float) -> bool:
        for session in self.sessions:
            if session.contains(time):
                return True
            if session.start > time:
                return False
        return False

    def uptime(self, window_start: float, window_end: float) -> float:
        """Total up-time within ``[window_start, window_end)``."""
        if window_end < window_start:
            raise ValueError(
                f"window end ({window_end}) must be >= start ({window_start})"
            )
        return sum(s.overlap(window_start, window_end) for s in self.sessions)

    def availability(self, window_start: float, window_end: float) -> float:
        """Fraction of ``[window_start, window_end)`` the node was up."""
        length = window_end - window_start
        if length <= 0:
            return 0.0
        return self.uptime(window_start, window_end) / length

    def session_lengths(self) -> Tuple[float, ...]:
        return tuple(s.length for s in self.sessions)


class AvailabilityTrace:
    """A complete trace: every node's sessions over ``[0, duration]``."""

    def __init__(self, duration: float, nodes: Iterable[NodeTrace]) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.duration = duration
        self.nodes: Dict[int, NodeTrace] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id}")
            if node.sessions and node.sessions[-1].end > duration + 1e-9:
                raise ValueError(
                    f"node {node.node_id}: session ends at "
                    f"{node.sessions[-1].end}, beyond duration {duration}"
                )
            self.nodes[node.node_id] = node

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node(self, node_id: int) -> NodeTrace:
        return self.nodes[node_id]

    def alive_count_at(self, time: float) -> int:
        return sum(1 for node in self.nodes.values() if node.alive_at(time))

    def events(self) -> List[TraceEvent]:
        """All join/leave events, chronologically sorted (FIFO on ties)."""
        out: List[TraceEvent] = []
        for node in self.nodes.values():
            for session in node.sessions:
                out.append(TraceEvent(session.start, "join", node.node_id))
                out.append(TraceEvent(session.end, "leave", node.node_id))
        out.sort(key=lambda e: (e.time, e.kind, e.node_id))
        return out

    def born_before(self, time: float) -> int:
        """Number of distinct nodes whose first session starts before *time*
        (the paper's ``N_longterm``)."""
        return sum(
            1
            for node in self.nodes.values()
            if node.birth is not None and node.birth <= time
        )

    def content_hash(self) -> str:
        """Stable digest of the full trace content (cached after first call).

        Two traces share a hash iff every node's sessions and death agree —
        the property simulation caches key on, where shallow fingerprints
        like ``(len, duration)`` collide across seeds and generators.
        """
        cached = getattr(self, "_content_hash", None)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr(self.duration).encode())
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            digest.update(f"|{node_id};{node.death!r}".encode())
            for session in node.sessions:
                digest.update(f";{session.start!r},{session.end!r}".encode())
        self._content_hash = digest.hexdigest()
        return self._content_hash

    # -- serialisation ---------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "duration": self.duration,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "death": node.death,
                    "sessions": [[s.start, s.end] for s in node.sessions],
                }
                for node in self.nodes.values()
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "AvailabilityTrace":
        payload = json.loads(text)
        nodes = [
            NodeTrace(
                entry["node_id"],
                [Session(start, end) for start, end in entry["sessions"]],
                death=entry.get("death"),
            )
            for entry in payload["nodes"]
        ]
        return cls(payload["duration"], nodes)

    def to_csv_lines(self) -> List[str]:
        """``node_id,start,end`` rows (one per session), header included."""
        lines = ["node_id,session_start,session_end"]
        for node in self.nodes.values():
            for session in node.sessions:
                lines.append(f"{node.node_id},{session.start},{session.end}")
        return lines

    @classmethod
    def from_csv_lines(
        cls, lines: Iterable[str], duration: float
    ) -> "AvailabilityTrace":
        sessions_by_node: Dict[int, List[Session]] = {}
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped or (index == 0 and stripped.startswith("node_id")):
                continue
            node_text, start_text, end_text = stripped.split(",")
            sessions_by_node.setdefault(int(node_text), []).append(
                Session(float(start_text), float(end_text))
            )
        return cls(
            duration,
            [NodeTrace(node_id, sess) for node_id, sess in sessions_by_node.items()],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvailabilityTrace(nodes={len(self.nodes)}, "
            f"duration={self.duration})"
        )
