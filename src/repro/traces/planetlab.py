"""Synthetic PlanetLab-like availability traces.

The paper injects PlanetLab all-pairs-ping host availability traces from
Godfrey et al. [7]: N = 239 hosts, probed once per second, high availability
and very low churn, no births or deaths, stable size 239.  Those traces are
not redistributable here, so this generator synthesises traces calibrated to
the same population: per-node availability drawn from a high-availability
Beta distribution (mean ≈ 0.9 — PlanetLab hosts are research machines that
stay up for days), long renewal cycles (default one day), 1-second event
granularity, and every node present from time zero.

The substitution is behaviour-preserving for AVMON because the protocol only
observes *who is up when*; Section 5.3's qualitative claims (discovery within
about a minute, memory close to ``cvs + 2K``) depend on the population size
and the low churn rate, both of which are preserved.
"""

from __future__ import annotations

from ..registry import register
from ..sim.randomness import RandomSource
from .format import AvailabilityTrace
from .synthesis import renewal_node_trace

__all__ = ["PLANETLAB_N", "generate_planetlab_trace"]

#: Stable system size of the paper's PL experiments.
PLANETLAB_N = 239


def generate_planetlab_trace(
    n: int = PLANETLAB_N,
    duration: float = 48 * 3600.0,
    seed: int = 0,
    *,
    availability_alpha: float = 9.0,
    availability_beta: float = 1.0,
    min_availability: float = 0.5,
    cycle: float = 24 * 3600.0,
    grid: float = 1.0,
) -> AvailabilityTrace:
    """Generate a PlanetLab-like trace.

    Per-node target availability is ``max(min_availability,
    Beta(alpha, beta))`` — with the defaults the mean is ≈ 0.9 and no host
    dips below 0.5, matching PlanetLab's character of mostly-up hosts with
    occasional reboots.  Events land on a 1-second grid, the granularity of
    the all-pairs-ping measurement.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    source = RandomSource(seed)
    nodes = []
    for node_id in range(n):
        rng = source.stream("planetlab", node_id)
        availability = max(
            min_availability, rng.betavariate(availability_alpha, availability_beta)
        )
        # Beta(9, 1) can return values arbitrarily close to 1.0; cap so the
        # renewal process still has room for occasional downtime.
        availability = min(availability, 0.995)
        nodes.append(
            renewal_node_trace(
                node_id,
                rng,
                birth=0.0,
                trace_end=duration,
                availability=availability,
                cycle=cycle,
                grid=grid,
            )
        )
    return AvailabilityTrace(duration, nodes)


register("trace", "PL", generate_planetlab_trace)
