"""Trace statistics used to calibrate and sanity-check synthetic traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .format import AvailabilityTrace

__all__ = ["TraceStats", "summarize_trace", "stable_system_size", "churn_events_per_hour"]


@dataclass(frozen=True)
class TraceStats:
    """Headline numbers for one availability trace."""

    node_count: int
    duration: float
    mean_availability: float
    median_session_length: float
    mean_session_length: float
    stable_size: float
    churn_per_hour: float
    n_longterm: int

    def churn_fraction_per_hour(self) -> float:
        """Join+leave events per hour as a fraction of the stable size."""
        if self.stable_size <= 0:
            return 0.0
        return self.churn_per_hour / self.stable_size


def stable_system_size(trace: AvailabilityTrace, samples: int = 48) -> float:
    """Mean alive count over *samples* evenly spaced instants."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    step = trace.duration / samples
    times = [step * (index + 0.5) for index in range(samples)]
    return sum(trace.alive_count_at(t) for t in times) / samples


def churn_events_per_hour(trace: AvailabilityTrace) -> float:
    """Leave events per hour (the paper's churn-rate convention).

    A "20 % per-hour churn rate" means leaves per hour equal to 20 % of the
    stable size, matched by an equal rejoin rate.
    """
    leaves = sum(len(node.sessions) for node in trace.nodes.values())
    hours = trace.duration / 3600.0
    return leaves / hours if hours > 0 else 0.0


def summarize_trace(trace: AvailabilityTrace, samples: int = 48) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    availabilities: List[float] = []
    session_lengths: List[float] = []
    for node in trace.nodes.values():
        birth = node.birth
        if birth is None:
            continue
        lifetime_end = node.death if node.death is not None else trace.duration
        if lifetime_end > birth:
            availabilities.append(node.availability(birth, lifetime_end))
        session_lengths.extend(node.session_lengths())
    session_lengths.sort()
    mean_availability = (
        sum(availabilities) / len(availabilities) if availabilities else 0.0
    )
    median_session = _median(session_lengths)
    mean_session = (
        sum(session_lengths) / len(session_lengths) if session_lengths else 0.0
    )
    return TraceStats(
        node_count=len(trace),
        duration=trace.duration,
        mean_availability=mean_availability,
        median_session_length=median_session,
        mean_session_length=mean_session,
        stable_size=stable_system_size(trace, samples),
        churn_per_hour=churn_events_per_hour(trace),
        n_longterm=trace.born_before(trace.duration),
    )


def _median(sorted_values: List[float]) -> float:
    if not sorted_values:
        return 0.0
    mid = len(sorted_values) // 2
    if len(sorted_values) % 2 == 1:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def _sessions_of(trace: AvailabilityTrace) -> Tuple[float, ...]:
    """All session lengths across the trace (helper for tests)."""
    lengths: List[float] = []
    for node in trace.nodes.values():
        lengths.extend(node.session_lengths())
    return tuple(lengths)
