"""Availability traces: data model, synthetic generators, statistics."""

from .analysis import TraceStats, churn_events_per_hour, stable_system_size, summarize_trace
from .format import AvailabilityTrace, NodeTrace, Session, TraceEvent
from .overnet import OVERNET_GRID, OVERNET_N, generate_overnet_trace
from .planetlab import PLANETLAB_N, generate_planetlab_trace
from .synthesis import alternating_renewal_sessions, renewal_node_trace, snap_sessions

__all__ = [
    "AvailabilityTrace",
    "NodeTrace",
    "OVERNET_GRID",
    "OVERNET_N",
    "PLANETLAB_N",
    "Session",
    "TraceEvent",
    "TraceStats",
    "alternating_renewal_sessions",
    "churn_events_per_hour",
    "generate_overnet_trace",
    "generate_planetlab_trace",
    "renewal_node_trace",
    "snap_sessions",
    "stable_system_size",
    "summarize_trace",
]
