"""Baseline availability-monitoring schemes AVMON is compared against."""

from .broadcast import BroadcastNode
from .central import CentralMonitorScheme, LoadReport
from .dht import DhtMonitorScheme, HashRing
from .self_report import SelfReportOutcome, SelfReportScheme

__all__ = [
    "BroadcastNode",
    "CentralMonitorScheme",
    "DhtMonitorScheme",
    "HashRing",
    "LoadReport",
    "SelfReportOutcome",
    "SelfReportScheme",
]
