"""Baseline availability-monitoring schemes AVMON is compared against.

Every scheme is registered under the ``"baseline"`` kind of the component
registry so experiments (and third parties) can look them up by name.
"""

from ..registry import register
from .broadcast import BroadcastNode
from .central import CentralMonitorScheme, LoadReport
from .cyclon import CyclonNode, CyclonOverlay
from .dht import DhtMonitorScheme, HashRing
from .self_report import SelfReportOutcome, SelfReportScheme

__all__ = [
    "BroadcastNode",
    "CentralMonitorScheme",
    "CyclonNode",
    "CyclonOverlay",
    "DhtMonitorScheme",
    "HashRing",
    "LoadReport",
    "SelfReportOutcome",
    "SelfReportScheme",
]

register("baseline", "BROADCAST", BroadcastNode)
register("baseline", "CENTRAL", CentralMonitorScheme)
register("baseline", "CYCLON", CyclonOverlay)
register("baseline", "DHT", DhtMonitorScheme)
register("baseline", "SELF-REPORT", SelfReportScheme)
