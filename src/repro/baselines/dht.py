"""The DHT-based baseline: replica-set monitor selection on a hash ring.

Section 1 explains why DHT-based selection (``PS(x)`` = the K nodes whose
hashed ids follow ``H(x)`` on a ring, as in Chord/Pastry replica sets) fails
AVMON's requirements:

* **Consistency** breaks under churn — a newly born node whose id hashes
  next to ``H(x)`` displaces an existing monitor, forcing availability
  history transfers.
* **Randomness (3b)** breaks — two nodes adjacent on the ring co-occur in
  *many* pinging sets, so correlated/colluding neighbours can jointly distort
  many nodes' availabilities.

:class:`HashRing` is a full consistent-hashing implementation (sorted ring,
successor queries, join/leave).  :class:`DhtMonitorScheme` layers monitor
selection on top and *measures* the two violations so the extension
experiment can put numbers against AVMON's zero-churn-disruption selection.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

from ..core.hashing import NodeId, hash_pair

__all__ = ["HashRing", "DhtMonitorScheme"]

#: Fixed "key side" used to place node ids on the ring: H(ring_salt, node).
_RING_SALT = 0xD47


class HashRing:
    """Sorted consistent-hash ring over node ids."""

    def __init__(self, algorithm: str = "md5") -> None:
        self.algorithm = algorithm
        self._points: List[float] = []
        self._ids_at: Dict[float, NodeId] = {}
        self._position: Dict[NodeId, float] = {}

    def position_of(self, node: NodeId) -> float:
        """Ring coordinate in [0, 1) for *node* (pure function of the id)."""
        return hash_pair(_RING_SALT, node, self.algorithm)

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._position

    def members(self) -> Tuple[NodeId, ...]:
        return tuple(self._ids_at[p] for p in self._points)

    def join(self, node: NodeId) -> None:
        if node in self._position:
            return
        point = self.position_of(node)
        if point in self._ids_at:
            # Astronomically unlikely 64-bit collision; refuse rather than
            # silently stack two nodes on one coordinate.
            raise ValueError(f"ring position collision for node {node}")
        bisect.insort(self._points, point)
        self._ids_at[point] = node
        self._position[node] = point

    def leave(self, node: NodeId) -> None:
        point = self._position.pop(node, None)
        if point is None:
            return
        index = bisect.bisect_left(self._points, point)
        del self._points[index]
        del self._ids_at[point]

    def successors(self, key: float, count: int) -> Tuple[NodeId, ...]:
        """The *count* nodes clockwise from *key* (wrapping), deduplicated."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        total = len(self._points)
        if total == 0 or count == 0:
            return ()
        start = bisect.bisect_right(self._points, key)
        out = []
        for offset in range(min(count, total)):
            point = self._points[(start + offset) % total]
            out.append(self._ids_at[point])
        return tuple(out)


class DhtMonitorScheme:
    """Replica-set monitor selection, instrumented for violation counting."""

    def __init__(self, k: int, algorithm: str = "md5") -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.ring = HashRing(algorithm)
        #: PS(x) changes observed across churn events, per monitored node.
        self.monitor_changes: Dict[NodeId, int] = defaultdict(int)
        self._last_ps: Dict[NodeId, Tuple[NodeId, ...]] = {}

    def pinging_set(self, node: NodeId) -> Tuple[NodeId, ...]:
        """The K successors of ``H(node)``, excluding the node itself."""
        candidates = self.ring.successors(self.ring.position_of(node), self.k + 1)
        filtered = tuple(c for c in candidates if c != node)
        return filtered[: self.k]

    # -- churn-driven violation measurement ------------------------------------

    def record_baseline(self, monitored: Sequence[NodeId]) -> None:
        """Snapshot current pinging sets before applying churn."""
        for node in monitored:
            self._last_ps[node] = self.pinging_set(node)

    def apply_churn_event(self, monitored: Sequence[NodeId], *, joined=None, left=None):
        """Apply one churn event, count PS membership changes it caused.

        Returns the number of monitored nodes whose PS changed — each change
        is a consistency violation (an availability history would have to be
        transferred).
        """
        if joined is not None:
            self.ring.join(joined)
        if left is not None:
            self.ring.leave(left)
        affected = 0
        for node in monitored:
            if node not in self.ring:
                continue
            current = self.pinging_set(node)
            previous = self._last_ps.get(node)
            if previous is not None and set(current) != set(previous):
                self.monitor_changes[node] += 1
                affected += 1
            self._last_ps[node] = current
        return affected

    def total_monitor_changes(self) -> int:
        return sum(self.monitor_changes.values())

    # -- randomness violation (condition 3b) --------------------------------------

    def cooccurrence_counts(self, monitored: Sequence[NodeId]) -> Dict[frozenset, int]:
        """How often each *pair* of monitors appears together across PS sets.

        Under true random selection a pair co-occurs in ~``N·(K/N)²`` sets
        (essentially never); on a ring, adjacent nodes co-occur in ~K sets.
        """
        counts: Dict[frozenset, int] = defaultdict(int)
        for node in monitored:
            ps = self.pinging_set(node)
            for i, first in enumerate(ps):
                for second in ps[i + 1 :]:
                    counts[frozenset((first, second))] += 1
        return dict(counts)

    def max_cooccurrence(self, monitored: Sequence[NodeId]) -> int:
        counts = self.cooccurrence_counts(monitored)
        return max(counts.values(), default=0)
