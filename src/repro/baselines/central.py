"""The centralized-monitor baseline (Section 1).

``PS(x) = {y0}`` for a designated server ``y0``.  Selection is trivially
consistent and verifiable but violates load balancing and scalability: all
monitoring traffic and storage concentrate on one host.  The model here is
analytic/structural — it computes the per-node load distribution for a given
population so experiments can quantify the imbalance against AVMON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..core.hashing import NodeId

__all__ = ["CentralMonitorScheme", "LoadReport"]


@dataclass(frozen=True)
class LoadReport:
    """Monitoring load (targets watched, bytes/s) for each node."""

    targets_per_node: Dict[NodeId, int]
    bytes_per_second: Dict[NodeId, float]

    def max_load(self) -> int:
        return max(self.targets_per_node.values(), default=0)

    def load_imbalance(self) -> float:
        """max/mean target load — 1.0 is perfectly balanced."""
        loads = list(self.targets_per_node.values())
        if not loads:
            return 0.0
        average = sum(loads) / len(loads)
        return max(loads) / average if average > 0 else float("inf")


class CentralMonitorScheme:
    """Monitor selection with a single central server."""

    def __init__(self, server: NodeId) -> None:
        self.server = server

    def pinging_set(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Everyone is monitored by the server; the server by nobody."""
        if node == self.server:
            return ()
        return (self.server,)

    def target_set(self, node: NodeId, population: Iterable[NodeId]) -> Tuple[NodeId, ...]:
        if node != self.server:
            return ()
        return tuple(member for member in population if member != self.server)

    def load_report(
        self,
        population: Iterable[NodeId],
        *,
        ping_bytes: int = 8,
        monitoring_period: float = 60.0,
    ) -> LoadReport:
        """Quantify the load concentration the paper objects to."""
        members = list(population)
        targets = {member: 0 for member in members}
        targets[self.server] = len([m for m in members if m != self.server])
        bytes_per_second = {
            member: targets[member] * ping_bytes / monitoring_period
            for member in members
        }
        return LoadReport(targets_per_node=targets, bytes_per_second=bytes_per_second)
