"""The Broadcast baseline from AVCast [11] (Section 2, Table 1).

The paper's previous work had each node broadcast to *everyone* whenever it
joined; every recipient checks the consistency condition against itself and
learns its monitoring relationships immediately.  Discovery is quick
(O(log N) spread, here a direct flood) but the per-join bandwidth is O(N) —
the very cost AVMON's coarse-view discovery removes.

:class:`BroadcastNode` is runtime-compatible with the AVMON node (it runs on
the same :class:`~repro.net.network.SimHost`), so the extension experiment
``ext_baselines`` can measure both under the identical substrate.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..core.messages import Join, Message, MonitorPing, MonitorPong, Notify
from ..core.monitoring import MonitoringStore
from ..core.node import MetricsSink, NodeRuntime, NullMetrics

__all__ = ["BroadcastNode"]


class BroadcastNode:
    """Availability-monitoring node using join-time flooding for discovery."""

    def __init__(
        self,
        node_id: NodeId,
        condition: ConsistencyCondition,
        runtime: NodeRuntime,
        metrics: Optional[MetricsSink] = None,
        *,
        monitoring_period: float = 60.0,
        ping_timeout: float = 5.0,
    ) -> None:
        self.id = node_id
        self.condition = condition
        self.runtime = runtime
        self.metrics: MetricsSink = metrics if metrics is not None else NullMetrics()
        self.monitoring_period = monitoring_period
        self.ping_timeout = ping_timeout

        self.ps: Dict[NodeId, float] = {}
        self.ts: Set[NodeId] = set()
        self.store = MonitoringStore()
        self.computations = 0
        self._seq = 0
        self._pending: Dict[int, NodeId] = {}

    # -- lifecycle -----------------------------------------------------------

    def begin_join(self, recipients) -> None:
        """Flood a JOIN to every node in *recipients* (the whole system).

        The cluster supplies the recipient list — in [11] the broadcast
        reaches all alive nodes.
        """
        for destination in recipients:
            if destination != self.id:
                self.runtime.send(
                    destination, Join(sender=self.id, origin=self.id, weight=1)
                )

    def on_leave(self, now: float) -> None:
        self._pending.clear()

    # -- message handling ------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if isinstance(message, Join):
            self._handle_join(message)
        elif isinstance(message, Notify):
            self._accept_notify(message.monitor, message.target)
        elif isinstance(message, MonitorPing):
            self.runtime.send(
                message.sender, MonitorPong(sender=self.id, seq=message.seq)
            )
        elif isinstance(message, MonitorPong):
            target = self._pending.pop(message.seq, None)
            if target is not None:
                self.store.record_for(target).record_reply(self.runtime.now())

    def _handle_join(self, message: Join) -> None:
        """Check the condition against ourselves in both directions."""
        joiner = message.origin
        if joiner == self.id:
            return
        now = self.runtime.now()
        self.computations += 2
        self.metrics.on_computations(self.id, 2)
        if self.condition.holds(self.id, joiner) and joiner not in self.ts:
            self.ts.add(joiner)
            self.store.record_for(joiner)
            self.metrics.on_target_discovered(self.id, joiner, now)
            # Tell the joiner we monitor it (it just arrived and has no
            # state about us).
            self.runtime.send(
                joiner, Notify(sender=self.id, monitor=self.id, target=joiner)
            )
        if self.condition.holds(joiner, self.id) and joiner not in self.ps:
            self.ps[joiner] = now
            self.metrics.on_monitor_discovered(self.id, joiner, now, len(self.ps))
            self.runtime.send(
                joiner, Notify(sender=self.id, monitor=joiner, target=self.id)
            )

    def _accept_notify(self, monitor: NodeId, target: NodeId) -> None:
        now = self.runtime.now()
        if target == self.id and monitor not in self.ps:
            self.computations += 1
            if self.condition.holds(monitor, self.id):
                self.ps[monitor] = now
                self.metrics.on_monitor_discovered(self.id, monitor, now, len(self.ps))
        if monitor == self.id and target != self.id and target not in self.ts:
            self.computations += 1
            if self.condition.holds(self.id, target):
                self.ts.add(target)
                self.store.record_for(target)
                self.metrics.on_target_discovered(self.id, target, now)

    # -- monitoring (same semantics as AVMON's layer) ----------------------------

    def monitoring_tick(self) -> None:
        now = self.runtime.now()
        for target in list(self.ts):
            record = self.store.record_for(target)
            record.record_sent()
            useless = not self.runtime.target_in_system(target)
            if useless:
                self.store.useless_pings += 1
            self.metrics.on_monitor_ping_sent(self.id, target, useless)
            self._seq += 1
            seq = self._seq
            self._pending[seq] = target
            self.runtime.send(target, MonitorPing(sender=self.id, seq=seq))
            self.runtime.schedule(self.ping_timeout, lambda s=seq: self._timeout(s))

    def _timeout(self, seq: int) -> None:
        target = self._pending.pop(seq, None)
        if target is not None:
            self.store.record_for(target).record_timeout(self.runtime.now())

    def memory_entries(self) -> int:
        return len(self.ps) + len(self.ts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BroadcastNode(id={self.id}, ps={len(self.ps)}, ts={len(self.ts)})"
