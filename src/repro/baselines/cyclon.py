"""CYCLON-style membership shuffling (related work, Section 2).

CYCLON (Voulgaris, Gavidia, van Steen 2005) maintains a random overlay by
having each node periodically *swap* subsets of its neighbour list with its
oldest neighbour.  The paper positions AVMON's coarse-view maintenance as
"a mechanism similar to (but simpler than) CYCLON": CYCLON exchanges
bounded subsets with age-based partner selection, AVMON fetches whole
views from a uniform partner and additionally mines the exchange for
monitoring matches.

This implementation exists so the overlay-quality comparison is concrete:
tests measure in-degree balance and clustering of both mechanisms on equal
footing.  It follows the published protocol: age-stamped entries, oldest
partner selection, subset swap with self-insertion, and bounded view size.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.hashing import NodeId

__all__ = ["CyclonNode", "CyclonOverlay"]


class CyclonNode:
    """One CYCLON participant: an age-stamped bounded neighbour cache."""

    __slots__ = ("id", "capacity", "shuffle_size", "_entries")

    def __init__(self, node_id: NodeId, capacity: int, shuffle_size: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 1 <= shuffle_size <= capacity:
            raise ValueError(
                f"shuffle_size must be in [1, capacity], got {shuffle_size}"
            )
        self.id = node_id
        self.capacity = capacity
        self.shuffle_size = shuffle_size
        self._entries: Dict[NodeId, int] = {}  # neighbour -> age

    # -- view access ---------------------------------------------------------

    def neighbours(self) -> Tuple[NodeId, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._entries

    def add_seed(self, node: NodeId) -> None:
        """Bootstrap entry (age 0); ignored for self/duplicates/overflow."""
        if node != self.id and node not in self._entries:
            if len(self._entries) < self.capacity:
                self._entries[node] = 0

    # -- the shuffle ------------------------------------------------------------

    def oldest_neighbour(self) -> Optional[NodeId]:
        if not self._entries:
            return None
        return max(self._entries.items(), key=lambda item: (item[1], item[0]))[0]

    def age_entries(self) -> None:
        for node in self._entries:
            self._entries[node] += 1

    def select_subset(self, rng: random.Random, exclude: NodeId) -> List[NodeId]:
        """Up to ``shuffle_size - 1`` random neighbours, plus self."""
        pool = [n for n in self._entries if n != exclude]
        rng.shuffle(pool)
        return [self.id] + pool[: self.shuffle_size - 1]

    def integrate(
        self, received: List[NodeId], sent: List[NodeId]
    ) -> None:
        """Merge *received* entries, preferring to evict what we *sent*.

        Follows CYCLON's replacement rule: fill empty slots first, then
        overwrite entries that were shipped to the peer.
        """
        sent_pool = [n for n in sent if n in self._entries]
        for node in received:
            if node == self.id or node in self._entries:
                continue
            if len(self._entries) < self.capacity:
                self._entries[node] = 0
            elif sent_pool:
                del self._entries[sent_pool.pop()]
                self._entries[node] = 0
            # Otherwise the view is full of entries we did not send: drop.


class CyclonOverlay:
    """Synchronous-round CYCLON simulation over a fixed population."""

    def __init__(
        self,
        population: int,
        capacity: int = 20,
        shuffle_size: int = 8,
        seed: int = 0,
    ) -> None:
        if population <= capacity:
            raise ValueError(
                f"population ({population}) must exceed capacity ({capacity})"
            )
        self.rng = random.Random(seed)
        self.nodes: Dict[NodeId, CyclonNode] = {
            node_id: CyclonNode(node_id, capacity, shuffle_size)
            for node_id in range(population)
        }
        # Ring-seed the initial views, the classic worst case for mixing.
        ids = sorted(self.nodes)
        for index, node_id in enumerate(ids):
            node = self.nodes[node_id]
            for offset in range(1, capacity + 1):
                node.add_seed(ids[(index + offset) % len(ids)])

    def run_round(self) -> None:
        """Every node initiates one shuffle with its oldest neighbour."""
        for node in self.nodes.values():
            node.age_entries()
            partner_id = node.oldest_neighbour()
            if partner_id is None or partner_id not in self.nodes:
                continue
            partner = self.nodes[partner_id]
            sent = node.select_subset(self.rng, exclude=partner_id)
            replied = partner.select_subset(self.rng, exclude=node.id)
            # The initiator drops the partner entry it contacted (CYCLON
            # replaces the aged-out link), then both merge.
            node._entries.pop(partner_id, None)
            node.integrate([n for n in replied if n != node.id], sent)
            partner.integrate([n for n in sent if n != partner_id], replied)

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # -- overlay quality metrics ---------------------------------------------------

    def indegree_distribution(self) -> Dict[NodeId, int]:
        indegree = {node_id: 0 for node_id in self.nodes}
        for node in self.nodes.values():
            for neighbour in node.neighbours():
                if neighbour in indegree:
                    indegree[neighbour] += 1
        return indegree

    def clustering_sample(self, samples: int = 200) -> float:
        """Fraction of sampled neighbour pairs that are themselves linked.

        A well-mixed random overlay has clustering ~ capacity/population.
        """
        pairs_checked = 0
        closed = 0
        ids = sorted(self.nodes)
        for _ in range(samples):
            node = self.nodes[ids[self.rng.randrange(len(ids))]]
            neighbours = node.neighbours()
            if len(neighbours) < 2:
                continue
            a, b = self.rng.sample(neighbours, 2)
            pairs_checked += 1
            if a in self.nodes and b in self.nodes[a]:
                closed += 1
        return closed / pairs_checked if pairs_checked else 0.0
