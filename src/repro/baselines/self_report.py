"""The self-reporting baseline (Section 1).

``PS(x) = {x}``: every node reports its own availability.  Selection is
consistent and trivially discoverable, but there is no randomness and no
verification — a selfish node simply claims any availability it likes.
:class:`SelfReportScheme` models that directly so experiments can show how
badly an availability-aware application is misled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..core.hashing import NodeId

__all__ = ["SelfReportScheme", "SelfReportOutcome"]


@dataclass(frozen=True)
class SelfReportOutcome:
    """True vs reported availability across a population."""

    reported: Dict[NodeId, float]
    actual: Dict[NodeId, float]

    def error_of(self, node: NodeId) -> float:
        return abs(self.reported[node] - self.actual[node])

    def nodes_with_error_above(self, threshold: float) -> int:
        return sum(1 for node in self.reported if self.error_of(node) > threshold)

    def mean_inflation(self) -> float:
        """Average (reported − actual); positive means systematic lying."""
        if not self.reported:
            return 0.0
        return sum(
            self.reported[node] - self.actual[node] for node in self.reported
        ) / len(self.reported)


class SelfReportScheme:
    """Monitor selection where each node is its own (unverifiable) monitor."""

    def pinging_set(self, node: NodeId) -> Tuple[NodeId, ...]:
        return (node,)

    def evaluate(
        self,
        actual_availability: Dict[NodeId, float],
        selfish_nodes: Set[NodeId],
        claimed_availability: float = 1.0,
    ) -> SelfReportOutcome:
        """Selfish nodes claim *claimed_availability*; honest ones the truth.

        Nothing in the scheme can detect the lie — contrast with AVMON's
        Figure-20 experiment where random, verifiable monitors keep the
        overreporting error small.
        """
        if not 0.0 <= claimed_availability <= 1.0:
            raise ValueError(
                f"claimed_availability must be in [0, 1], got {claimed_availability}"
            )
        reported = {
            node: (claimed_availability if node in selfish_nodes else truth)
            for node, truth in actual_availability.items()
        }
        return SelfReportOutcome(reported=reported, actual=dict(actual_availability))
