"""Command-line interface: list and run the paper's experiments.

Examples::

    avmon list
    avmon run fig3                 # bench scale (default)
    avmon run fig19 --scale paper  # full paper-scale replication
    avmon run all --scale test     # quick smoke of every artifact
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments.cache import SimulationCache
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.scenarios import SCALES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avmon",
        description="AVMON (ICDCS 2007) reproduction: run the paper's experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments")

    run_parser = commands.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="parameter scale (default: bench)",
    )
    return parser


def _run_one(experiment_id: str, scale: str, cache: SimulationCache, out) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id, scale, cache)
    elapsed = time.perf_counter() - started
    print(f"== {experiment_id} ({scale} scale, {elapsed:.1f}s wall) ==", file=out)
    print(report, file=out)
    print(file=out)


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, experiment in EXPERIMENTS.items():
            print(f"{eid.ljust(width)}  {experiment.title}", file=out)
        return 0
    cache = SimulationCache()
    if args.experiment == "all":
        for experiment_id in EXPERIMENTS:
            _run_one(experiment_id, args.scale, cache, out)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"try: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    _run_one(args.experiment, args.scale, cache, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
