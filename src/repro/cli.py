"""Command-line interface: list, run and sweep the paper's experiments.

Examples::

    avmon list                        # experiments
    avmon list --json                 # experiments + registered components
    avmon run fig3                    # bench scale (default)
    avmon run fig19 --scale paper     # full paper-scale replication
    avmon run all --scale test --jobs 4   # every artifact, N-sweeps in parallel
    avmon sweep --model SYNTH --n 100,200,400 --seeds 3 --jobs 4 --json
    avmon sweep --n 100,200 --seeds 3 --cache-dir ~/.avmon-cache   # resumable

(`avmon` is `python -m repro.cli`.)  ``sweep`` output is deterministic:
the aggregated JSON of a ``--jobs 4`` run is byte-identical to the same
sweep at ``--jobs 1``.

``--cache-dir DIR`` (or the ``AVMON_CACHE_DIR`` environment variable)
persists every simulation summary as a content-addressed JSON file under
DIR.  Runs and sweeps consult the directory before simulating, so a killed
invocation re-run with the same arguments resumes with zero recomputation
of completed cells, and separate processes share one set of results.  The
resume tally is printed to stderr as ``cache: hits=H computed=C``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from .api import Scenario, sweep
from .experiments.cache import SimulationCache
from .experiments.orchestrator import SweepError
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.scenarios import SCALES, n_values
from .experiments.store import SummaryStore
from .metrics import stats
from .registry import REGISTRY, UnknownComponentError

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> List[int]:
    """Parse ``"100,200,400"`` into ``[100, 200, 400]``."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _add_cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("AVMON_CACHE_DIR") or None,
        metavar="DIR",
        help="persist summaries as JSON under DIR and resume from them "
        "(default: the AVMON_CACHE_DIR environment variable, if set)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avmon",
        description="AVMON (ICDCS 2007) reproduction: run the paper's experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list experiments (and, with --json, registered components)"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )

    run_parser = commands.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="parameter scale (default: bench)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for N-sweep experiments (default: 1)",
    )
    _add_cache_dir_argument(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep a churn model over system sizes x seeds"
    )
    sweep_parser.add_argument(
        "--model",
        default="SYNTH",
        help="churn component key (default: SYNTH); see 'avmon list --json'",
    )
    sweep_parser.add_argument(
        "--n",
        type=_int_list,
        default=None,
        metavar="N1,N2,...",
        help="system sizes (default: the scale's N sweep)",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=1, help="seed replications per cell (default: 1)"
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=1, help="base seed (default: 1)"
    )
    sweep_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="parameter scale supplying warmup/duration (default: bench)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit the full result set as JSON"
    )
    _add_cache_dir_argument(sweep_parser)
    return parser


class CacheDirError(RuntimeError):
    """--cache-dir points somewhere that cannot back a store."""


def _store_from(args) -> Optional[SummaryStore]:
    if not args.cache_dir:
        return None
    try:
        return SummaryStore(args.cache_dir)
    except OSError as error:
        raise CacheDirError(
            f"cannot use cache dir {args.cache_dir!r}: {error}"
        ) from error


def _report_store(store: Optional[SummaryStore]) -> None:
    """One grep-able stderr line per invocation: how much was resumed."""
    if store is not None:
        print(
            f"cache: dir={store.root} hits={store.hits} computed={store.writes}",
            file=sys.stderr,
        )


def _run_one(experiment_id: str, scale: str, cache: SimulationCache, jobs: int, out) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id, scale, cache, jobs=jobs)
    elapsed = time.perf_counter() - started
    print(f"== {experiment_id} ({scale} scale, {elapsed:.1f}s wall) ==", file=out)
    print(report, file=out)
    print(file=out)


def _cmd_list(args, out) -> int:
    if args.json:
        payload = {
            "experiments": [
                {"id": eid, "title": experiment.title}
                for eid, experiment in EXPERIMENTS.items()
            ],
            "components": {
                kind: list(names) for kind, names in REGISTRY.catalog().items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, experiment in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {experiment.title}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    try:
        store = _store_from(args)
    except CacheDirError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = SimulationCache(store=store)
    if args.experiment == "all":
        for experiment_id in EXPERIMENTS:
            _run_one(experiment_id, args.scale, cache, args.jobs, out)
        _report_store(store)
        return 0
    try:
        _run_one(args.experiment, args.scale, cache, args.jobs, out)
    except UnknownComponentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _report_store(store)
    return 0


def _progress_printer(stream):
    def progress(done: int, total: int, label: str, elapsed: float) -> None:
        print(f"[{done}/{total}] {label} ({elapsed:.1f}s elapsed)", file=stream)

    return progress


def _sweep_payload(results) -> dict:
    """Deterministic JSON payload: per-cell results plus per-(model, n)
    aggregates over seed replications.  Wall-clock timing is excluded so
    the output is identical whatever the job count."""
    aggregates = []
    for (model, n), group in results.group_by("model", "n").items():
        aggregates.append(
            {
                "model": model,
                "n": n,
                "replications": len(group),
                "mean_discovery_s": group.mean(
                    lambda s: s.average_discovery_time(drop_top=1)
                ),
                "mean_memory_entries": group.mean(
                    lambda s: stats.mean(s.memory_values(control_only=True))
                ),
                "mean_computations_per_s": group.mean(
                    lambda s: stats.mean(s.computation_rates(control_only=True))
                ),
            }
        )
    payload = results.to_dict()
    payload["aggregates"] = aggregates
    return payload


def _cmd_sweep(args, out) -> int:
    ns = args.n if args.n is not None else n_values(args.scale)
    try:
        store = _store_from(args)
    except CacheDirError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        base = Scenario(model=args.model, scale=args.scale, seed=args.seed)
        results = sweep(
            base,
            {"n": ns},
            seeds=args.seeds,
            jobs=args.jobs,
            progress=_progress_printer(sys.stderr),
            store=store,
        )
    except ValueError as error:  # includes UnknownComponentError
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SweepError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _report_store(store)
    if args.json:
        print(json.dumps(_sweep_payload(results), indent=2, sort_keys=True), file=out)
        return 0
    print(
        f"sweep: model={args.model} scale={args.scale} "
        f"n={','.join(str(n) for n in ns)} seeds={args.seeds} jobs={args.jobs}",
        file=out,
    )
    header = f"{'model':<10} {'N':>6} {'seed':>5} {'discovery(s)':>13} {'memory':>8} {'comps/s':>9}"
    print(header, file=out)
    for entry in results:
        summary = entry.summary
        print(
            f"{summary.model:<10} {summary.n:>6} {summary.seed:>5} "
            f"{summary.average_discovery_time(drop_top=1):>13.2f} "
            f"{stats.mean(summary.memory_values(control_only=True)):>8.1f} "
            f"{stats.mean(summary.computation_rates(control_only=True)):>9.2f}",
            file=out,
        )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        return _cmd_run(args, out)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
