"""Command-line interface: list, run, sweep — and deploy — the experiments.

Examples::

    avmon list                        # experiments
    avmon list --json                 # experiments + registered components
    avmon run fig3                    # bench scale (default)
    avmon run fig19 --scale paper     # full paper-scale replication
    avmon run all --scale test --jobs 4   # every artifact, N-sweeps in parallel
    avmon sweep --model SYNTH --n 100,200,400 --seeds 3 --jobs 4 --json
    avmon sweep --n 100,200 --seeds 3 --cache-dir ~/.avmon-cache   # resumable
    avmon live up --nodes 20 --duration 30    # a real overlay over UDP
    avmon live up --nodes 20 --duration 30 --crash-after 12   # + chaos
    avmon live up --nodes 20 --duration 60 --serve 8080  # + HTTP query API
    avmon live status                 # probe a running overlay
    avmon live query 3 --l 2          # one-shot verified availability query
    avmon live chaos --kill 2         # crash two random nodes
    avmon live down                   # tear a running overlay down
    avmon serve --port 8080           # attach an HTTP front end to a
                                      # running overlay's control port
    avmon bench serve --scale test    # serving load -> BENCH_serve.json
    avmon bench fleet --scale test    # backend comparison -> BENCH_sweep.json
    avmon sweep --n 100,200 --backend fleet --jobs 4   # killable workers
    avmon store serve --dir ~/.avmon-cache --port 7780  # shared cache daemon
    avmon store stat http://127.0.0.1:7780
    avmon fleet worker --attach http://127.0.0.1:7780   # lease cells remotely
    avmon sweep --n 100,200 --backend remote \
        --cache-dir http://127.0.0.1:7780   # drive the attached workers
    avmon cache ls                    # inspect the summary store
    avmon cache stat --cache-dir http://127.0.0.1:7780   # works remotely too
    avmon cache clear

(`avmon` is `python -m repro.cli`.)  ``sweep`` output is deterministic:
the aggregated JSON of a ``--jobs 4`` run is byte-identical to the same
sweep at ``--jobs 1`` — and to the same sweep on any ``--backend``.

``--cache-dir SPEC`` (or the ``AVMON_CACHE_DIR`` environment variable)
persists every simulation summary as a content-addressed JSON object.
SPEC is a directory, or the ``http://host:port`` of an ``avmon store
serve`` daemon — the shared-store case, where every worker process (and
every machine) resolves and persists cells against one cache.  Runs and
sweeps consult the store before simulating, so a killed invocation re-run
with the same arguments resumes with zero recomputation of completed
cells.  The resume tally is printed to stderr as ``cache: hits=H
computed=C``.

``--backend NAME`` selects the execution strategy for sweep cells:
``serial`` (in-process), ``pool`` (a local multiprocessing pool of
``--jobs`` workers), ``fleet`` (independent worker processes with
per-cell lease, heartbeat and retry — SIGKILLing any worker mid-sweep
costs only its in-flight cell), or ``remote`` (cells leased over HTTP by
``avmon fleet worker`` processes on any host, coordinated through the
shared store daemon — requires ``--cache-dir http://...``).
``--backend-param KEY=VALUE`` forwards extra constructor parameters,
e.g. ``--backend-param max_attempts=5``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import List, Optional

from .api import Scenario, sweep
from .experiments.backends import ExecutionBackend, resolve_backend
from .experiments.cache import SimulationCache
from .experiments.orchestrator import SweepError
from .experiments.registry import EXPERIMENTS, run_experiment
from .experiments.scenarios import SCALES, n_values
from .experiments.store import SummaryStore
from .experiments.store_backends import is_url_spec
from .metrics import stats
from .registry import REGISTRY, UnknownComponentError

__all__ = ["main", "build_parser"]


def _int_list(text: str) -> List[int]:
    """Parse ``"100,200,400"`` into ``[100, 200, 400]``."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    return values


def _add_cache_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("AVMON_CACHE_DIR") or None,
        metavar="SPEC",
        help="persist summaries as content-addressed JSON and resume from "
        "them; SPEC is a directory or the http://host:port of an "
        "'avmon store serve' daemon (default: the AVMON_CACHE_DIR "
        "environment variable, if set)",
    )


def _backend_param(text: str):
    """Parse one ``KEY=VALUE`` backend parameter, coercing the value."""
    key, sep, raw = text.partition("=")
    if not sep or not key.strip():
        raise argparse.ArgumentTypeError(
            f"expected KEY=VALUE, got {text!r}"
        )
    value: object = raw
    lowered = raw.strip().lower()
    if lowered in ("true", "false"):
        value = lowered == "true"
    else:
        for parse in (int, float):
            try:
                value = parse(raw)
                break
            except ValueError:
                continue
    return key.strip(), value


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend for sweep cells: serial, pool, fleet, or "
        "remote (default: serial when --jobs 1, else pool); see 'avmon "
        "list --json' for the registered set",
    )
    parser.add_argument(
        "--backend-param",
        type=_backend_param,
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="extra backend constructor parameter (repeatable), e.g. "
        "--backend-param max_attempts=5",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="avmon",
        description="AVMON (ICDCS 2007) reproduction: run the paper's experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list experiments (and, with --json, registered components)"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )

    run_parser = commands.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="parameter scale (default: bench)",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for N-sweep experiments (default: 1)",
    )
    _add_backend_arguments(run_parser)
    _add_cache_dir_argument(run_parser)

    sweep_parser = commands.add_parser(
        "sweep", help="sweep a churn model over system sizes x seeds"
    )
    sweep_parser.add_argument(
        "--model",
        default="SYNTH",
        help="churn component key (default: SYNTH); see 'avmon list --json'",
    )
    sweep_parser.add_argument(
        "--n",
        type=_int_list,
        default=None,
        metavar="N1,N2,...",
        help="system sizes (default: the scale's N sweep)",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=1, help="seed replications per cell (default: 1)"
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=1, help="base seed (default: 1)"
    )
    sweep_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="parameter scale supplying warmup/duration (default: bench)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="emit the full result set as JSON"
    )
    sweep_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append structured JSONL lifecycle events (fleet leases, "
        "deaths, retries) to PATH; inspect with 'avmon obs'",
    )
    sweep_parser.add_argument(
        "--obs-snapshot",
        default=None,
        metavar="PATH",
        help="write the deterministic obs-counter snapshot (canonical "
        "JSON) to PATH after the sweep — byte-equal across identical "
        "seeded runs",
    )
    _add_backend_arguments(sweep_parser)
    _add_cache_dir_argument(sweep_parser)

    bench_parser = commands.add_parser(
        "bench",
        help="measure hot paths, the serial sweep and the serving surface; "
        "append the results to the BENCH_*.json trajectory files",
    )
    bench_parser.add_argument(
        "which",
        nargs="?",
        choices=("micro", "sweep", "serve", "fleet", "all"),
        default="all",
        help="which bench suite to run (default: all = micro+sweep; "
        "'serve' runs the serving-load bench separately; 'fleet' "
        "compares execution backends over a shared store)",
    )
    bench_parser.add_argument(
        "--serve",
        action="store_true",
        help="shorthand for the 'serve' suite (sustained requests/s vs "
        "overlay size through the HTTP surface, appended to "
        "BENCH_serve.json)",
    )
    bench_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="bench",
        help="bench sizing (default: bench; use test for a CI smoke)",
    )
    bench_parser.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="directory for the BENCH_*.json files (default: current dir)",
    )
    bench_parser.add_argument(
        "--label", default="", help="entry label recorded in the trajectory"
    )
    bench_parser.add_argument(
        "--no-scale-out",
        action="store_true",
        help="skip the STAT N=10,000 scale-out cell of the sweep bench",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="also print the results as JSON"
    )

    _build_live_parser(commands)
    _build_serve_parser(commands)
    _build_store_parser(commands)
    _build_fleet_parser(commands)
    _build_cache_parser(commands)
    _build_obs_parser(commands)
    return parser


def _build_fleet_parser(commands) -> None:
    fleet_parser = commands.add_parser(
        "fleet",
        help="network-attached sweep workers (lease cells from a store "
        "daemon; pair with 'sweep --backend remote')",
    )
    fleet_commands = fleet_parser.add_subparsers(
        dest="fleet_command", required=True
    )

    worker = fleet_commands.add_parser(
        "worker",
        help="attach to a store daemon and compute leased sweep cells "
        "until interrupted (or idle past --max-idle)",
    )
    worker.add_argument(
        "--attach",
        required=True,
        metavar="URL",
        help="store daemon to lease cells from, e.g. http://host:7780",
    )
    worker.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to run (default: 1, in this process)",
    )
    worker.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often to poll for work when the board is idle "
        "(default: 0.5)",
    )
    worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long with no work (default: run forever)",
    )
    worker.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="bearer token for a daemon started with --auth-token "
        "(default: AVMON_STORE_TOKEN)",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="worker identity in leases and journals "
        "(default: worker-<host>-<pid>)",
    )


def _build_obs_parser(commands) -> None:
    obs_parser = commands.add_parser(
        "obs", help="inspect observability output: journals and /metrics"
    )
    obs_commands = obs_parser.add_subparsers(dest="obs_command", required=True)

    tail = obs_commands.add_parser(
        "tail", help="print the last events of a JSONL journal"
    )
    tail.add_argument("path", help="journal file (written via --journal)")
    tail.add_argument(
        "-n", "--lines", type=int, default=20, help="events to show (default: 20)"
    )
    tail.add_argument(
        "--event", default=None, help="only events whose name contains this"
    )
    tail.add_argument(
        "--json", action="store_true", help="raw JSONL instead of the human render"
    )

    summary = obs_commands.add_parser(
        "summary", help="aggregate a journal: per-event counts and span timings"
    )
    summary.add_argument("path", help="journal file")
    summary.add_argument(
        "--json", action="store_true", help="machine-readable aggregate"
    )

    scrape = obs_commands.add_parser(
        "scrape", help="fetch a /metrics endpoint (store daemon or serve)"
    )
    scrape.add_argument(
        "url",
        help="metrics URL, e.g. http://127.0.0.1:7780/metrics",
    )
    scrape.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="exposition format to request (default: json)",
    )
    scrape.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout seconds"
    )


#: Default operator control port for ``avmon live`` (UDP, localhost).
DEFAULT_CONTROL_PORT = 7711


def _add_control_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="supervisor host (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--control-port",
        type=int,
        default=DEFAULT_CONTROL_PORT,
        help=f"supervisor control port (default: {DEFAULT_CONTROL_PORT})",
    )


def _build_live_parser(commands) -> None:
    live_parser = commands.add_parser(
        "live", help="run and operate a real AVMON overlay over UDP"
    )
    live_commands = live_parser.add_subparsers(dest="live_command", required=True)

    up = live_commands.add_parser(
        "up", help="boot a localhost overlay, run it, report and tear down"
    )
    up.add_argument("--nodes", type=int, default=20, help="overlay size (default: 20)")
    up.add_argument(
        "--duration", type=float, default=30.0, help="run seconds (default: 30)"
    )
    up.add_argument("--seed", type=int, default=1, help="base seed (default: 1)")
    up.add_argument(
        "--protocol-period",
        type=float,
        default=1.0,
        help="coarse-membership period T in wall seconds (default: 1.0)",
    )
    up.add_argument(
        "--monitoring-period",
        type=float,
        default=1.0,
        help="monitoring period T_A in wall seconds (default: 1.0)",
    )
    up.add_argument(
        "--ping-timeout",
        type=float,
        default=0.25,
        help="ping/fetch reply timeout in seconds (default: 0.25)",
    )
    up.add_argument(
        "--cvs", type=int, default=None, help="coarse-view size (default: 4*N^1/4)"
    )
    up.add_argument(
        "--k", type=int, default=None, help="target pinging-set size (default: log2 N)"
    )
    up.add_argument(
        "--churn",
        default="STAT",
        help="churn component driving process kill/restart (default: STAT)",
    )
    up.add_argument(
        "--fault",
        default="NONE",
        help="fault component shaping the network (NONE, LOSSY, WAN, "
        "FLAKY, ...; see 'avmon list --json'; default: NONE)",
    )
    up.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="override the fault plan's per-datagram loss probability",
    )
    up.add_argument(
        "--churn-per-hour",
        type=float,
        default=0.2,
        help="per-node leave rate for SYNTH-style churn, in WALL-CLOCK "
        "hours (default: 0.2 = the paper's rate at real 60s periods; "
        "compressed live periods need proportionally higher rates — at "
        "the default 1s period use ~12 for the paper's churn-per-period, "
        "or 600 for 6s mean sessions)",
    )
    up.add_argument(
        "--introducers",
        type=int,
        default=1,
        metavar="N",
        help="bootstrap quorum size: introducer replicas with anti-entropy "
        "directory sync; nodes fail over between them on silence "
        "(default: 1)",
    )
    up.add_argument(
        "--kill-introducer-after",
        type=float,
        default=None,
        metavar="T",
        help="HA chaos: hard-stop the primary introducer T seconds in "
        "(requires --introducers >= 2)",
    )
    up.add_argument(
        "--crash-after",
        type=float,
        default=None,
        metavar="T",
        help="SIGKILL one random node T seconds in, restart it after "
        "--crash-downtime",
    )
    up.add_argument(
        "--crash-downtime",
        type=float,
        default=3.0,
        help="seconds a crashed node stays down (default: 3.0)",
    )
    up.add_argument(
        "--control-port",
        type=int,
        default=DEFAULT_CONTROL_PORT,
        help=f"operator control port; -1 disables (default: {DEFAULT_CONTROL_PORT})",
    )
    up.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve the HTTP availability API on PORT for the run's "
        "duration (0 binds an ephemeral port; default: no serving)",
    )
    up.add_argument(
        "--state-dir",
        default="",
        metavar="DIR",
        help="persistent node-state directory (default: run-scoped tempdir)",
    )
    up.add_argument(
        "--expect-discovery",
        type=float,
        default=None,
        metavar="R",
        help="exit non-zero unless the discovery ratio reaches R (CI gate)",
    )
    up.add_argument(
        "--expect-recovery",
        type=float,
        default=None,
        metavar="R",
        help="exit non-zero unless crash-victim recovery reaches R (CI gate)",
    )
    up.add_argument("--json", action="store_true", help="emit the report as JSON")
    up.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append structured JSONL lifecycle events (spawns, crashes, "
        "scrapes) to PATH; inspect with 'avmon obs'",
    )
    _add_cache_dir_argument(up)

    status = live_commands.add_parser("status", help="probe a running overlay")
    _add_control_arguments(status)
    status.add_argument("--json", action="store_true", help="JSON output")

    query = live_commands.add_parser(
        "query",
        help="one-shot verified availability query (§3.3) against a "
        "running overlay",
    )
    query.add_argument("target", type=int, help="node id to query")
    query.add_argument(
        "--l",
        type=int,
        default=1,
        dest="l",
        help="monitors the answer must be verified by (default: 1)",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=3.0,
        help="query deadline in seconds; a partial result is reported, "
        "not an error (default: 3.0)",
    )
    query.add_argument("--json", action="store_true", help="JSON output")
    _add_control_arguments(query)

    chaos = live_commands.add_parser(
        "chaos",
        help="crash random nodes and/or inject network faults into a "
        "running overlay",
    )
    _add_control_arguments(chaos)
    chaos.add_argument(
        "--kill",
        type=int,
        default=None,
        help="how many nodes to crash (default: 1, or 0 when --loss/"
        "--partition is given)",
    )
    chaos.add_argument(
        "--downtime",
        type=float,
        default=3.0,
        help="seconds before each victim restarts (default: 3.0)",
    )
    chaos.add_argument(
        "--kill-introducer",
        action="store_true",
        help="hard-stop the overlay's primary introducer replica (the "
        "quorum's failover drill; the last surviving replica is never "
        "killed)",
    )
    chaos.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="set the running fault plan's per-datagram loss probability "
        "(other plan components are kept)",
    )
    chaos.add_argument(
        "--partition",
        default=None,
        metavar="GROUPS",
        help="set the running fault plan's partition, e.g. '0,1,2|3,4' "
        "('' clears it; other plan components are kept)",
    )
    chaos.add_argument(
        "--heal",
        action="store_true",
        help="clear the entire fault plan (loss, latency, partitions, ...)",
    )
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="replace the fault plan's decision-stream seed",
    )

    down = live_commands.add_parser("down", help="tear a running overlay down")
    _add_control_arguments(down)


def _build_serve_parser(commands) -> None:
    serve_parser = commands.add_parser(
        "serve",
        help="attach an HTTP availability front end to a running live "
        "overlay (discovered via its control port)",
    )
    _add_control_arguments(serve_parser)
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="HTTP port to serve on (0 binds an ephemeral port; "
        "default: 8080)",
    )
    serve_parser.add_argument(
        "--bind",
        default="127.0.0.1",
        help="address to bind the HTTP server and query transport to "
        "(default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--cache-ttl",
        type=float,
        default=2.0,
        help="query-result cache TTL in seconds; 0 disables (default: 2.0)",
    )
    serve_parser.add_argument(
        "--global-rate",
        type=float,
        default=500.0,
        help="global sustained requests/s budget (default: 500)",
    )
    serve_parser.add_argument(
        "--global-burst",
        type=float,
        default=1000.0,
        help="global burst headroom in tokens (default: 1000)",
    )
    serve_parser.add_argument(
        "--client-rate",
        type=float,
        default=100.0,
        help="per-client sustained requests/s budget (default: 100)",
    )
    serve_parser.add_argument(
        "--client-burst",
        type=float,
        default=200.0,
        help="per-client burst headroom in tokens (default: 200)",
    )
    serve_parser.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="in-flight overlay queries admitted before shedding with "
        "429 (default: 64)",
    )
    serve_parser.add_argument(
        "--query-timeout",
        type=float,
        default=2.0,
        help="per-query overlay deadline in seconds (default: 2.0)",
    )


def _build_store_parser(commands) -> None:
    store_parser = commands.add_parser(
        "store",
        help="run or inspect a shared summary-store daemon (one "
        "content-addressed cache serving many sweep workers over HTTP)",
    )
    store_commands = store_parser.add_subparsers(dest="store_command", required=True)

    serve = store_commands.add_parser(
        "serve", help="serve a store directory over the HTTP object protocol"
    )
    serve.add_argument(
        "--dir",
        default=os.environ.get("AVMON_CACHE_DIR") or None,
        metavar="DIR",
        help="store directory to serve (default: AVMON_CACHE_DIR)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=7780,
        help="port to serve on (0 binds an ephemeral port; default: 7780)",
    )
    serve.add_argument(
        "--auth-token",
        default=os.environ.get("AVMON_STORE_TOKEN") or None,
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every mutating "
        "verb (default: AVMON_STORE_TOKEN; reads stay open)",
    )

    compact = store_commands.add_parser(
        "compact",
        help="ask a store daemon to sweep stale tmp files and corrupt "
        "summary entries from its directory",
    )
    compact.add_argument(
        "url",
        nargs="?",
        default=os.environ.get("AVMON_CACHE_DIR") or None,
        help="daemon base URL, e.g. http://127.0.0.1:7780 "
        "(default: AVMON_CACHE_DIR when it is a URL)",
    )
    compact.add_argument(
        "--tmp-age",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="only remove tmp files older than this (default: 60)",
    )
    compact.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="bearer token for a daemon started with --auth-token "
        "(default: AVMON_STORE_TOKEN)",
    )
    compact.add_argument("--json", action="store_true", help="JSON output")

    stat = store_commands.add_parser(
        "stat", help="totals and request counters of a store daemon"
    )
    stat.add_argument(
        "url",
        nargs="?",
        default=os.environ.get("AVMON_CACHE_DIR") or None,
        help="daemon base URL, e.g. http://127.0.0.1:7780 "
        "(default: AVMON_CACHE_DIR when it is a URL)",
    )
    stat.add_argument("--json", action="store_true", help="JSON output")


def _build_cache_parser(commands) -> None:
    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the disk-backed summary store"
    )
    cache_commands = cache_parser.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("ls", "list stored summaries"),
        ("stat", "store totals (entries, bytes)"),
        ("clear", "delete every stored summary"),
    ):
        sub = cache_commands.add_parser(name, help=help_text)
        _add_cache_dir_argument(sub)
        if name != "clear":
            sub.add_argument("--json", action="store_true", help="JSON output")


class CacheDirError(RuntimeError):
    """--cache-dir points somewhere that cannot back a store."""


def _store_from(args) -> Optional[SummaryStore]:
    if not args.cache_dir:
        return None
    try:
        return SummaryStore.open(args.cache_dir)
    except (OSError, ValueError) as error:
        raise CacheDirError(
            f"cannot use cache dir {args.cache_dir!r}: {error}"
        ) from error


def _backend_from(args) -> Optional[ExecutionBackend]:
    """The --backend/--backend-param selection as an instance (or None)."""
    if getattr(args, "backend", None) is None:
        return None
    params = dict(args.backend_param or ())
    return resolve_backend(args.backend, jobs=args.jobs, **params)


def _report_store(store: Optional[SummaryStore]) -> None:
    """One grep-able stderr line per invocation: how much was resumed."""
    if store is not None:
        print(
            f"cache: dir={store.root} hits={store.hits} computed={store.writes}",
            file=sys.stderr,
        )


def _report_backend(backend: Optional[ExecutionBackend]) -> None:
    """One grep-able stderr line for backends with operational tallies."""
    if backend is not None and backend.stats_line():
        print(backend.stats_line(), file=sys.stderr)


def _run_one(experiment_id: str, scale: str, cache: SimulationCache, jobs: int, out) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id, scale, cache, jobs=jobs)
    elapsed = time.perf_counter() - started
    print(f"== {experiment_id} ({scale} scale, {elapsed:.1f}s wall) ==", file=out)
    print(report, file=out)
    print(file=out)


def _cmd_list(args, out) -> int:
    if args.json:
        payload = {
            "experiments": [
                {"id": eid, "title": experiment.title}
                for eid, experiment in EXPERIMENTS.items()
            ],
            "components": {
                kind: list(names) for kind, names in REGISTRY.catalog().items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0
    width = max(len(eid) for eid in EXPERIMENTS)
    for eid, experiment in EXPERIMENTS.items():
        print(f"{eid.ljust(width)}  {experiment.title}", file=out)
    return 0


def _cmd_run(args, out) -> int:
    try:
        store = _store_from(args)
        backend = _backend_from(args)
    except (CacheDirError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = SimulationCache(store=store, backend=backend)
    if args.experiment == "all":
        for experiment_id in EXPERIMENTS:
            _run_one(experiment_id, args.scale, cache, args.jobs, out)
        _report_store(store)
        _report_backend(backend)
        return 0
    try:
        _run_one(args.experiment, args.scale, cache, args.jobs, out)
    except UnknownComponentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _report_store(store)
    _report_backend(backend)
    return 0


def _progress_printer(stream):
    def progress(done: int, total: int, label: str, elapsed: float) -> None:
        print(f"[{done}/{total}] {label} ({elapsed:.1f}s elapsed)", file=stream)

    return progress


def _sweep_payload(results) -> dict:
    """Deterministic JSON payload: per-cell results plus per-(model, n)
    aggregates over seed replications.  Wall-clock timing is excluded so
    the output is identical whatever the job count."""
    aggregates = []
    for (model, n), group in results.group_by("model", "n").items():
        aggregates.append(
            {
                "model": model,
                "n": n,
                "replications": len(group),
                "mean_discovery_s": group.mean(
                    lambda s: s.average_discovery_time(drop_top=1)
                ),
                "mean_memory_entries": group.mean(
                    lambda s: stats.mean(s.memory_values(control_only=True))
                ),
                "mean_computations_per_s": group.mean(
                    lambda s: stats.mean(s.computation_rates(control_only=True))
                ),
            }
        )
    payload = results.to_dict()
    payload["aggregates"] = aggregates
    return payload


def _cmd_sweep(args, out) -> int:
    ns = args.n if args.n is not None else n_values(args.scale)
    try:
        store = _store_from(args)
        backend = _backend_from(args)
    except (CacheDirError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    registry = journal = None
    if args.journal or args.obs_snapshot:
        from .obs import Journal, MetricsRegistry

        registry = MetricsRegistry()
        journal = Journal(args.journal) if args.journal else Journal()
        if backend is not None:
            backend.attach_obs(registry, journal)
        if store is not None:
            registry.gauge("sweep.cache.hits", fn=lambda s=store: s.hits)
            registry.gauge("sweep.cache.computed", fn=lambda s=store: s.writes)
        journal.emit(
            "sweep.start",
            model=args.model,
            scale=args.scale,
            n=list(ns),
            seeds=args.seeds,
            jobs=args.jobs,
        )
    try:
        base = Scenario(model=args.model, scale=args.scale, seed=args.seed)
        results = sweep(
            base,
            {"n": ns},
            seeds=args.seeds,
            jobs=args.jobs,
            progress=_progress_printer(sys.stderr),
            store=store,
            backend=backend,
        )
    except ValueError as error:  # includes UnknownComponentError
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SweepError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if journal is not None:
            journal.emit("sweep.end", cells=len(ns) * args.seeds)
            journal.close()
    if args.obs_snapshot:
        try:
            with open(args.obs_snapshot, "w", encoding="utf-8") as fh:
                fh.write(registry.deterministic_json() + "\n")
        except OSError as error:
            print(f"error: cannot write obs snapshot: {error}", file=sys.stderr)
            return 2
    _report_store(store)
    _report_backend(backend)
    if args.json:
        print(json.dumps(_sweep_payload(results), indent=2, sort_keys=True), file=out)
        return 0
    print(
        f"sweep: model={args.model} scale={args.scale} "
        f"n={','.join(str(n) for n in ns)} seeds={args.seeds} jobs={args.jobs}",
        file=out,
    )
    header = f"{'model':<10} {'N':>6} {'seed':>5} {'discovery(s)':>13} {'memory':>8} {'comps/s':>9}"
    print(header, file=out)
    for entry in results:
        summary = entry.summary
        print(
            f"{summary.model:<10} {summary.n:>6} {summary.seed:>5} "
            f"{summary.average_discovery_time(drop_top=1):>13.2f} "
            f"{stats.mean(summary.memory_values(control_only=True)):>8.1f} "
            f"{stats.mean(summary.computation_rates(control_only=True)):>9.2f}",
            file=out,
        )
    return 0


def _cmd_live(args, out) -> int:
    from .live.control import (
        ChaosRequest,
        DownRequest,
        FaultRequest,
        OverlayStatusRequest,
        ServeStatusRequest,
    )
    from .live.faults import FaultPlan, parse_partition_groups
    from .live.supervisor import LiveConfig, control_call, run_live

    if args.live_command == "up":
        return _cmd_live_up(args, out, LiveConfig, run_live)
    address = (args.host, args.control_port)
    try:
        if args.live_command == "query":
            return _cmd_live_query(args, out, address)
        if args.live_command == "status":
            reply = control_call(address, OverlayStatusRequest())
            payload = {
                "nodes": reply.nodes,
                "alive": reply.alive,
                "elapsed": reply.elapsed,
                "discovered_pairs": reply.discovered_pairs,
                "expected_pairs": reply.expected_pairs,
                "crashes": reply.crashes,
            }
            try:
                # Answered only when a serving front end is attached; the
                # short timeout is the "no serving surface" signal.
                serve = control_call(
                    address, ServeStatusRequest(), timeout=0.5
                )
                payload["serve"] = {
                    "requests": serve.requests,
                    "ok": serve.ok,
                    "client_errors": serve.client_errors,
                    "server_errors": serve.server_errors,
                    "rate_limited": serve.rate_limited,
                    "cache_hits": serve.cache_hits,
                    "cache_misses": serve.cache_misses,
                    "monitors_verified": serve.monitors_verified,
                    "monitors_rejected": serve.monitors_rejected,
                    "queries_timed_out": serve.queries_timed_out,
                }
            except (TimeoutError, asyncio.TimeoutError):
                pass
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True), file=out)
            else:
                for key, value in payload.items():
                    print(f"{key}: {value}", file=out)
            return 0
        if args.live_command == "chaos":
            injecting = (
                args.heal
                or args.loss is not None
                or args.partition is not None
                or args.fault_seed is not None
            )
            if args.heal and (
                args.loss is not None
                or args.partition is not None
                or args.fault_seed is not None
            ):
                print(
                    "error: --heal clears the whole plan; it cannot be "
                    "combined with --loss/--partition/--fault-seed",
                    file=sys.stderr,
                )
                return 2
            if injecting:
                # Build a *sparse* update: only the fields the operator
                # named, merged server-side onto the running plan — a
                # partition pushed onto a `--fault WAN` overlay keeps the
                # WAN loss/latency.  --heal replaces with a clean slate.
                overrides = {}
                if args.loss is not None:
                    overrides["loss"] = args.loss
                if args.fault_seed is not None:
                    overrides["seed"] = args.fault_seed
                if args.partition is not None:
                    if args.partition:
                        try:
                            groups = parse_partition_groups(args.partition)
                        except ValueError as error:
                            print(f"error: {error}", file=sys.stderr)
                            return 2
                        if "supervisor" in {
                            member for group in groups for member in group
                        }:
                            print(
                                "warning: the 'supervisor' label only takes "
                                "effect on the in-memory fabric; live UDP "
                                "nodes cannot identify the supervisor's "
                                "scrape endpoint",
                                file=sys.stderr,
                            )
                        overrides["partitions"] = [
                            {"groups": [list(group) for group in groups]}
                        ]
                    else:
                        overrides["partitions"] = []
                try:
                    FaultPlan.from_dict(overrides)  # validate before pushing
                except ValueError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                request = (
                    FaultRequest(plan="")
                    if args.heal
                    else FaultRequest(plan=json.dumps(overrides), merge=True)
                )
                reply = control_call(address, request)
                if reply.applied < 0:
                    print(
                        "error: supervisor rejected the fault plan",
                        file=sys.stderr,
                    )
                    return 1
                action = "healed" if args.heal else "updated"
                print(
                    f"fault plan {action}: pushed to {reply.applied} nodes",
                    file=out,
                )
            kill_introducers = 1 if args.kill_introducer else 0
            kill = args.kill if args.kill is not None else (
                0 if injecting or kill_introducers else 1
            )
            if kill > 0 or kill_introducers > 0:
                reply = control_call(
                    address,
                    ChaosRequest(
                        kill=kill,
                        downtime=args.downtime,
                        kill_introducers=kill_introducers,
                    ),
                )
                if kill > 0:
                    victims = ",".join(str(v) for v in reply.victims) or "(none)"
                    print(f"crashed: {victims}", file=out)
                if kill_introducers > 0:
                    killed = ",".join(reply.introducers_killed)
                    if killed:
                        print(f"introducer killed: {killed}", file=out)
                    else:
                        print(
                            "introducer not killed (no surviving quorum "
                            "to fail over to)",
                            file=out,
                        )
            return 0
        reply = control_call(address, DownRequest())
        print("overlay teardown initiated", file=out)
        return 0
    except (TimeoutError, asyncio.TimeoutError, OSError):
        print(
            f"error: no overlay answered at {address[0]}:{address[1]} "
            f"(is `avmon live up` running with this control port?)",
            file=sys.stderr,
        )
        return 1


def _cmd_live_up(args, out, LiveConfig, run_live) -> int:
    try:
        store = _store_from(args)
    except CacheDirError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    fault_params = {}
    if args.loss is not None:
        fault_params["loss"] = args.loss
    try:
        REGISTRY.resolve("churn", args.churn)  # fail fast, list alternatives
        REGISTRY.resolve("fault", args.fault)
        config = LiveConfig(
            nodes=args.nodes,
            duration=args.duration,
            seed=args.seed,
            k=args.k,
            cvs=args.cvs,
            protocol_period=args.protocol_period,
            monitoring_period=args.monitoring_period,
            ping_timeout=args.ping_timeout,
            churn=args.churn,
            churn_per_hour=args.churn_per_hour,
            introducers=args.introducers,
            kill_introducer_after=args.kill_introducer_after,
            crash_after=args.crash_after,
            crash_downtime=args.crash_downtime,
            control_port=args.control_port,
            serve_port=args.serve,
            state_dir=args.state_dir,
            fault=args.fault,
            fault_params=fault_params,
        )
        config.resolved_fault_plan()  # validate params (e.g. --loss 1.5) now
    except ValueError as error:  # includes UnknownComponentError
        print(f"error: {error}", file=sys.stderr)
        return 2
    fault_note = "" if config.fault.upper() == "NONE" and not fault_params else (
        f", fault={config.fault}"
        + (f" loss={fault_params['loss']}" if "loss" in fault_params else "")
    )
    print(
        f"live: booting {config.nodes} nodes for {config.duration:.0f}s "
        f"(control port {config.control_port}{fault_note})",
        file=sys.stderr,
    )
    from .obs import Journal, journal_from_env

    journal = Journal(args.journal) if args.journal else journal_from_env()
    try:
        report = run_live(config, store=store, journal=journal)
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        journal.close()
    _report_store(store)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        recovery = (
            f"{report.victim_recovery:.3f}"
            if report.victim_recovery is not None
            else "n/a"
        )
        print(
            f"live: nodes={report.config.nodes} duration={report.config.duration:.0f}s "
            f"alive={report.final_alive}",
            file=out,
        )
        print(
            f"discovery: {report.discovered_pairs}/{report.expected_pairs} "
            f"optimal monitor relationships ({report.discovery_ratio:.1%}), "
            f"mean first-monitor delay "
            f"{report.summary.average_discovery_time():.2f}s",
            file=out,
        )
        print(
            f"chaos: crashes={report.crashes} victim_recovery={recovery}",
            file=out,
        )
        print(f"audit: consistency violations={report.violations}", file=out)
        if report.store_path:
            print(f"summary persisted: {report.store_path}", file=out)
    failures = []
    if (
        args.expect_discovery is not None
        and report.discovery_ratio < args.expect_discovery
    ):
        failures.append(
            f"discovery ratio {report.discovery_ratio:.3f} "
            f"< expected {args.expect_discovery}"
        )
    if args.expect_recovery is not None and (
        report.victim_recovery is None
        or report.victim_recovery < args.expect_recovery
    ):
        if report.victim_recovery is not None:
            observed = f"victim recovery {report.victim_recovery:.3f}"
        elif report.crashes == 0:
            observed = "no crash was injected"
        else:
            observed = (
                "victim recovery unmeasurable (crash victim absent from the "
                "final scrape — still down at teardown?)"
            )
        failures.append(f"{observed} < expected {args.expect_recovery}")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _observer_backend(info, *, host: str, query_timeout: float):
    """An :class:`~repro.serve.backend.OverlayBackend` for the overlay an
    :class:`~repro.live.control.OverlayInfoReply` describes."""
    from .core.condition import ConsistencyCondition
    from .serve.backend import OverlayBackend

    condition = ConsistencyCondition(info.k, info.nodes, info.hash_algorithm)
    return OverlayBackend(
        condition,
        (info.introducer_host, info.introducer_port),
        host=host,
        query_timeout=query_timeout,
    )


def _cmd_live_query(args, out, address) -> int:
    from .live.control import OverlayInfoRequest
    from .live.supervisor import control_call
    from .serve.service import result_json

    info = control_call(address, OverlayInfoRequest())
    # The query transport binds loopback for a local overlay; for a remote
    # control host it must accept replies on any interface.
    bind = "127.0.0.1" if args.host in ("127.0.0.1", "localhost") else "0.0.0.0"

    async def run_query():
        backend = _observer_backend(
            info, host=bind, query_timeout=args.timeout
        )
        await backend.start()
        try:
            return await backend.query(args.target, l=args.l)
        finally:
            await backend.close()

    result = asyncio.run(run_query())
    payload = result_json(result)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        flags = []
        if result.timed_out:
            flags.append("timed out")
        if not result.policy_satisfied:
            flags.append(f"policy unsatisfied (wanted l={args.l})")
        note = f"  [{', '.join(flags)}]" if flags else ""
        print(
            f"node {result.subject}: availability "
            f"{result.availability:.4f}{note}",
            file=out,
        )
        print(
            f"monitors: verified={sorted(result.verified_monitors)} "
            f"rejected={sorted(result.rejected_monitors)} "
            f"answered={result.monitors_answered}/{result.monitors_queried}",
            file=out,
        )
        for monitor, value in sorted(result.reports.items()):
            print(f"  monitor {monitor}: {value:.4f}", file=out)
    return 0 if result.policy_satisfied else 1


def _cmd_serve(args, out) -> int:
    from .live.control import OverlayInfoRequest
    from .live.supervisor import control_call
    from .serve.http import serve_http
    from .serve.service import AvailabilityService, ServeConfig

    address = (args.host, args.control_port)
    try:
        info = control_call(address, OverlayInfoRequest())
    except (TimeoutError, asyncio.TimeoutError, OSError):
        print(
            f"error: no overlay answered at {address[0]}:{address[1]} "
            f"(is `avmon live up` running with this control port?)",
            file=sys.stderr,
        )
        return 1
    config = ServeConfig(
        cache_ttl=args.cache_ttl,
        global_rate=args.global_rate,
        global_burst=args.global_burst,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        max_concurrency=args.max_concurrency,
        query_timeout=args.query_timeout,
    )

    async def serve_forever() -> None:
        backend = _observer_backend(
            info, host=args.bind, query_timeout=args.query_timeout
        )
        await backend.start()
        service = AvailabilityService(backend, config)
        server = await serve_http(service, args.bind, args.port)
        port = server.sockets[0].getsockname()[1]
        print(
            f"serving availability for the {info.nodes}-node overlay on "
            f"http://{args.bind}:{port} (Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await backend.close()

    asyncio.run(serve_forever())
    return 0


def _cmd_bench(args, out) -> int:
    from .experiments.bench import run_bench

    try:
        results = run_bench(
            "serve" if args.serve else args.which,
            scale=args.scale,
            out_dir=args.out_dir,
            label=args.label,
            scale_out=False if args.no_scale_out else None,
            out=sys.stderr,
        )
    except OSError as error:
        print(f"error: cannot write bench output: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True), file=out)
    else:
        for suite, payload in results.items():
            print(f"== {suite} ==", file=out)
            if suite == "micro":
                for metric, values in payload.items():
                    if "wall_s" not in values:  # e.g. the "obs" snapshot entry
                        continue
                    rate = next(
                        (f"{values[k]:,}/s" for k in ("per_sec", "events_per_sec",
                                                      "pairs_per_sec", "messages_per_sec")
                         if k in values),
                        "",
                    )
                    print(f"{metric:<32} {values['wall_s']:>9.4f}s  {rate}", file=out)
            elif suite == "fleet":
                for variant in payload["variants"]:
                    deaths = variant.get("deaths")
                    note = f"  deaths={deaths}" if deaths is not None else ""
                    print(
                        f"{variant['backend']:<20} {variant['wall_s']:>8.3f}s"
                        f"{note}",
                        file=out,
                    )
                print(
                    f"{payload['cells']} cells, byte_identical="
                    f"{payload['byte_identical']}",
                    file=out,
                )
            elif suite == "serve":
                for cell in payload["cells"]:
                    sustained = cell["sustained"]
                    overload = cell["overload"]
                    shed = overload["counters"]["totals"]["rate_limited"]
                    print(
                        f"n={cell['n']:<4} {sustained['wall_rps']:>7,} req/s "
                        f"sustained  hit_ratio="
                        f"{sustained['counters']['hit_ratio']}  "
                        f"overload shed {shed}/{overload['offered']}",
                        file=out,
                    )
                print(
                    f"{payload['requests_total']} requests, "
                    f"{payload['server_errors_total']} server errors, "
                    f"total wall: {payload['total_wall_s']}s",
                    file=out,
                )
            else:
                for cell in payload["cells"]:
                    print(
                        f"{cell['label']:<20} {cell['wall_s']:>8.3f}s  "
                        f"events={cell['events_processed']:,} "
                        f"hashes={cell['hash_evaluations']:,}",
                        file=out,
                    )
                print(f"total serial wall: {payload['total_wall_s']}s", file=out)
    return 0


def _cmd_store(args, out) -> int:
    if args.store_command == "serve":
        if not args.dir:
            print(
                "error: no store directory (pass --dir or set AVMON_CACHE_DIR)",
                file=sys.stderr,
            )
            return 2
        if is_url_spec(args.dir):
            print(
                "error: 'store serve' needs a directory to serve, not a URL",
                file=sys.stderr,
            )
            return 2
        from .experiments.store_server import run_store_server

        try:
            return run_store_server(
                args.dir,
                host=args.host,
                port=args.port,
                auth_token=args.auth_token,
            )
        except OSError as error:
            print(f"error: cannot serve store: {error}", file=sys.stderr)
            return 1
    if args.store_command == "compact":
        if not args.url or not is_url_spec(args.url):
            print(
                "error: 'store compact' needs a daemon URL (http://host:port)",
                file=sys.stderr,
            )
            return 2
        from .experiments.store_backends import SharedStoreBackend

        backend = SharedStoreBackend(args.url, auth_token=args.auth_token)
        try:
            result = backend.compact(tmp_age=args.tmp_age)
        except OSError as error:
            print(
                f"error: no store daemon at {args.url}: {error}",
                file=sys.stderr,
            )
            return 1
        finally:
            backend.close()
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True), file=out)
        else:
            print(
                f"compacted: removed_tmp={result.get('removed_tmp', 0)} "
                f"removed_corrupt={result.get('removed_corrupt', 0)}",
                file=out,
            )
        return 0
    # stat
    if not args.url or not is_url_spec(args.url):
        print(
            "error: 'store stat' needs a daemon URL (http://host:port)",
            file=sys.stderr,
        )
        return 2
    from .experiments.store_backends import SharedStoreBackend

    backend = SharedStoreBackend(args.url)
    try:
        payload = backend.stat()
    except OSError as error:
        print(f"error: no store daemon at {args.url}: {error}", file=sys.stderr)
        return 1
    finally:
        backend.close()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
    else:
        for key, value in sorted(payload.items()):
            print(f"{key}: {value}", file=out)
    return 0


def _cmd_fleet(args, out) -> int:
    if not is_url_spec(args.attach):
        print(
            "error: --attach needs a store daemon URL (http://host:port)",
            file=sys.stderr,
        )
        return 2
    from .experiments.backends import run_fleet_worker

    try:
        return run_fleet_worker(
            args.attach,
            workers=args.workers,
            poll_interval=args.poll_interval,
            max_idle=args.max_idle,
            auth_token=args.auth_token,
            name=args.name,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_cache(args, out) -> int:
    if not args.cache_dir:
        print(
            "error: no cache directory (pass --cache-dir or set AVMON_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    if not is_url_spec(args.cache_dir) and not os.path.isdir(args.cache_dir):
        # Inspection must not create directories as a side effect (a typo'd
        # path would silently become a fresh empty store).
        print(f"error: no such cache dir: {args.cache_dir}", file=sys.stderr)
        return 2
    try:
        store = SummaryStore.open(args.cache_dir)
    except (OSError, ValueError) as error:
        print(f"error: cannot open cache dir {args.cache_dir!r}: {error}", file=sys.stderr)
        return 2
    if args.cache_command == "clear":
        try:
            removed = store.clear()
        except OSError as error:
            print(f"error: cache clear failed: {error}", file=sys.stderr)
            return 1
        print(f"removed {removed} entries from {store.root}", file=out)
        return 0
    # Listing and totals go through the StoreBackend protocol, so the same
    # subcommands inspect a local directory or a remote store daemon.
    entries = []
    corrupt = 0
    try:
        backend_entries = store.entries()
    except OSError as error:
        print(f"error: cannot list cache: {error}", file=sys.stderr)
        return 1
    for entry in backend_entries:
        summary = store.read_entry(entry.name)
        if summary is None:
            try:
                if not store.backend.exists(entry.name):
                    continue  # vanished under us (a concurrent `cache clear`)
            except OSError:
                continue
            corrupt += 1
            entries.append(
                {"key": entry.name.rsplit(".", 1)[0], "bytes": entry.size, "corrupt": True}
            )
        else:
            entries.append(
                {
                    "key": entry.name.rsplit(".", 1)[0],
                    "bytes": entry.size,
                    "model": summary.model,
                    "n": summary.n,
                    "seed": summary.seed,
                    "label": summary.label,
                }
            )
    if args.cache_command == "stat":
        payload = {
            "dir": str(store.root),
            "entries": len(entries),
            "corrupt": corrupt,
            "total_bytes": sum(entry["bytes"] for entry in entries),
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        else:
            for key, value in payload.items():
                print(f"{key}: {value}", file=out)
        return 0
    # ls
    if args.json:
        print(json.dumps({"entries": entries}, indent=2, sort_keys=True), file=out)
        return 0
    if not entries:
        print(f"(empty store at {store.root})", file=out)
        return 0
    header = f"{'key':<32} {'model':<10} {'n':>6} {'seed':>5} {'bytes':>9}  label"
    print(header, file=out)
    for entry in entries:
        model = entry.get("model", "(corrupt)")
        print(
            f"{entry['key']:<32} {model:<10} {entry.get('n', 0):>6} "
            f"{entry.get('seed', 0):>5} {entry['bytes']:>9}  "
            f"{entry.get('label', '')}",
            file=out,
        )
    return 0


def _cmd_obs(args, out) -> int:
    from .obs import read_events, render_event, summarize_events

    if args.obs_command == "scrape":
        import urllib.error
        import urllib.request

        url = args.url
        if args.format == "prometheus":
            sep = "&" if "?" in url else "?"
            url = f"{url}{sep}format=prometheus"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                body = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"error: cannot scrape {args.url}: {error}", file=sys.stderr)
            return 1
        if args.format == "json":
            try:  # re-render canonically so scrapes diff cleanly
                body = json.dumps(json.loads(body), indent=2, sort_keys=True)
            except ValueError:
                pass
        print(body.rstrip("\n"), file=out)
        return 0

    try:
        events = read_events(args.path)
    except OSError as error:
        print(f"error: cannot read journal: {error}", file=sys.stderr)
        return 1
    if args.obs_command == "tail":
        if args.event:
            events = [e for e in events if args.event in e.get("event", "")]
        if args.lines > 0:
            events = events[-args.lines:]
        for record in events:
            if args.json:
                print(json.dumps(record, sort_keys=True), file=out)
            else:
                print(render_event(record), file=out)
        return 0
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True), file=out)
        return 0
    print(f"events: {summary['events']}", file=out)
    for event, count in summary["by_event"].items():
        print(f"  {event:<36} {count:>8}", file=out)
    if summary["spans"]:
        print("spans:", file=out)
        for base, agg in summary["spans"].items():
            print(
                f"  {base:<36} count={agg['count']} "
                f"total={agg['total_s']:.3f}s max={agg['max_s']:.3f}s",
                file=out,
            )
    if summary["first_ts"] is not None and summary["last_ts"] is not None:
        window = summary["last_ts"] - summary["first_ts"]
        print(f"window: {window:.3f}s", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "sweep":
            return _cmd_sweep(args, out)
        if args.command == "live":
            return _cmd_live(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "bench":
            return _cmd_bench(args, out)
        if args.command == "store":
            return _cmd_store(args, out)
        if args.command == "fleet":
            return _cmd_fleet(args, out)
        if args.command == "cache":
            return _cmd_cache(args, out)
        if args.command == "obs":
            return _cmd_obs(args, out)
        return _cmd_run(args, out)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
