"""Token-bucket rate limiting for the serving surface.

One verified query fans out to ``1 + l`` protocol round trips, so an
unthrottled HTTP client can multiply its offered load into the overlay.
The limiter shapes that at the front door with the classic token bucket:
a bucket holds up to ``burst`` tokens and refills at ``rate`` tokens per
second; each request spends one token; an empty bucket means 429 with a
``Retry-After`` telling the client when a token will exist.

Two layers: a **global** bucket bounds total overlay load, and a
**per-client** bucket keeps one chatty client from spending everyone's
budget.  Both clocks are injectable (default: the running loop's clock),
so refill arithmetic is deterministic on the virtual-clock fabric —
refill is computed lazily from elapsed time, never from a timer task.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["TokenBucket", "RateLimiter", "RateDecision"]


class TokenBucket:
    """Lazily-refilled token bucket (no background task)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated: Optional[float] = None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    def _refill(self, now: float) -> None:
        if self._updated is None:
            self._updated = now
            return
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    @property
    def tokens(self) -> float:
        """Current token count (after refill) — mostly for tests."""
        self._refill(self._now())
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Spend *amount* tokens if available; never blocks."""
        now = self._now()
        self._refill(now)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until *amount* tokens will exist (0 if they do now)."""
        self._refill(self._now())
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass(frozen=True)
class RateDecision:
    """Outcome of one admission check."""

    allowed: bool
    #: Seconds the client should wait before retrying (0 when allowed).
    retry_after: float = 0.0
    #: Which bucket said no: "client" or "global" (empty when allowed).
    limited_by: str = ""


class RateLimiter:
    """Global + per-client token buckets with bounded client tracking."""

    def __init__(
        self,
        *,
        global_rate: float = 500.0,
        global_burst: float = 1000.0,
        client_rate: float = 50.0,
        client_burst: float = 100.0,
        max_clients: int = 4096,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._clock = clock
        self.global_bucket = TokenBucket(global_rate, global_burst, clock=clock)
        self.client_rate = client_rate
        self.client_burst = client_burst
        self.max_clients = max_clients
        self._clients: Dict[str, TokenBucket] = {}
        self.allowed = 0
        self.limited = 0

    def _client_bucket(self, client: str) -> TokenBucket:
        bucket = self._clients.get(client)
        if bucket is None:
            if len(self._clients) >= self.max_clients:
                # Soft-state reset: forget everyone rather than tracking
                # unbounded client state (full buckets for all, briefly).
                self._clients.clear()
            bucket = TokenBucket(
                self.client_rate, self.client_burst, clock=self._clock
            )
            self._clients[client] = bucket
        return bucket

    def check(self, client: str) -> RateDecision:
        """Admit or reject one request from *client*."""
        client_bucket = self._client_bucket(client)
        if not client_bucket.try_acquire():
            self.limited += 1
            return RateDecision(
                allowed=False,
                retry_after=client_bucket.retry_after(),
                limited_by="client",
            )
        if not self.global_bucket.try_acquire():
            # Refund the client token: the request never ran, and a
            # globally-rejected client shouldn't also burn its own budget.
            client_bucket._tokens = min(
                client_bucket.burst, client_bucket._tokens + 1.0
            )
            self.limited += 1
            return RateDecision(
                allowed=False,
                retry_after=self.global_bucket.retry_after(),
                limited_by="global",
            )
        self.allowed += 1
        return RateDecision(allowed=True)

    def tracked_clients(self) -> int:
        return len(self._clients)
