"""Per-endpoint serving metrics: counters and latency percentiles.

Everything here is deterministic given a deterministic request schedule:
counters are plain integers, and latency percentiles come from a bounded
ring of the most recent samples (no randomized reservoir), measured on an
injectable clock — the virtual clock on the memory fabric.  That is what
lets CI assert byte-identical ``/metrics`` counters across two identical
seeded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["LatencyTracker", "EndpointMetrics", "ServeMetrics"]


class LatencyTracker:
    """Latency percentiles over a bounded window of recent samples."""

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self._samples: List[float] = []
        self._next = 0  # ring cursor once the window is full
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self._samples) < self.window:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.window

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (q in [0, 100]) over the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
        return ordered[int(rank) - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "p50_ms": round(self.percentile(50) * 1000.0, 3),
            "p95_ms": round(self.percentile(95) * 1000.0, 3),
            "p99_ms": round(self.percentile(99) * 1000.0, 3),
            "mean_ms": round(
                (self.total / self.count) * 1000.0 if self.count else 0.0, 3
            ),
        }


@dataclass
class EndpointMetrics:
    """Counters for one endpoint (one instance per route)."""

    requests: int = 0
    ok: int = 0
    client_errors: int = 0  # 4xx
    server_errors: int = 0  # 5xx
    rate_limited: int = 0  # 429 subset of client_errors
    latency: LatencyTracker = field(default_factory=LatencyTracker)

    def record(self, status: int, seconds: float) -> None:
        self.requests += 1
        if status >= 500:
            self.server_errors += 1
        elif status == 429:
            self.rate_limited += 1
            self.client_errors += 1
        elif status >= 400:
            self.client_errors += 1
        else:
            self.ok += 1
        self.latency.observe(seconds)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "requests": self.requests,
            "ok": self.ok,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "rate_limited": self.rate_limited,
        }
        out.update(self.latency.summary())
        return out


class ServeMetrics:
    """The service's whole metrics surface (rendered by ``/metrics``)."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, EndpointMetrics] = {}
        #: §3.3 verification outcomes across all served queries.
        self.monitors_verified = 0
        self.monitors_rejected = 0
        #: Queries whose overlay deadline fired with answers missing.
        self.queries_timed_out = 0
        #: Requests rejected by admission control (concurrency bound).
        self.shed_overload = 0

    def endpoint(self, route: str) -> EndpointMetrics:
        metrics = self._endpoints.get(route)
        if metrics is None:
            metrics = self._endpoints[route] = EndpointMetrics()
        return metrics

    def record_query_result(self, result) -> None:
        """Fold one QueryResult's verification outcome into the counters."""
        self.monitors_verified += len(result.verified_monitors)
        self.monitors_rejected += len(result.rejected_monitors)
        if result.timed_out:
            self.queries_timed_out += 1

    def totals(self) -> Dict[str, int]:
        return {
            "requests": sum(m.requests for m in self._endpoints.values()),
            "ok": sum(m.ok for m in self._endpoints.values()),
            "client_errors": sum(
                m.client_errors for m in self._endpoints.values()
            ),
            "server_errors": sum(
                m.server_errors for m in self._endpoints.values()
            ),
            "rate_limited": sum(
                m.rate_limited for m in self._endpoints.values()
            ),
        }

    def to_dict(self, *, cache_stats: Optional[Dict[str, int]] = None) -> Dict:
        body: Dict[str, object] = {
            "totals": self.totals(),
            "endpoints": {
                route: self._endpoints[route].to_dict()
                for route in sorted(self._endpoints)
            },
            "query": {
                "monitors_verified": self.monitors_verified,
                "monitors_rejected": self.monitors_rejected,
                "timed_out": self.queries_timed_out,
            },
            "shed_overload": self.shed_overload,
        }
        if cache_stats is not None:
            body["cache"] = cache_stats
        return body
