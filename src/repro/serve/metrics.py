"""Per-endpoint serving metrics: counters and latency percentiles.

Backed by the shared :mod:`repro.obs` registry: every counter here is a
``repro.obs`` :class:`~repro.obs.registry.Counter` (kind *deterministic*)
and every latency tracker a :class:`~repro.obs.registry.Histogram` (kind
*wall*), so the serving tier reports through the same surface as the
simulator, the fleet and the store daemon — and ``/metrics`` can also be
rendered as Prometheus text straight from the registry.

The JSON shape of ``to_dict()`` (what ``/metrics`` returns) is unchanged
from the pre-registry implementation.  Counters are deterministic given a
deterministic request schedule; latency percentiles come from a bounded
ring of recent samples measured on an injectable clock — the virtual
clock on the memory fabric.  That is what lets CI assert byte-identical
``/metrics`` counters across two identical seeded runs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.registry import WALL, Histogram, MetricsRegistry

__all__ = ["LatencyTracker", "EndpointMetrics", "ServeMetrics"]


class LatencyTracker(Histogram):
    """Latency percentiles over a bounded window of recent samples.

    A wall-kind obs histogram that renders its summary in milliseconds —
    the serving tier's historical ``/metrics`` unit.
    """

    def __init__(
        self,
        window: int = 2048,
        *,
        name: str = "serve.latency_seconds",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        super().__init__(name, kind=WALL, window=window)
        if registry is not None:
            registry.register(self)

    def summary(self) -> Dict[str, float]:
        return {
            "p50_ms": round(self.percentile(50) * 1000.0, 3),
            "p95_ms": round(self.percentile(95) * 1000.0, 3),
            "p99_ms": round(self.percentile(99) * 1000.0, 3),
            "mean_ms": round(
                (self.total / self.count) * 1000.0 if self.count else 0.0, 3
            ),
        }


class EndpointMetrics:
    """Counters for one endpoint (one instance per route)."""

    def __init__(
        self,
        route: str = "",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        base = f"serve.endpoint.{route}" if route else "serve.endpoint"
        self._requests = registry.counter(f"{base}.requests")
        self._ok = registry.counter(f"{base}.ok")
        self._client_errors = registry.counter(f"{base}.client_errors")  # 4xx
        self._server_errors = registry.counter(f"{base}.server_errors")  # 5xx
        #: 429 subset of client_errors.
        self._rate_limited = registry.counter(f"{base}.rate_limited")
        self.latency = LatencyTracker(
            name=f"{base}.latency_seconds", registry=registry
        )

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def ok(self) -> int:
        return self._ok.value

    @property
    def client_errors(self) -> int:
        return self._client_errors.value

    @property
    def server_errors(self) -> int:
        return self._server_errors.value

    @property
    def rate_limited(self) -> int:
        return self._rate_limited.value

    def record(self, status: int, seconds: float) -> None:
        self._requests.inc()
        if status >= 500:
            self._server_errors.inc()
        elif status == 429:
            self._rate_limited.inc()
            self._client_errors.inc()
        elif status >= 400:
            self._client_errors.inc()
        else:
            self._ok.inc()
        self.latency.observe(seconds)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "requests": self.requests,
            "ok": self.ok,
            "client_errors": self.client_errors,
            "server_errors": self.server_errors,
            "rate_limited": self.rate_limited,
        }
        out.update(self.latency.summary())
        return out


class ServeMetrics:
    """The service's whole metrics surface (rendered by ``/metrics``)."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        #: The obs registry everything below lives in; ``/metrics`` can
        #: render it as Prometheus text directly.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        #: §3.3 verification outcomes across all served queries.
        self._monitors_verified = self.registry.counter(
            "serve.query.monitors_verified"
        )
        self._monitors_rejected = self.registry.counter(
            "serve.query.monitors_rejected"
        )
        #: Queries whose overlay deadline fired with answers missing.
        self._queries_timed_out = self.registry.counter(
            "serve.query.timed_out"
        )
        #: Requests rejected by admission control (concurrency bound).
        self._shed_overload = self.registry.counter("serve.shed_overload")

    # The four query counters read and assign as plain ints so existing
    # call sites (``metrics.shed_overload += 1``) and tests keep working.
    @property
    def monitors_verified(self) -> int:
        return self._monitors_verified.value

    @monitors_verified.setter
    def monitors_verified(self, value: int) -> None:
        self._monitors_verified.value = value

    @property
    def monitors_rejected(self) -> int:
        return self._monitors_rejected.value

    @monitors_rejected.setter
    def monitors_rejected(self, value: int) -> None:
        self._monitors_rejected.value = value

    @property
    def queries_timed_out(self) -> int:
        return self._queries_timed_out.value

    @queries_timed_out.setter
    def queries_timed_out(self, value: int) -> None:
        self._queries_timed_out.value = value

    @property
    def shed_overload(self) -> int:
        return self._shed_overload.value

    @shed_overload.setter
    def shed_overload(self, value: int) -> None:
        self._shed_overload.value = value

    def endpoint(self, route: str) -> EndpointMetrics:
        metrics = self._endpoints.get(route)
        if metrics is None:
            metrics = self._endpoints[route] = EndpointMetrics(
                route, self.registry
            )
        return metrics

    def record_query_result(self, result) -> None:
        """Fold one QueryResult's verification outcome into the counters."""
        self._monitors_verified.inc(len(result.verified_monitors))
        self._monitors_rejected.inc(len(result.rejected_monitors))
        if result.timed_out:
            self._queries_timed_out.inc()

    def totals(self) -> Dict[str, int]:
        return {
            "requests": sum(m.requests for m in self._endpoints.values()),
            "ok": sum(m.ok for m in self._endpoints.values()),
            "client_errors": sum(
                m.client_errors for m in self._endpoints.values()
            ),
            "server_errors": sum(
                m.server_errors for m in self._endpoints.values()
            ),
            "rate_limited": sum(
                m.rate_limited for m in self._endpoints.values()
            ),
        }

    def to_dict(self, *, cache_stats: Optional[Dict[str, int]] = None) -> Dict:
        body: Dict[str, object] = {
            "totals": self.totals(),
            "endpoints": {
                route: self._endpoints[route].to_dict()
                for route in sorted(self._endpoints)
            },
            "query": {
                "monitors_verified": self.monitors_verified,
                "monitors_rejected": self.monitors_rejected,
                "timed_out": self.queries_timed_out,
            },
            "shed_overload": self.shed_overload,
        }
        if cache_stats is not None:
            body["cache"] = cache_stats
        return body

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole serving registry."""
        return self.registry.render_prometheus()
