"""Read-through TTL cache with single-flight deduplication.

A verified §3.3 query costs one round trip to the subject plus one to
each verified monitor; at serving rates that protocol work — not the HTTP
layer — is the bottleneck.  The cache absorbs it two ways:

* **TTL**: a fresh entry under its time-to-live is returned without
  touching the overlay.  Availability is a slowly-moving long-run
  fraction, so short TTLs (seconds) lose almost no accuracy while
  collapsing hot-key load to one overlay query per TTL window.
* **Single-flight**: concurrent misses on the same key share ONE loader
  call; the herd awaits the same future instead of issuing N identical
  protocol exchanges (the thundering-herd pattern every read-through
  front end needs — see PAPERS.md's query-system references).

The clock is injectable and defaults to the running loop's clock, so on
the in-memory fabric (virtual clock) expiry is fully deterministic.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "TtlCache"]


@dataclass
class CacheStats:
    """Counters for one cache instance (all monotonic)."""

    hits: int = 0
    misses: int = 0
    #: Calls that awaited another caller's in-flight load.
    coalesced: int = 0
    #: Entries evicted because the cache was at capacity.
    evictions: int = 0
    #: Entries that had expired when looked up.
    expirations: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.coalesced

    @property
    def hit_ratio(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        # Coalesced calls did not hit the overlay either; they count as
        # cache-absorbed for the ratio consumers care about (protocol
        # queries avoided per lookup).
        return (self.hits + self.coalesced) / lookups


@dataclass
class _Entry:
    value: Any
    expires_at: float
    field_order: int = field(default=0, compare=False)


class TtlCache:
    """Async read-through cache; ``get(key, loader)`` is the whole API."""

    def __init__(
        self,
        *,
        ttl: float = 5.0,
        max_entries: int = 4096,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.ttl = ttl
        self.max_entries = max_entries
        self._clock = clock
        self._entries: Dict[Hashable, _Entry] = {}
        self._inflight: Dict[Hashable, asyncio.Future] = {}
        self.stats = CacheStats()

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    def __len__(self) -> int:
        return len(self._entries)

    async def get(
        self,
        key: Hashable,
        loader: Callable[[], Awaitable[Any]],
        *,
        ttl: Optional[float] = None,
    ) -> Any:
        """Return the cached value for *key*, loading it on a miss.

        Concurrent callers missing on the same key share one *loader*
        call.  A loader that raises propagates to every waiter and caches
        nothing — the next caller retries.
        """
        now = self._now()
        entry = self._entries.get(key)
        if entry is not None:
            if entry.expires_at > now:
                self.stats.hits += 1
                return entry.value
            del self._entries[key]
            self.stats.expirations += 1
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats.coalesced += 1
            return await asyncio.shield(inflight)
        self.stats.misses += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            value = await loader()
        except BaseException as exc:
            future.set_exception(exc)
            # The herd re-raises through the future; nobody new should
            # join a doomed flight.
            future.exception()  # mark retrieved: no "never retrieved" noise
            raise
        else:
            future.set_result(value)
            self._store(key, value, self.ttl if ttl is None else ttl)
            return value
        finally:
            del self._inflight[key]

    def _store(self, key: Hashable, value: Any, ttl: float) -> None:
        if ttl <= 0:
            return  # zero TTL = pass-through (still single-flighted)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            # Evict the entry closest to expiry (oldest data first).
            victim = min(
                self._entries, key=lambda k: self._entries[k].expires_at
            )
            del self._entries[victim]
            self.stats.evictions += 1
        self._entries[key] = _Entry(value=value, expires_at=self._now() + ttl)

    def invalidate(self, key: Hashable) -> bool:
        """Drop *key* if present; returns whether it was cached."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()
