"""Online availability serving: an HTTP/JSON front end for AVMON overlays.

AVMON's purpose is answering "how available is node X?" for consumers; the
batch experiments answer it offline.  This package serves it online: an
asyncio HTTP service (stdlib only) that fronts a running overlay through
:class:`~repro.apps.query.QueryClient`, with a read-through TTL cache,
token-bucket rate limiting, bounded-concurrency admission control, and
per-endpoint metrics.  It runs over both fabrics — real UDP against a
live overlay (``avmon serve``) and the in-memory virtual-clock fabric
(``MemoryOverlay``), so CI load tests never open a socket.

Import layout mirrors :mod:`repro.live`: symbols are lazily re-exported
so ``from repro.serve import AvailabilityService`` works without paying
for modules you don't touch.
"""

from __future__ import annotations

_EXPORTS = {
    "TtlCache": "cache",
    "CacheStats": "cache",
    "TokenBucket": "ratelimit",
    "RateLimiter": "ratelimit",
    "LatencyTracker": "metrics",
    "EndpointMetrics": "metrics",
    "ServeMetrics": "metrics",
    "OverlayBackend": "backend",
    "memory_backend": "backend",
    "DEFAULT_CLIENT_ID": "backend",
    "ServeConfig": "service",
    "AvailabilityService": "service",
    "result_json": "service",
    "handle_connection": "http",
    "serve_http": "http",
    "MemoryHttpClient": "http",
    "run_serve_bench": "bench",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
