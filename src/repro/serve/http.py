"""Minimal HTTP/1.1 layer for the availability service (stdlib only).

One parse/serialize path serves both fabrics:

* :func:`serve_http` binds a real ``asyncio.start_server`` socket and
  points each connection at :func:`handle_connection`;
* :class:`MemoryHttpClient` feeds raw request bytes through the **same**
  :func:`handle_connection` via in-process streams — CI load tests drive
  thousands of requests through the genuine HTTP surface (request-line
  parsing, header handling, keep-alive, JSON bodies) without opening a
  socket, on the virtual clock.

The protocol subset is deliberately small — GET/POST, JSON bodies,
``Content-Length`` framing, keep-alive — because the service only speaks
JSON and the point is serving §3.3 queries, not re-growing a web server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from .service import AvailabilityService

__all__ = [
    "MAX_REQUEST_BYTES",
    "handle_connection",
    "serve_http",
    "MemoryHttpClient",
]

#: Request-line + headers + body ceiling; a datagram-sized service has no
#: business accepting megabyte uploads.
MAX_REQUEST_BYTES = 256 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None on clean EOF before a request line."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > 8192:
        raise _HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise _HttpError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_REQUEST_BYTES:
            raise _HttpError(413, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length")
        if length < 0 or length > MAX_REQUEST_BYTES:
            raise _HttpError(413, "body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _HttpError(400, "body truncated")
    return method, target, headers, body


def _render(
    status: int,
    payload,
    extra_headers: Dict[str, str],
    *,
    keep_alive: bool,
) -> bytes:
    # dict payloads render as JSON; str payloads pass through as
    # text/plain (the Prometheus exposition format on ``/metrics``).
    if isinstance(payload, str):
        body = payload.encode()
        content_type = "text/plain; version=0.0.4"
    else:
        body = json.dumps(payload, sort_keys=True).encode()
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


async def handle_connection(
    service: AvailabilityService,
    reader: asyncio.StreamReader,
    writer,
    *,
    client: str = "",
) -> None:
    """Serve requests on one connection until EOF or ``Connection: close``.

    *client* is the rate-limiting identity; when empty it is taken from
    the transport's peer address (real sockets) or left anonymous.
    """
    if not client:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "anonymous"
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _HttpError as exc:
                writer.write(
                    _render(
                        exc.status,
                        {"error": str(exc)},
                        {},
                        keep_alive=False,
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, target, headers, body_bytes = request
            # An explicit client identity beats the transport address:
            # the bench runs many logical clients over one fabric.
            identity = headers.get("x-client-id", client)
            body: Optional[dict] = None
            if body_bytes:
                try:
                    body = json.loads(body_bytes)
                except json.JSONDecodeError:
                    body = None  # endpoints reject with a 400 body
            try:
                # Services that opt in (``accepts_headers = True``) also
                # receive the raw header dict — the store daemon checks
                # its bearer token there; everything else keeps the
                # four-argument contract untouched.
                if getattr(service, "accepts_headers", False):
                    status, payload, extra = await service.handle(
                        method, target, body, identity, headers
                    )
                else:
                    status, payload, extra = await service.handle(
                        method, target, body, identity
                    )
            except Exception:  # noqa: BLE001 — a service bug is a 500,
                # counted and visible, never a dropped connection.
                status, payload, extra = 500, {"error": "internal"}, {}
            keep_alive = headers.get("connection", "").lower() != "close"
            writer.write(
                _render(status, payload, extra, keep_alive=keep_alive)
            )
            await writer.drain()
            if not keep_alive:
                break
    finally:
        try:
            writer.close()
        except RuntimeError:
            # The event loop closed under us (daemon shutdown while a
            # client was mid-request); the transport is already gone.
            return
        wait_closed = getattr(writer, "wait_closed", None)
        if wait_closed is not None:
            try:
                await wait_closed()
            except (ConnectionError, OSError):
                pass


async def serve_http(
    service: AvailabilityService, host: str = "127.0.0.1", port: int = 0
):
    """Bind a real HTTP server for *service*; returns the asyncio server."""

    async def on_connection(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(on_connection, host, port)


class _MemoryWriter:
    """Just enough of ``StreamWriter`` to capture a response in memory."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.closed = False

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True

    async def wait_closed(self) -> None:
        pass

    def get_extra_info(self, name, default=None):
        return default


class MemoryHttpClient:
    """Drives the real HTTP surface in-process (no sockets).

    Each request is serialized to raw HTTP/1.1 bytes, fed through
    :func:`handle_connection` via an ``asyncio.StreamReader``, and the
    response bytes are parsed back — so the memory fabric exercises the
    exact request path a socket does, deterministically.
    """

    def __init__(self, service: AvailabilityService, *, client: str = "mem-client") -> None:
        self.service = service
        self.client = client

    async def request(
        self,
        method: str,
        target: str,
        *,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, dict, Dict[str, str]]:
        """One request; returns ``(status, json_body, headers)``."""
        payload = (
            json.dumps(body, sort_keys=True).encode()
            if body is not None
            else b""
        )
        lines = [
            f"{method} {target} HTTP/1.1",
            "Host: mem",
            "Connection: close",
        ]
        if headers:
            for name, value in headers.items():
                lines.append(f"{name}: {value}")
        if payload:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(payload)}")
        raw = ("\r\n".join(lines) + "\r\n\r\n").encode() + payload
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        writer = _MemoryWriter()
        await handle_connection(
            self.service, reader, writer, client=self.client
        )
        return self._parse_response(bytes(writer.buffer))

    async def get(self, target: str, **kwargs):
        return await self.request("GET", target, **kwargs)

    async def post(self, target: str, **kwargs):
        return await self.request("POST", target, **kwargs)

    @staticmethod
    def _parse_response(raw: bytes) -> Tuple[int, dict, Dict[str, str]]:
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if not body:
            return status, {}, headers
        if headers.get("content-type", "").startswith("application/json"):
            parsed = json.loads(body)
        else:
            parsed = body.decode()
        return status, parsed, headers
