"""Serving-surface load bench: sustained requests/s vs overlay size.

Each cell boots a complete in-memory overlay (real introducer, real
``LiveNode`` instances, WAN-flavoured fault plan so latencies are
non-trivial), attaches the serving stack through the overlay's
``workload`` hook, and drives a seeded request schedule through the
actual HTTP parse path (:class:`~repro.serve.http.MemoryHttpClient`) in
two phases:

* **sustained** — paced batches under a generous rate budget: measures
  wall requests/s (the machine-dependent number) plus the deterministic
  counters (request totals, cache hits, verification outcomes,
  virtual-clock latency percentiles) CI gates on;
* **overload** — a burst far beyond a deliberately tight budget against
  a second service instance: proves the limiter sheds with 429s and
  **zero** 5xx when offered load exceeds the budget.

Results append to repo-root ``BENCH_serve.json`` under the trajectory
conventions of :mod:`repro.experiments.bench`: the ``counters`` sections
are byte-stable per seed; ``wall_*`` numbers are for humans.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List

from ..live.memory_transport import MemoryOverlay
from ..live.supervisor import LiveConfig
from .backend import memory_backend
from .http import MemoryHttpClient
from .service import AvailabilityService, ServeConfig

__all__ = ["SERVE_SIZES", "run_serve_bench"]

#: Overlay sizes per scale.  ``test`` keeps CI quick while still pushing
#: >=1k requests through the HTTP surface across the run.
SERVE_SIZES = {
    "paper": (25, 100, 400),
    "bench": (25, 100, 400),
    "test": (10, 25),
}

#: Sustained-phase requests per cell, by scale.
_SUSTAINED_REQUESTS = {"paper": 1600, "bench": 1600, "test": 640}

#: Overload-phase burst size per cell, by scale.
_OVERLOAD_BURST = {"paper": 320, "bench": 320, "test": 160}

#: Seconds the overlay runs before the first request (monitor discovery).
_SETTLE_SECONDS = 12.0


def _schedule(rng: random.Random, nodes: int, count: int) -> List[dict]:
    """A deterministic request mix with a popular head for cache hits."""
    head = max(1, nodes // 5)
    requests: List[dict] = []
    for _ in range(count):
        draw = rng.random()
        if draw < 0.05:
            requests.append({"path": "/nodes"})
        elif draw < 0.12:
            subject = rng.randrange(nodes)
            requests.append({"path": f"/monitors/{subject}"})
        else:
            if rng.random() < 0.7:
                subject = rng.randrange(head)  # hot key
            else:
                subject = rng.randrange(nodes)
            l = 2 if rng.random() < 0.2 else 1
            requests.append({"path": f"/availability/{subject}?l={l}"})
    return requests


async def _drive(
    http: MemoryHttpClient,
    requests: List[dict],
    *,
    concurrency: int,
    pace: float,
    client_pool: int,
) -> Dict[str, int]:
    """Issue *requests* in paced batches; returns a status-code tally."""
    tally: Dict[str, int] = {}
    for start in range(0, len(requests), concurrency):
        batch = requests[start : start + concurrency]
        results = await asyncio.gather(
            *[
                http.request(
                    "GET",
                    item["path"],
                    headers={
                        "X-Client-Id": f"bench-{(start + i) % client_pool}"
                    },
                )
                for i, item in enumerate(batch)
            ]
        )
        for status, _, _ in results:
            key = str(status)
            tally[key] = tally.get(key, 0) + 1
        # Advance the virtual clock between batches: TTLs age, token
        # buckets refill, latency timers fire — all deterministically.
        await asyncio.sleep(pace)
    return dict(sorted(tally.items()))


def _counters(service: AvailabilityService) -> dict:
    """The deterministic (CI-gated) slice of a service's metrics."""
    metrics = service.metrics.to_dict(
        cache_stats=service.cache.stats.to_dict()
    )
    return {
        "totals": metrics["totals"],
        "cache": metrics["cache"],
        "hit_ratio": round(service.cache.stats.hit_ratio, 4),
        "query": metrics["query"],
        "shed_overload": metrics["shed_overload"],
        "availability_latency": metrics["endpoints"].get(
            "/availability", {"p50_ms": 0.0}
        ),
    }


def _bench_cell(n: int, scale: str, seed: int) -> dict:
    """Run one overlay size end to end; returns the cell's results."""
    sustained_n = _SUSTAINED_REQUESTS[scale]
    burst_n = _OVERLOAD_BURST[scale]
    rng = random.Random(seed * 10_007 + n)
    sustained_schedule = _schedule(rng, n, sustained_n)
    wall: Dict[str, float] = {}

    async def workload(overlay: MemoryOverlay) -> dict:
        await asyncio.sleep(_SETTLE_SECONDS)
        backend = memory_backend(overlay)
        await backend.start()
        loop = asyncio.get_running_loop()
        serve_config = ServeConfig(
            cache_ttl=2.0,
            global_rate=100_000.0,
            global_burst=100_000.0,
            client_rate=50_000.0,
            client_burst=50_000.0,
            max_concurrency=256,
            query_timeout=1.0,
        )
        service = AvailabilityService(backend, serve_config, clock=loop.time)
        http = MemoryHttpClient(service)
        try:
            started = time.perf_counter()
            virtual_start = loop.time()
            sustained_tally = await _drive(
                http,
                sustained_schedule,
                concurrency=16,
                pace=0.05,
                client_pool=8,
            )
            wall["sustained_s"] = time.perf_counter() - started
            virtual_elapsed = loop.time() - virtual_start

            # Overload: a fresh service with a tight budget over the same
            # backend; the burst far exceeds it, so the limiter must shed
            # with 429s while the admitted slice still succeeds.
            shed_config = ServeConfig(
                cache_ttl=2.0,
                global_rate=50.0,
                global_burst=32.0,
                client_rate=50_000.0,
                client_burst=50_000.0,
                max_concurrency=256,
                query_timeout=1.0,
            )
            shed_service = AvailabilityService(
                backend, shed_config, clock=loop.time
            )
            shed_http = MemoryHttpClient(shed_service)
            overload_schedule = _schedule(rng, n, burst_n)
            overload_tally = await _drive(
                shed_http,
                overload_schedule,
                concurrency=64,
                pace=0.01,
                client_pool=8,
            )
            return {
                "sustained_tally": sustained_tally,
                "sustained_virtual_s": round(virtual_elapsed, 3),
                "sustained_counters": _counters(service),
                "overload_tally": overload_tally,
                "overload_counters": _counters(shed_service),
            }
        finally:
            await backend.close()

    config = LiveConfig(
        nodes=n,
        duration=_SETTLE_SECONDS + 2.0,
        seed=seed,
        fault="WAN",
        label=f"serve-bench-n{n}",
    )
    overlay = MemoryOverlay(config, workload=workload)
    cell_start = time.perf_counter()
    overlay.run()
    cell_wall = time.perf_counter() - cell_start
    out = overlay.workload_result
    sustained_wall = wall.get("sustained_s", 0.0)
    return {
        "n": n,
        "seed": seed,
        "wall_s": round(cell_wall, 3),
        "sustained": {
            "requests": sustained_n,
            "wall_s": round(sustained_wall, 3),
            "wall_rps": round(sustained_n / sustained_wall)
            if sustained_wall > 0
            else 0,
            "virtual_s": out["sustained_virtual_s"],
            "tally": out["sustained_tally"],
            "counters": out["sustained_counters"],
        },
        "overload": {
            "offered": burst_n,
            "tally": out["overload_tally"],
            "counters": out["overload_counters"],
        },
    }


def run_serve_bench(scale: str = "bench", *, seed: int = 1) -> dict:
    """The full serving-load trajectory entry: one cell per overlay size."""
    try:
        sizes = SERVE_SIZES[scale]
    except KeyError:
        raise ValueError(
            f"unknown bench scale {scale!r}; expected one of "
            f"{sorted(SERVE_SIZES)}"
        ) from None
    cells = [_bench_cell(n, scale, seed) for n in sizes]
    total_requests = sum(
        cell["sustained"]["requests"] + cell["overload"]["offered"]
        for cell in cells
    )
    shed_total = sum(
        cell["overload"]["counters"]["totals"]["rate_limited"]
        for cell in cells
    )
    error_total = sum(
        cell["sustained"]["counters"]["totals"]["server_errors"]
        + cell["overload"]["counters"]["totals"]["server_errors"]
        for cell in cells
    )
    return {
        "cells": cells,
        "requests_total": total_requests,
        "rate_limited_total": shed_total,
        "server_errors_total": error_total,
        "total_wall_s": round(sum(cell["wall_s"] for cell in cells), 2),
    }
