"""Overlay query backend: one observer client over either fabric.

The serving surface needs to run verified §3.3 queries against a live
overlay without *being* a protocol participant.  :class:`OverlayBackend`
is that observer: it binds one transport (real UDP or a
:class:`~repro.live.memory_transport.MemoryTransport`), keeps a peer
table fresh from the introducer's directory, and drives an upgraded
:class:`~repro.apps.query.QueryClient` through an async facade —
``await backend.query(target, l=2)`` — usable from the HTTP service, the
``avmon live query`` one-shot CLI, and the load bench alike.

Nodes learn the observer's address passively (every ``ReportRequest`` /
``HistoryRequest`` carries ``sender``, and the live receive path learns
sender addresses from datagram sources), so the backend needs no
introducer registration: it is invisible to the overlay's monitoring
relation, exactly what an external query front end should be.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, Optional, Tuple

from ..apps.query import QueryClient, QueryResult
from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..live.control import DirectoryReply, DirectoryRequest
from ..live.faults import SERVE
from ..live.memory_transport import VIRTUAL_EPOCH
from ..live.runtime import LiveRuntime
from ..live.transport import Address, PeerTable, UdpTransport

__all__ = ["DEFAULT_CLIENT_ID", "OverlayBackend", "memory_backend"]

#: Default observer id: far above any overlay node id (node ids are dense
#: small integers), so the client can never shadow a real participant.
DEFAULT_CLIENT_ID = 999_999_937


class OverlayBackend:
    """Async verified-query facade over one overlay, any fabric."""

    def __init__(
        self,
        condition: ConsistencyCondition,
        introducer: Address,
        *,
        client_id: NodeId = DEFAULT_CLIENT_ID,
        transport_factory=None,
        host: str = "127.0.0.1",
        epoch: float = 0.0,
        clock=None,
        min_monitors: int = 1,
        query_timeout: float = 2.0,
        report_retries: int = 2,
        directory_interval: float = 2.0,
    ) -> None:
        self.condition = condition
        self.client_id = client_id
        self._introducer = introducer
        self._transport_factory = (
            transport_factory
            if transport_factory is not None
            else UdpTransport.create
        )
        self._host = host
        self._epoch = epoch
        self._clock = clock
        self.min_monitors = min_monitors
        self.query_timeout = query_timeout
        self._report_retries = report_retries
        self.directory_interval = directory_interval
        self.peers = PeerTable()
        self.transport = None
        self.runtime: Optional[LiveRuntime] = None
        self.client: Optional[QueryClient] = None
        #: Latest directory, as ``(node, host, port)`` triples.
        self.entries: Tuple[Tuple[NodeId, str, int], ...] = ()
        self._directory_event = asyncio.Event()
        self._refresh_task: Optional[asyncio.Task] = None
        #: Per-subject serialization: QueryClient keys in-flight state by
        #: subject, so two concurrent queries for one subject must run in
        #: turn (the service's cache single-flights the common case away).
        self._subject_locks: Dict[NodeId, asyncio.Lock] = {}
        self.queries = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the transport and fetch an initial peer directory."""
        self.transport = await self._transport_factory(
            self._handle, self._host, 0
        )
        clock = self._clock if self._clock is not None else time.time
        self.runtime = LiveRuntime(
            self.client_id,
            self.transport,
            self.peers,
            random.Random(self.client_id),
            epoch=self._epoch or clock(),
            clock=clock,
        )
        self.client = QueryClient(
            self.client_id,
            self.condition,
            self.runtime,
            min_monitors=self.min_monitors,
            timeout=self.query_timeout,
            report_retries=self._report_retries,
        )
        await self.refresh_directory()
        self._refresh_task = asyncio.create_task(self._refresh_loop())

    async def close(self) -> None:
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            try:
                await self._refresh_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._refresh_task = None
        if self.client is not None:
            self.client.on_leave(self.runtime.now())
        if self.transport is not None:
            self.transport.close()

    # -- directory ---------------------------------------------------------

    async def refresh_directory(self, *, timeout: float = 1.0) -> bool:
        """Ask the introducer for the directory; True if a reply landed."""
        self._directory_event.clear()
        self.transport.send_to(self._introducer, DirectoryRequest())
        try:
            await asyncio.wait_for(self._directory_event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _refresh_loop(self) -> None:
        while True:
            await asyncio.sleep(self.directory_interval)
            await self.refresh_directory()

    def nodes(self) -> Tuple[NodeId, ...]:
        """Currently-alive overlay node ids, per the latest directory."""
        return self.peers.alive_ids()

    # -- queries -----------------------------------------------------------

    async def query(
        self,
        subject: NodeId,
        *,
        l: Optional[int] = None,
        timeout: Optional[float] = None,
        history: bool = True,
    ) -> QueryResult:
        """Run one verified availability query and await its result."""
        lock = self._subject_locks.get(subject)
        if lock is None:
            lock = self._subject_locks[subject] = asyncio.Lock()
        async with lock:
            self.queries += 1
            loop = asyncio.get_running_loop()
            future: asyncio.Future = loop.create_future()

            def settle(result: QueryResult) -> None:
                if not future.done():
                    future.set_result(result)

            self.client.query(
                subject,
                settle,
                min_monitors=l,
                timeout=timeout,
                history=history,
            )
            return await future

    async def fetch_monitors(
        self,
        subject: NodeId,
        *,
        l: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Report-and-verify only: *subject*'s verified monitor set."""
        return await self.query(subject, l=l, timeout=timeout, history=False)

    # -- receive path ------------------------------------------------------

    def _handle(self, message: Any, addr: Address) -> None:
        if isinstance(message, DirectoryReply):
            alive = []
            entries = []
            for entry in message.entries:
                if len(entry) != 3:
                    continue
                node_id, host, port = entry
                self.peers.learn(node_id, (host, port))
                alive.append(node_id)
                entries.append((node_id, host, port))
            self.peers.set_alive(alive)
            self.entries = tuple(entries)
            self._directory_event.set()
        elif self.client is not None:
            self.client.handle_message(message)


def memory_backend(overlay, **kwargs) -> OverlayBackend:
    """An :class:`OverlayBackend` attached to a *running*
    :class:`~repro.live.memory_transport.MemoryOverlay` (e.g. from inside
    its ``workload`` hook): same codec, same introducer directory, virtual
    clock — no sockets."""
    loop = asyncio.get_running_loop()
    kwargs.setdefault("query_timeout", 2.0)
    return OverlayBackend(
        overlay.condition,
        overlay.introducer.address,
        transport_factory=overlay.network.transport_factory(SERVE),
        host="mem",
        epoch=VIRTUAL_EPOCH,
        clock=loop.time,
        **kwargs,
    )
