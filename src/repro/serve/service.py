"""The availability service: routes, cache, limiter, admission, metrics.

:class:`AvailabilityService` is the fabric-agnostic core of the serving
surface: it maps ``(method, target, body, client)`` to ``(status, JSON)``
and owns everything between the HTTP layer and the overlay backend —

* a read-through TTL cache keyed by ``(kind, target, l)`` with
  single-flight deduplication (:mod:`repro.serve.cache`);
* a two-layer token-bucket rate limiter returning 429 + ``Retry-After``
  (:mod:`repro.serve.ratelimit`);
* bounded-concurrency admission control: beyond ``max_concurrency``
  in-flight overlay queries, requests are shed with 429 (``overloaded``)
  rather than queued — overload must surface as backpressure, never as
  5xx or unbounded latency;
* per-endpoint counters and latency percentiles
  (:mod:`repro.serve.metrics`), rendered by ``GET /metrics`` and
  projected onto the control plane as
  :class:`~repro.live.control.ServeStatusReply`.

The HTTP layer (:mod:`repro.serve.http`) stays protocol-dumb; everything
here is plain async Python, so the same service instance serves real
sockets and the in-memory test client identically.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..apps.prediction import PeriodicPredictor, SaturatingCounterPredictor
from ..apps.query import QueryResult
from ..apps.replication import select_replicas_by_availability
from ..live.control import ServeStatusReply
from .backend import OverlayBackend
from .cache import TtlCache
from .metrics import ServeMetrics
from .ratelimit import RateLimiter

__all__ = ["ServeConfig", "AvailabilityService", "result_json"]


@dataclass
class ServeConfig:
    """Operator knobs for one service instance (CLI flags map 1:1)."""

    #: Cache TTL for query results, seconds; 0 disables caching.
    cache_ttl: float = 2.0
    cache_entries: int = 4096
    #: Global token bucket: sustained requests/s and burst headroom.
    global_rate: float = 500.0
    global_burst: float = 1000.0
    #: Per-client bucket.
    client_rate: float = 100.0
    client_burst: float = 200.0
    #: In-flight overlay queries admitted before shedding.
    max_concurrency: int = 64
    #: Default and maximum ``l`` (monitors per verified query).
    default_l: int = 1
    max_l: int = 64
    #: Per-query overlay deadline, seconds.
    query_timeout: float = 2.0


class AvailabilityService:
    """Route table + policy layers over one :class:`OverlayBackend`."""

    def __init__(
        self,
        backend: OverlayBackend,
        config: Optional[ServeConfig] = None,
        *,
        clock=None,
        registry=None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else ServeConfig()
        self._clock = clock
        self.metrics = ServeMetrics(registry)
        self.cache = TtlCache(
            ttl=self.config.cache_ttl,
            max_entries=self.config.cache_entries,
            clock=clock,
        )
        # Cache effectiveness is deterministic for a deterministic request
        # schedule; expose it on the shared registry as callback gauges.
        stats = self.cache.stats
        self.metrics.registry.gauge("serve.cache.hits", fn=lambda: stats.hits)
        self.metrics.registry.gauge(
            "serve.cache.misses", fn=lambda: stats.misses
        )
        self.limiter = RateLimiter(
            global_rate=self.config.global_rate,
            global_burst=self.config.global_burst,
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
            clock=clock,
        )
        self._active = 0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    # -- entry point -------------------------------------------------------

    async def handle(
        self,
        method: str,
        target: str,
        body: Optional[dict],
        client: str,
    ) -> Tuple[int, dict, Dict[str, str]]:
        """Serve one request; returns ``(status, json_body, headers)``.

        Never raises for request-shaped problems — those are 4xx bodies.
        An exception escaping here is a genuine service bug, which the
        HTTP layer surfaces as the 5xx it is.
        """
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)
        route, handler = self._route(method, path)
        started = self._now()
        headers: Dict[str, str] = {}
        status, payload = 500, {"error": "internal"}
        try:
            if handler is None:
                status, payload = 404, {"error": "no such endpoint"}
            elif route in ("/healthz", "/metrics"):
                status, payload = await handler(path, params, body)
            else:
                decision = self.limiter.check(client)
                if not decision.allowed:
                    status, payload = 429, {
                        "error": "rate_limited",
                        "limited_by": decision.limited_by,
                        "retry_after": round(decision.retry_after, 3),
                    }
                    headers["Retry-After"] = str(
                        max(1, int(decision.retry_after + 0.999))
                    )
                elif self._active >= self.config.max_concurrency:
                    self.metrics.shed_overload += 1
                    status, payload = 429, {
                        "error": "overloaded",
                        "retry_after": round(self.config.query_timeout, 3),
                    }
                    headers["Retry-After"] = "1"
                else:
                    self._active += 1
                    try:
                        status, payload = await handler(path, params, body)
                    finally:
                        self._active -= 1
        finally:
            # The endpoint label aggregates path parameters away so the
            # metrics cardinality is the route table's, not the id space's.
            self.metrics.endpoint(route).record(
                status, self._now() - started
            )
        return status, payload, headers

    def _route(self, method: str, path: str):
        if method == "GET":
            if path == "/healthz":
                return "/healthz", self._healthz
            if path == "/metrics":
                return "/metrics", self._metrics
            if path == "/nodes":
                return "/nodes", self._nodes
            if path.startswith("/availability/"):
                return "/availability", self._availability
            if path.startswith("/monitors/"):
                return "/monitors", self._monitors
        elif method == "POST":
            if path == "/predict":
                return "/predict", self._predict
            if path == "/replicate":
                return "/replicate", self._replicate
        return path, None

    # -- parameter parsing -------------------------------------------------

    def _parse_l(self, params) -> int:
        raw = params.get("l", [str(self.config.default_l)])[-1]
        try:
            l = int(raw)
        except ValueError:
            raise _BadRequest(f"l must be an integer, got {raw!r}")
        if not 1 <= l <= self.config.max_l:
            raise _BadRequest(
                f"l must be in [1, {self.config.max_l}], got {l}"
            )
        return l

    @staticmethod
    def _parse_node(path: str) -> int:
        tail = path.rsplit("/", 1)[-1]
        try:
            node = int(tail)
        except ValueError:
            raise _BadRequest(f"node id must be an integer, got {tail!r}")
        if node < 0:
            raise _BadRequest(f"node id must be >= 0, got {node}")
        return node

    # -- the cached query path ---------------------------------------------

    async def _cached_query(self, kind: str, subject: int, l: int) -> dict:
        async def load() -> dict:
            result = await self.backend.query(
                subject,
                l=l,
                timeout=self.config.query_timeout,
                history=(kind == "availability"),
            )
            self.metrics.record_query_result(result)
            return result_json(result)

        return await self.cache.get((kind, subject, l), load)

    # -- endpoints ---------------------------------------------------------

    async def _healthz(self, path, params, body):
        return 200, {
            "status": "ok",
            "overlay_nodes": len(self.backend.nodes()),
            "in_flight": self._active,
        }

    async def _metrics(self, path, params, body):
        if params.get("format", [""])[-1] == "prometheus":
            return 200, self.metrics.render_prometheus()
        return 200, self.metrics.to_dict(
            cache_stats=self.cache.stats.to_dict()
        )

    async def _nodes(self, path, params, body):
        return 200, {"nodes": sorted(self.backend.nodes())}

    async def _availability(self, path, params, body):
        try:
            subject = self._parse_node(path)
            l = self._parse_l(params)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}
        return 200, await self._cached_query("availability", subject, l)

    async def _monitors(self, path, params, body):
        try:
            subject = self._parse_node(path)
            l = self._parse_l(params)
        except _BadRequest as exc:
            return 400, {"error": str(exc)}
        payload = await self._cached_query("monitors", subject, l)
        return 200, {
            key: payload[key]
            for key in (
                "subject",
                "verified_monitors",
                "rejected_monitors",
                "policy_satisfied",
                "timed_out",
            )
        }

    async def _predict(self, path, params, body):
        if not isinstance(body, dict):
            return 400, {"error": "JSON object body required"}
        predictor = body.get("predictor", "counter")
        samples = body.get("samples")
        if not isinstance(samples, list) or not samples:
            return 400, {"error": "samples must be a non-empty list"}
        try:
            if predictor == "counter":
                model = SaturatingCounterPredictor(
                    bits=int(body.get("bits", 2))
                )
                model.train([bool(s) for s in samples])
                return 200, {
                    "predictor": "counter",
                    "prediction_up": model.predict(),
                }
            if predictor == "periodic":
                model = PeriodicPredictor(
                    cycle=float(body.get("cycle", 86400.0)),
                    buckets=int(body.get("buckets", 24)),
                )
                model.train([(float(t), bool(u)) for t, u in samples])
                at = float(body.get("at", 0.0))
                return 200, {
                    "predictor": "periodic",
                    "at": at,
                    "probability_up": round(model.probability_up(at), 6),
                    "prediction_up": model.predict(at),
                }
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"bad predictor input: {exc}"}
        return 400, {
            "error": f"unknown predictor {predictor!r} "
            "(expected 'counter' or 'periodic')"
        }

    async def _replicate(self, path, params, body):
        if not isinstance(body, dict):
            return 400, {"error": "JSON object body required"}
        candidates = body.get("nodes")
        if candidates is None:
            candidates = sorted(self.backend.nodes())
        if not isinstance(candidates, list) or not candidates:
            return 400, {"error": "nodes must be a non-empty list"}
        if not all(
            isinstance(n, int) and not isinstance(n, bool) and n >= 0
            for n in candidates
        ):
            return 400, {"error": "nodes must be non-negative integers"}
        try:
            count = int(body.get("count", 3))
        except (TypeError, ValueError):
            return 400, {"error": "count must be an integer"}
        if count < 1:
            return 400, {"error": f"count must be >= 1, got {count}"}
        try:
            l = int(body.get("l", self.config.default_l))
        except (TypeError, ValueError):
            return 400, {"error": "l must be an integer"}
        if not 1 <= l <= self.config.max_l:
            return 400, {"error": f"l must be in [1, {self.config.max_l}]"}
        availability: Dict[int, float] = {}
        incomplete = []
        for subject in candidates:
            payload = await self._cached_query("availability", subject, l)
            availability[subject] = payload["availability"]
            if payload["timed_out"] or not payload["policy_satisfied"]:
                incomplete.append(subject)
        placement = select_replicas_by_availability(availability, count)
        return 200, {
            "replicas": list(placement.replicas),
            "placement_availability": round(placement.availability, 6),
            "policy": placement.policy,
            "availability": {
                str(node): round(availability[node], 6)
                for node in sorted(availability)
            },
            "incomplete": sorted(incomplete),
        }

    # -- control-plane projection ------------------------------------------

    def serve_status_reply(self, probe: int = 0) -> ServeStatusReply:
        totals = self.metrics.totals()
        return ServeStatusReply(
            probe=probe,
            requests=totals["requests"],
            ok=totals["ok"],
            client_errors=totals["client_errors"],
            server_errors=totals["server_errors"],
            rate_limited=totals["rate_limited"],
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            monitors_verified=self.metrics.monitors_verified,
            monitors_rejected=self.metrics.monitors_rejected,
            queries_timed_out=self.metrics.queries_timed_out,
        )


class _BadRequest(Exception):
    """Request-shaped problem; rendered as a 400 JSON body."""


def result_json(result: QueryResult) -> dict:
    """One QueryResult as the JSON shape every consumer shares (the
    ``/availability`` endpoint, ``avmon live query``, the bench)."""
    return {
        "subject": result.subject,
        "availability": round(result.availability, 6),
        "verified_monitors": sorted(result.verified_monitors),
        "rejected_monitors": sorted(result.rejected_monitors),
        "reports": {
            str(monitor): round(value, 6)
            for monitor, value in sorted(result.reports.items())
        },
        "complete": result.complete,
        "policy_satisfied": result.policy_satisfied,
        "monitors_queried": result.monitors_queried,
        "monitors_answered": result.monitors_answered,
        "timed_out": result.timed_out,
    }
