"""``avmon store serve``: a shared summary-store daemon over HTTP.

One process owns a :class:`~repro.experiments.store_backends.
FilesystemBackend` directory and exposes it as a small named-object
protocol, so any number of sweep workers (local or remote) and serve
front ends share one content-addressed cache through
:class:`~repro.experiments.store_backends.SharedStoreBackend`:

========  ====================  ===========================================
method    target                semantics
========  ====================  ===========================================
GET       /objects              list entries: ``{"entries": [{name, bytes}]}``
GET       /objects/{name}       fetch: ``{"name", "text"}`` or 404
PUT       /objects/{name}       store ``{"text": ...}`` (atomic on disk)
DELETE    /objects/{name}       remove; ``{"deleted": bool}`` or 404
GET       /stat                 totals + request counters
GET       /healthz              liveness probe
========  ====================  ===========================================

Object text travels inside a JSON string, so stored bytes round-trip
exactly — the byte-identity contract on summary JSON holds across the
wire.  The HTTP plumbing is the same stdlib-asyncio layer the
availability service uses (:mod:`repro.serve.http`): the daemon is just
another ``service.handle(method, target, body, client)`` behind it, and
the in-memory HTTP client drives it socket-free in tests.

The protocol is deliberately cache-shaped, not database-shaped: objects
are immutable values under content addresses, PUT is idempotent, and a
lost write is at worst a future recomputation.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, Optional, Tuple

from .store_backends import FilesystemBackend, StoreBackend, valid_object_name

__all__ = ["StoreService", "serve_store", "run_store_server"]


class StoreService:
    """The object-protocol request handler over one :class:`StoreBackend`.

    Compatible with :func:`repro.serve.http.handle_connection`: requests
    arrive as ``(method, target, parsed_json_body, client)`` and leave as
    ``(status, payload, extra_headers)``.  Backend I/O failures surface
    as 500s with the error text — clients treat those as cache misses.
    """

    def __init__(self, backend: StoreBackend) -> None:
        self.backend = backend
        self.counters: Dict[str, int] = {
            "requests": 0,
            "get_hits": 0,
            "get_misses": 0,
            "puts": 0,
            "deletes": 0,
            "client_errors": 0,
            "server_errors": 0,
        }

    async def handle(
        self,
        method: str,
        target: str,
        body: Optional[dict],
        client: str,
    ) -> Tuple[int, dict, Dict[str, str]]:
        self.counters["requests"] += 1
        try:
            status, payload = self._route(method, target, body)
        except OSError as error:
            self.counters["server_errors"] += 1
            return 500, {"error": f"store backend failure: {error}"}, {}
        if 400 <= status < 500:
            self.counters["client_errors"] += 1
        return status, payload, {}

    def _route(
        self, method: str, target: str, body: Optional[dict]
    ) -> Tuple[int, dict]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            return 200, {"status": "ok"}
        if path == "/stat":
            payload = self.backend.stat()
            payload["counters"] = dict(self.counters)
            return 200, payload
        if path == "/objects":
            if method != "GET":
                return 405, {"error": "listing is GET-only"}
            return 200, {
                "entries": [
                    {"name": entry.name, "bytes": entry.size}
                    for entry in self.backend.entries()
                ]
            }
        if path.startswith("/objects/"):
            name = path[len("/objects/"):]
            if not valid_object_name(name):
                return 400, {"error": f"illegal object name {name!r}"}
            if method == "GET":
                text = self.backend.get(name)
                if text is None:
                    self.counters["get_misses"] += 1
                    return 404, {"error": f"no object {name}"}
                self.counters["get_hits"] += 1
                return 200, {"name": name, "text": text}
            if method == "PUT":
                if not isinstance(body, dict) or not isinstance(
                    body.get("text"), str
                ):
                    return 400, {"error": 'PUT body must be {"text": "..."}'}
                self.backend.put(name, body["text"])
                self.counters["puts"] += 1
                return 200, {"stored": name, "bytes": len(body["text"])}
            if method == "DELETE":
                if not self.backend.delete(name):
                    return 404, {"error": f"no object {name}"}
                self.counters["deletes"] += 1
                return 200, {"deleted": True, "name": name}
            return 405, {"error": f"unsupported method {method}"}
        return 404, {"error": f"no route for {path}"}


async def serve_store(
    backend: StoreBackend, host: str = "127.0.0.1", port: int = 0
):
    """Bind the object protocol on a real socket; returns the asyncio
    server (``server.sockets[0].getsockname()`` has the bound port)."""
    from ..serve.http import serve_http

    return await serve_http(StoreService(backend), host, port)


def run_store_server(
    root: str, host: str = "127.0.0.1", port: int = 7780, out=sys.stderr
) -> int:
    """Run the daemon until interrupted (the ``avmon store serve`` body)."""
    backend = FilesystemBackend(root)

    async def serve_forever() -> None:
        server = await serve_store(backend, host, port)
        bound = server.sockets[0].getsockname()[1]
        print(
            f"store: serving {backend.root} on http://{host}:{bound} "
            f"(point workers at it with --cache-dir http://{host}:{bound}; "
            f"Ctrl-C to stop)",
            file=out,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(serve_forever())
    return 0
