"""``avmon store serve``: a shared summary-store daemon over HTTP.

One process owns a :class:`~repro.experiments.store_backends.
FilesystemBackend` directory and exposes it as a small named-object
protocol, so any number of sweep workers (local or remote) and serve
front ends share one content-addressed cache through
:class:`~repro.experiments.store_backends.SharedStoreBackend`:

========  ====================  ===========================================
method    target                semantics
========  ====================  ===========================================
GET       /objects              list entries: ``{"entries": [{name, bytes}]}``
GET       /objects/{name}       fetch: ``{"name", "text"}`` or 404
PUT       /objects/{name}       store ``{"text": ...}`` (atomic on disk)
DELETE    /objects/{name}       remove; ``{"deleted": bool}`` or 404
GET       /stat                 totals + request counters
GET       /metrics              obs registry (JSON; ``?format=prometheus``)
GET       /healthz              liveness probe
========  ====================  ===========================================

Object text travels inside a JSON string, so stored bytes round-trip
exactly — the byte-identity contract on summary JSON holds across the
wire.  The HTTP plumbing is the same stdlib-asyncio layer the
availability service uses (:mod:`repro.serve.http`): the daemon is just
another ``service.handle(method, target, body, client)`` behind it, and
the in-memory HTTP client drives it socket-free in tests.

The protocol is deliberately cache-shaped, not database-shaped: objects
are immutable values under content addresses, PUT is idempotent, and a
lost write is at worst a future recomputation.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..obs.registry import MetricsRegistry
from .store_backends import FilesystemBackend, StoreBackend, valid_object_name

__all__ = ["StoreService", "serve_store", "run_store_server"]

#: The legacy counter names ``/stat`` has always reported, in order.
_STAT_COUNTERS = (
    "requests",
    "get_hits",
    "get_misses",
    "puts",
    "deletes",
    "client_errors",
    "server_errors",
)


class StoreService:
    """The object-protocol request handler over one :class:`StoreBackend`.

    Compatible with :func:`repro.serve.http.handle_connection`: requests
    arrive as ``(method, target, parsed_json_body, client)`` and leave as
    ``(status, payload, extra_headers)``.  Backend I/O failures surface
    as 500s with the error text — clients treat those as cache misses.

    All counters live in a :class:`repro.obs.registry.MetricsRegistry`
    (deterministic kind) exposed on ``GET /metrics`` as JSON or, with
    ``?format=prometheus``, Prometheus text; ``/stat`` keeps its legacy
    ``counters`` dict shape.
    """

    def __init__(
        self,
        backend: StoreBackend,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.backend = backend
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"store.{name}")
            for name in _STAT_COUNTERS
        }
        self._bytes_in = self.registry.counter("store.bytes_in")
        self._bytes_out = self.registry.counter("store.bytes_out")
        self._verbs: Dict[str, object] = {}
        self.registry.gauge(
            "store.objects", fn=lambda: len(self.backend.entries())
        )
        self.registry.gauge(
            "store.object_bytes",
            fn=lambda: sum(e.size for e in self.backend.entries()),
        )

    @property
    def counters(self) -> Dict[str, int]:
        """Legacy counters dict, as ``/stat`` has always rendered it."""
        return {name: c.value for name, c in self._counters.items()}

    def _count_verb(self, method: str) -> None:
        counter = self._verbs.get(method)
        if counter is None:
            counter = self._verbs[method] = self.registry.counter(
                f"store.requests_by_verb.{method}"
            )
        counter.inc()

    async def handle(
        self,
        method: str,
        target: str,
        body: Optional[dict],
        client: str,
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        self._counters["requests"].inc()
        self._count_verb(method)
        try:
            status, payload = self._route(method, target, body)
        except OSError as error:
            self._counters["server_errors"].inc()
            return 500, {"error": f"store backend failure: {error}"}, {}
        if 400 <= status < 500:
            self._counters["client_errors"].inc()
        return status, payload, {}

    def _route(
        self, method: str, target: str, body: Optional[dict]
    ) -> Tuple[int, Union[dict, str]]:
        split = urlsplit(target)
        path = split.path
        if path == "/healthz":
            return 200, {"status": "ok"}
        if path == "/stat":
            payload = self.backend.stat()
            payload["counters"] = self.counters
            return 200, payload
        if path == "/metrics":
            params = parse_qs(split.query)
            if params.get("format", [""])[-1] == "prometheus":
                return 200, self.registry.render_prometheus()
            return 200, self.registry.to_dict()
        if path == "/objects":
            if method != "GET":
                return 405, {"error": "listing is GET-only"}
            return 200, {
                "entries": [
                    {"name": entry.name, "bytes": entry.size}
                    for entry in self.backend.entries()
                ]
            }
        if path.startswith("/objects/"):
            name = path[len("/objects/"):]
            if not valid_object_name(name):
                return 400, {"error": f"illegal object name {name!r}"}
            if method == "GET":
                text = self.backend.get(name)
                if text is None:
                    self._counters["get_misses"].inc()
                    return 404, {"error": f"no object {name}"}
                self._counters["get_hits"].inc()
                self._bytes_out.inc(len(text))
                return 200, {"name": name, "text": text}
            if method == "PUT":
                if not isinstance(body, dict) or not isinstance(
                    body.get("text"), str
                ):
                    return 400, {"error": 'PUT body must be {"text": "..."}'}
                self.backend.put(name, body["text"])
                self._counters["puts"].inc()
                self._bytes_in.inc(len(body["text"]))
                return 200, {"stored": name, "bytes": len(body["text"])}
            if method == "DELETE":
                if not self.backend.delete(name):
                    return 404, {"error": f"no object {name}"}
                self._counters["deletes"].inc()
                return 200, {"deleted": True, "name": name}
            return 405, {"error": f"unsupported method {method}"}
        return 404, {"error": f"no route for {path}"}


async def serve_store(
    backend: StoreBackend, host: str = "127.0.0.1", port: int = 0
):
    """Bind the object protocol on a real socket; returns the asyncio
    server (``server.sockets[0].getsockname()`` has the bound port)."""
    from ..serve.http import serve_http

    return await serve_http(StoreService(backend), host, port)


def run_store_server(
    root: str, host: str = "127.0.0.1", port: int = 7780, out=sys.stderr
) -> int:
    """Run the daemon until interrupted (the ``avmon store serve`` body)."""
    backend = FilesystemBackend(root)

    async def serve_forever() -> None:
        server = await serve_store(backend, host, port)
        bound = server.sockets[0].getsockname()[1]
        print(
            f"store: serving {backend.root} on http://{host}:{bound} "
            f"(point workers at it with --cache-dir http://{host}:{bound}; "
            f"Ctrl-C to stop)",
            file=out,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(serve_forever())
    return 0
