"""``avmon store serve``: a shared summary-store daemon over HTTP.

One process owns a :class:`~repro.experiments.store_backends.
FilesystemBackend` directory and exposes it as a small named-object
protocol, so any number of sweep workers (local or remote) and serve
front ends share one content-addressed cache through
:class:`~repro.experiments.store_backends.SharedStoreBackend`:

========  ====================  ===========================================
method    target                semantics
========  ====================  ===========================================
GET       /objects              list entries: ``{"entries": [{name, bytes}]}``
GET       /objects/{name}       fetch: ``{"name", "text"}`` or 404
PUT       /objects/{name}       store ``{"text": ...}`` (atomic on disk)
DELETE    /objects/{name}       remove; ``{"deleted": bool}`` or 404
GET       /stat                 totals + request counters
GET       /metrics              obs registry (JSON; ``?format=prometheus``)
GET       /healthz              liveness probe
POST      /compact              sweep stale tmp/corrupt files (see below)
========  ====================  ===========================================

Beyond objects, the daemon is the sweep fabric's coordinator: a
task-lease protocol lets workers on any host lease cells and heartbeat
over HTTP (:class:`~repro.experiments.taskboard.TaskBoard`), and cell
claims keyed by store address let two parents share one grid without
computing a cell twice (:class:`~repro.experiments.taskboard.CellClaims`):

========  ====================  ===========================================
POST      /tasks                publish ``{id, payload, key, lease_ttl, attempt}``
POST      /tasks/claim          ``{worker}`` -> ``{task}`` or ``{task: null}``
POST      /tasks/{id}/beat      ``{worker}``; 409 when the lease was lost
POST      /tasks/{id}/done      ``{worker, persisted, summary?}``; 409 dup
POST      /tasks/{id}/failed    ``{worker, error}``
POST      /tasks/{id}/cancel    withdraw a published task
GET       /tasks/events         ``?since=N&prefix=P`` -> ``{cursor, events}``
GET       /tasks                board listing + per-state counts
POST      /claims/claim         ``{key, owner, ttl}`` -> ``{granted, owner}``
POST      /claims/renew         ``{keys, owner, ttl}`` -> ``{renewed}``
POST      /claims/release       ``{key, owner}`` -> ``{released}``
GET       /claims               live claims listing
========  ====================  ===========================================

With ``auth_token`` set (``--auth-token`` / ``AVMON_STORE_TOKEN``),
every mutating verb (PUT, DELETE, any POST) requires
``Authorization: Bearer <token>`` and replies 401 otherwise; reads stay
open so dashboards and probes keep working.

Object text travels inside a JSON string, so stored bytes round-trip
exactly — the byte-identity contract on summary JSON holds across the
wire.  The HTTP plumbing is the same stdlib-asyncio layer the
availability service uses (:mod:`repro.serve.http`): the daemon is just
another ``service.handle(method, target, body, client)`` behind it, and
the in-memory HTTP client drives it socket-free in tests.

The protocol is deliberately cache-shaped, not database-shaped: objects
are immutable values under content addresses, PUT is idempotent, and a
lost write is at worst a future recomputation.  The coordination state
(board, claims) is soft by design — losing the daemon loses leases, not
results.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..obs.registry import MetricsRegistry
from .store_backends import FilesystemBackend, StoreBackend, valid_object_name
from .taskboard import CellClaims, TaskBoard

__all__ = ["StoreService", "serve_store", "run_store_server"]

#: The legacy counter names ``/stat`` has always reported, in order.
_STAT_COUNTERS = (
    "requests",
    "get_hits",
    "get_misses",
    "puts",
    "deletes",
    "client_errors",
    "server_errors",
)


class StoreService:
    """The object-protocol request handler over one :class:`StoreBackend`.

    Compatible with :func:`repro.serve.http.handle_connection`: requests
    arrive as ``(method, target, parsed_json_body, client)`` — plus the
    raw header dict, which the connection layer forwards because
    ``accepts_headers`` is set — and leave as ``(status, payload,
    extra_headers)``.  Backend I/O failures surface as 500s with the
    error text — clients treat those as cache misses.

    All counters live in a :class:`repro.obs.registry.MetricsRegistry`
    (deterministic kind) exposed on ``GET /metrics`` as JSON or, with
    ``?format=prometheus``, Prometheus text; ``/stat`` keeps its legacy
    ``counters`` dict shape.
    """

    #: Tells the HTTP layer to pass request headers into :meth:`handle`.
    accepts_headers = True

    def __init__(
        self,
        backend: StoreBackend,
        registry: Optional[MetricsRegistry] = None,
        *,
        auth_token: Optional[str] = None,
        clock=time.monotonic,
    ) -> None:
        self.backend = backend
        self.registry = registry if registry is not None else MetricsRegistry()
        self.auth_token = auth_token or None
        self.board = TaskBoard(clock)
        self.claims = CellClaims(clock)
        self._counters = {
            name: self.registry.counter(f"store.{name}")
            for name in _STAT_COUNTERS
        }
        self._bytes_in = self.registry.counter("store.bytes_in")
        self._bytes_out = self.registry.counter("store.bytes_out")
        self._auth_rejects = self.registry.counter("store.auth_rejects")
        self._claims_granted = self.registry.counter("store.claims_granted")
        self._claims_denied = self.registry.counter("store.claims_denied")
        self._tasks_published = self.registry.counter("store.tasks_published")
        self._tasks_claimed = self.registry.counter("store.tasks_claimed")
        self._tasks_done = self.registry.counter("store.tasks_done")
        self._entry_scans = self.registry.counter("store.entry_scans")
        self._verbs: Dict[str, object] = {}
        #: One ``entries()`` scan feeds both object gauges *and* every
        #: listing until a mutation invalidates it — the two gauges can
        #: never disagree mid-PUT, and a metrics scrape costs at most
        #: one directory scan instead of one per gauge.
        self._entries_cache: Optional[tuple] = None
        self.registry.gauge("store.objects", fn=lambda: len(self._entries()))
        self.registry.gauge(
            "store.object_bytes",
            fn=lambda: sum(e.size for e in self._entries()),
        )
        self.registry.gauge(
            "store.claims_expired", fn=lambda: self.claims.expired_total
        )

    # -- cached directory view --------------------------------------------

    def _entries(self) -> tuple:
        if self._entries_cache is None:
            self._entries_cache = self.backend.entries()
            self._entry_scans.inc()
        return self._entries_cache

    def _invalidate_entries(self) -> None:
        self._entries_cache = None

    @property
    def counters(self) -> Dict[str, int]:
        """Legacy counters dict, as ``/stat`` has always rendered it."""
        return {name: c.value for name, c in self._counters.items()}

    def _count_verb(self, method: str) -> None:
        counter = self._verbs.get(method)
        if counter is None:
            counter = self._verbs[method] = self.registry.counter(
                f"store.requests_by_verb.{method}"
            )
        counter.inc()

    def _authorized(self, method: str, headers: Optional[Dict[str, str]]) -> bool:
        if self.auth_token is None or method == "GET":
            return True
        supplied = (headers or {}).get("authorization", "")
        return supplied == f"Bearer {self.auth_token}"

    async def handle(
        self,
        method: str,
        target: str,
        body: Optional[dict],
        client: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        self._counters["requests"].inc()
        self._count_verb(method)
        if not self._authorized(method, headers):
            self._auth_rejects.inc()
            self._counters["client_errors"].inc()
            return 401, {"error": "missing or bad bearer token"}, {}
        try:
            status, payload = self._route(method, target, body)
        except OSError as error:
            self._counters["server_errors"].inc()
            return 500, {"error": f"store backend failure: {error}"}, {}
        if 400 <= status < 500:
            self._counters["client_errors"].inc()
        return status, payload, {}

    def _route(
        self, method: str, target: str, body: Optional[dict]
    ) -> Tuple[int, Union[dict, str]]:
        split = urlsplit(target)
        path = split.path
        if path == "/healthz":
            return 200, {"status": "ok"}
        if path == "/stat":
            entries = self._entries()
            payload = {
                "dir": self.backend.describe(),
                "entries": len(entries),
                "total_bytes": sum(entry.size for entry in entries),
                "counters": self.counters,
            }
            return 200, payload
        if path == "/metrics":
            params = parse_qs(split.query)
            if params.get("format", [""])[-1] == "prometheus":
                return 200, self.registry.render_prometheus()
            return 200, self.registry.to_dict()
        if path == "/compact":
            if method != "POST":
                return 405, {"error": "compaction is POST-only"}
            compact = getattr(self.backend, "compact", None)
            if compact is None:
                return 400, {"error": "backend does not support compaction"}
            tmp_age = 60.0
            if isinstance(body, dict) and isinstance(
                body.get("tmp_age"), (int, float)
            ):
                tmp_age = float(body["tmp_age"])
            result = compact(tmp_age=tmp_age)
            self._invalidate_entries()
            return 200, result
        if path == "/objects":
            if method != "GET":
                return 405, {"error": "listing is GET-only"}
            return 200, {
                "entries": [
                    {"name": entry.name, "bytes": entry.size}
                    for entry in self._entries()
                ]
            }
        if path.startswith("/objects/"):
            return self._route_object(method, path[len("/objects/"):], body)
        if path == "/tasks" or path.startswith("/tasks/"):
            return self._route_tasks(method, path, split.query, body)
        if path == "/claims" or path.startswith("/claims/"):
            return self._route_claims(method, path, body)
        return 404, {"error": f"no route for {path}"}

    def _route_object(
        self, method: str, name: str, body: Optional[dict]
    ) -> Tuple[int, Union[dict, str]]:
        if not valid_object_name(name):
            return 400, {"error": f"illegal object name {name!r}"}
        if method == "GET":
            text = self.backend.get(name)
            if text is None:
                self._counters["get_misses"].inc()
                return 404, {"error": f"no object {name}"}
            self._counters["get_hits"].inc()
            self._bytes_out.inc(len(text))
            return 200, {"name": name, "text": text}
        if method == "PUT":
            if not isinstance(body, dict) or not isinstance(
                body.get("text"), str
            ):
                return 400, {"error": 'PUT body must be {"text": "..."}'}
            self.backend.put(name, body["text"])
            self._invalidate_entries()
            self._counters["puts"].inc()
            self._bytes_in.inc(len(body["text"]))
            return 200, {"stored": name, "bytes": len(body["text"])}
        if method == "DELETE":
            deleted = self.backend.delete(name)
            self._invalidate_entries()
            if not deleted:
                return 404, {"error": f"no object {name}"}
            self._counters["deletes"].inc()
            return 200, {"deleted": True, "name": name}
        return 405, {"error": f"unsupported method {method}"}

    # -- task-lease protocol ----------------------------------------------

    def _route_tasks(
        self, method: str, path: str, query: str, body: Optional[dict]
    ) -> Tuple[int, Union[dict, str]]:
        body = body if isinstance(body, dict) else {}
        if path == "/tasks":
            if method == "GET":
                return 200, {
                    "tasks": self.board.tasks(),
                    "states": self.board.stats(),
                }
            if method == "POST":
                task_id = body.get("id")
                payload = body.get("payload")
                if not isinstance(task_id, str) or not isinstance(payload, str):
                    return 400, {"error": "publish needs string id and payload"}
                task = self.board.publish(
                    task_id,
                    payload,
                    key=str(body.get("key", "") or ""),
                    lease_ttl=float(body.get("lease_ttl", 30.0)),
                    attempt=int(body.get("attempt", 1)),
                )
                self._tasks_published.inc()
                return 200, {"published": task.public()}
            return 405, {"error": f"unsupported method {method}"}
        if path == "/tasks/events":
            if method != "GET":
                return 405, {"error": "events is GET-only"}
            params = parse_qs(query)
            try:
                since = int(params.get("since", ["0"])[-1])
            except ValueError:
                return 400, {"error": "since must be an integer"}
            prefix = params.get("prefix", [""])[-1]
            cursor, events = self.board.events_since(since, prefix=prefix)
            return 200, {"cursor": cursor, "events": events}
        if path == "/tasks/claim":
            if method != "POST":
                return 405, {"error": "claim is POST-only"}
            worker = body.get("worker")
            if not isinstance(worker, str) or not worker:
                return 400, {"error": "claim needs a worker name"}
            task = self.board.claim(worker)
            if task is None:
                return 200, {"task": None}
            self._tasks_claimed.inc()
            return 200, {"task": task.public(with_payload=True)}
        # /tasks/{id}/verb
        parts = path.split("/")
        if len(parts) != 4 or not parts[2]:
            return 404, {"error": f"no route for {path}"}
        _, _, task_id, verb = parts
        if method != "POST":
            return 405, {"error": f"{verb} is POST-only"}
        worker = str(body.get("worker", ""))
        if verb == "beat":
            if self.board.beat(task_id, worker):
                return 200, {"leased": True}
            return 409, {"error": "lease lost", "leased": False}
        if verb == "done":
            result = {
                "persisted": bool(body.get("persisted", False)),
            }
            if isinstance(body.get("summary"), str):
                result["summary"] = body["summary"]
            if self.board.done(task_id, worker, result):
                self._tasks_done.inc()
                return 200, {"done": True}
            return 409, {"error": "task already settled", "done": False}
        if verb == "failed":
            error = str(body.get("error", ""))
            if self.board.failed(task_id, worker, error):
                return 200, {"failed": True}
            return 409, {"error": "task already settled", "failed": False}
        if verb == "cancel":
            return 200, {"cancelled": self.board.cancel(task_id)}
        return 404, {"error": f"unknown task verb {verb!r}"}

    # -- cross-parent cell claims ------------------------------------------

    def _route_claims(
        self, method: str, path: str, body: Optional[dict]
    ) -> Tuple[int, Union[dict, str]]:
        body = body if isinstance(body, dict) else {}
        if path == "/claims":
            if method != "GET":
                return 405, {"error": "claims listing is GET-only"}
            return 200, {"claims": self.claims.claims()}
        if method != "POST":
            return 405, {"error": "claim verbs are POST-only"}
        owner = body.get("owner")
        if not isinstance(owner, str) or not owner:
            return 400, {"error": "claims need an owner name"}
        if path == "/claims/claim":
            key = body.get("key")
            if not isinstance(key, str) or not key:
                return 400, {"error": "claim needs a key"}
            ttl = float(body.get("ttl", 30.0))
            lapsed_owner = self.claims.take_expired_owner(key)
            granted, current = self.claims.claim(key, owner, ttl)
            if granted:
                self._claims_granted.inc()
                if lapsed_owner and lapsed_owner != owner:
                    # A *different* owner's claim lapsed here (it died or
                    # hung): cancel its orphaned tasks for this cell so
                    # they cannot race the new owner's republication.
                    self.board.cancel_for_key(key)
            else:
                self._claims_denied.inc()
            return 200, {"granted": granted, "owner": current}
        if path == "/claims/renew":
            keys = body.get("keys")
            if not isinstance(keys, list):
                return 400, {"error": "renew needs a key list"}
            ttl = float(body.get("ttl", 30.0))
            renewed = self.claims.renew([str(k) for k in keys], owner, ttl)
            return 200, {"renewed": renewed}
        if path == "/claims/release":
            key = str(body.get("key", ""))
            return 200, {"released": self.claims.release(key, owner)}
        return 404, {"error": f"no route for {path}"}


async def serve_store(
    backend: StoreBackend,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    auth_token: Optional[str] = None,
):
    """Bind the object protocol on a real socket; returns the asyncio
    server (``server.sockets[0].getsockname()`` has the bound port)."""
    from ..serve.http import serve_http

    return await serve_http(
        StoreService(backend, auth_token=auth_token), host, port
    )


def run_store_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 7780,
    out=sys.stderr,
    *,
    auth_token: Optional[str] = None,
) -> int:
    """Run the daemon until interrupted (the ``avmon store serve`` body)."""
    backend = FilesystemBackend(root)

    async def serve_forever() -> None:
        server = await serve_store(
            backend, host, port, auth_token=auth_token
        )
        bound = server.sockets[0].getsockname()[1]
        guarded = " (mutations require the bearer token)" if auth_token else ""
        print(
            f"store: serving {backend.root} on http://{host}:{bound} "
            f"(point workers at it with --cache-dir http://{host}:{bound}; "
            f"Ctrl-C to stop){guarded}",
            file=out,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(serve_forever())
    return 0
