"""Figures 4 and 5: CDFs of first-monitor discovery time.

Figure 4 plots the CDF for the STAT model at the smallest and largest N
(paper: ≥ 96 % of control nodes discovered within 30 seconds); Figure 5
does the same for SYNTH-BD (paper: ≥ 93.3 % within 60 seconds).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute", "render", "run", "run_fig4", "run_fig5"]


def compute(
    model: str,
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[int, dict]:
    """Per N: CDF points plus the paper's checkpoint fractions."""
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    selected = [sweep[0], sweep[-1]]
    configs = {n: scenario(model, n, scale) for n in selected}
    cache.prime(configs.values(), jobs=jobs)
    out: Dict[int, dict] = {}
    for n in selected:
        delays = cache.get_summary(configs[n]).first_monitor_delays()
        out[n] = {
            "cdf": stats.cdf_points(delays),
            "within_30s": stats.fraction_below(delays, 30.0),
            "within_60s": stats.fraction_below(delays, 60.0),
            "count": len(delays),
        }
    return out


def render(model: str, data: Dict[int, dict], checkpoint: str) -> str:
    lines = [
        f"CDF of first-monitor discovery time, {model} model",
        f"paper: {checkpoint}",
        "",
        format_table(
            ("N", "nodes", "frac <= 30 s", "frac <= 60 s"),
            [
                (n, info["count"], info["within_30s"], info["within_60s"])
                for n, info in sorted(data.items())
            ],
        ),
    ]
    for n, info in sorted(data.items()):
        lines.append("")
        lines.append(f"CDF, N = {n}:")
        lines.append(format_cdf(info["cdf"], value_label="discovery time (s)"))
    return "\n".join(lines)


def run_fig4(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    data = compute("STAT", scale, cache, jobs)
    return "Figure 4 - " + render(
        "STAT", data, "at least 96% of nodes discovered in under 30 seconds"
    )


def run_fig5(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    data = compute("SYNTH-BD", scale, cache, jobs)
    return "Figure 5 - " + render(
        "SYNTH-BD", data, "at least 93.3% of nodes discovered within 60 seconds"
    )


def run(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    return run_fig4(scale, cache, jobs) + "\n\n" + run_fig5(scale, cache, jobs)
