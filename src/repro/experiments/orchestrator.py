"""Parallel sweep orchestrator: fan simulation cells out over processes.

One *cell* is a fully-resolved :class:`~repro.experiments.runner.
SimulationConfig` (picklable: plain dataclasses, traces and latency models
are inert data).  Each worker runs the simulation and returns only the
flat :class:`~repro.experiments.summary.SimulationSummary` — the full
result object, which owns the live cluster/network graph, never crosses
the process boundary.

Guarantees:

* **Determinism** — every cell carries its own seed and the simulator's
  randomness derives exclusively from it (BLAKE2b substreams, no global
  state), so results are identical whatever the process count or
  completion order; outputs are re-ordered to match the input sequence.
* **Graceful interruption** — workers ignore SIGINT; a Ctrl-C in the
  parent terminates the pool and re-raises ``KeyboardInterrupt``.
* **Failure isolation** — a crashing cell does not take the sweep down;
  failures are collected and reported together in a :class:`SweepError`
  after the surviving cells finish.

The fan-out pattern follows Icarus' experiment orchestration (Saino et
al.): a settings-driven queue of experiments dispatched to a
``multiprocessing.Pool`` with periodic progress summaries.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .runner import SimulationConfig, run_simulation
from .store import SummaryStore, config_key
from .summary import SimulationSummary, summarize

__all__ = [
    "CellFailure",
    "SweepError",
    "cell_label",
    "default_jobs",
    "run_configs",
]

#: Progress callback signature: (done, total, label, wall_seconds).
ProgressFn = Callable[[int, int, str, float], None]


@dataclass(frozen=True)
class CellFailure:
    """One cell that raised instead of producing a summary."""

    index: int
    label: str
    error: str


class SweepError(RuntimeError):
    """Raised after a sweep completes with one or more failed cells."""

    def __init__(self, failures: Sequence[CellFailure], total: int) -> None:
        self.failures = tuple(failures)
        self.total = total
        first = self.failures[0]
        super().__init__(
            f"{len(self.failures)}/{total} sweep cells failed; "
            f"first failure ({first.label}):\n{first.error}"
        )


def cell_label(config: SimulationConfig) -> str:
    """Human-readable cell identity for progress lines and errors."""
    return f"{config.label} n={config.n} seed={config.seed}"


def default_jobs() -> int:
    """Conservative default worker count: all cores, capped at 8."""
    return max(1, min(8, multiprocessing.cpu_count()))


def _init_worker() -> None:
    """Leave interrupt handling to the parent so Ctrl-C terminates cleanly."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _execute_cell(
    payload: Tuple[int, SimulationConfig]
) -> Tuple[int, Optional[SimulationSummary], Optional[str]]:
    """Run one cell; never raises (errors travel back as text)."""
    index, config = payload
    try:
        return index, summarize(run_simulation(config)), None
    except Exception:
        return index, None, traceback.format_exc()


def run_configs(
    configs: Sequence[SimulationConfig],
    *,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    store: Optional[SummaryStore] = None,
) -> List[SimulationSummary]:
    """Run every config and return summaries in input order.

    ``jobs <= 1`` executes serially in-process through the *same* cell
    function the pool uses, so serial and parallel runs produce identical
    summaries (the parallel/serial equivalence the test suite asserts).

    With *store*, cells whose summary is already on disk are loaded instead
    of simulated (their progress label carries a ``(cached)`` marker), and
    each freshly computed summary is written back as soon as it arrives —
    so a sweep killed mid-run resumes from its last completed cell, paying
    zero recomputation for work already persisted.
    """
    payloads = list(enumerate(configs))
    total = len(payloads)
    summaries: List[Optional[SimulationSummary]] = [None] * total
    failures: List[CellFailure] = []
    started = time.perf_counter()

    def record(
        index: int,
        summary: Optional[SimulationSummary],
        error: Optional[str],
        cached: bool = False,
    ) -> int:
        if summary is not None:
            summaries[index] = summary
            if store is not None and not cached:
                store.save(config_key(configs[index]), summary)
        else:
            failures.append(
                CellFailure(index, cell_label(configs[index]), error or "unknown error")
            )
        done = sum(1 for s in summaries if s is not None) + len(failures)
        if progress is not None:
            label = cell_label(configs[index])
            progress(
                done,
                total,
                f"{label} (cached)" if cached else label,
                time.perf_counter() - started,
            )
        return done

    if store is not None:
        pending = []
        for payload in payloads:
            index, config = payload
            summary = store.load(config_key(config))
            if summary is not None:
                record(index, summary, None, cached=True)
            else:
                pending.append(payload)
        payloads = pending

    if jobs <= 1 or len(payloads) <= 1:
        for payload in payloads:
            record(*_execute_cell(payload))
    else:
        workers = min(jobs, len(payloads))
        pool = multiprocessing.Pool(workers, initializer=_init_worker)
        try:
            for outcome in pool.imap_unordered(_execute_cell, payloads):
                record(*outcome)
            pool.close()
        except BaseException:
            # Any escape (Ctrl-C, a raising progress callback, unpicklable
            # result) must terminate the workers before join(), or join()
            # itself raises and masks the original error.
            pool.terminate()
            raise
        finally:
            pool.join()

    if failures:
        failures.sort(key=lambda f: f.index)
        raise SweepError(failures, total)
    return [s for s in summaries if s is not None]
