"""Sweep orchestrator: resolve cells against the store, fan out, collect.

One *cell* is a fully-resolved :class:`~repro.experiments.runner.
SimulationConfig` (picklable: plain dataclasses, traces and latency models
are inert data).  Execution is delegated to an
:class:`~repro.experiments.backends.ExecutionBackend` — in this process
(``SERIAL``), over a local ``multiprocessing.Pool`` (``POOL``), or across
a killable worker fleet (``FLEET``).  Workers return only the flat
:class:`~repro.experiments.summary.SimulationSummary` — the full result
object, which owns the live cluster/network graph, never crosses the
process boundary.

Guarantees:

* **Determinism** — every cell carries its own seed and the simulator's
  randomness derives exclusively from it (BLAKE2b substreams, no global
  state), so results are identical whatever the backend, process count or
  completion order; outputs are re-ordered to match the input sequence.
* **Graceful interruption** — pool/fleet workers ignore SIGINT; a Ctrl-C
  in the parent terminates them and re-raises ``KeyboardInterrupt``.
* **Failure isolation** — a crashing cell does not take the sweep down;
  failures are collected and reported together in a :class:`SweepError`
  after the surviving cells finish, each carrying the worker traceback
  and the cell's content address in the summary store.
* **At-most-once recording** — backends may deliver a cell more than
  once (the fleet re-queues cells whose worker died); the orchestrator
  keeps the first result per index and ignores the rest, which together
  with idempotent content-addressed store writes makes at-least-once
  execution safe.

The fan-out pattern follows Icarus' experiment orchestration (Saino et
al.): a settings-driven queue of experiments dispatched to workers with
periodic progress summaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Union

from .backends import (
    ExecutionBackend,
    LocalPoolBackend,
    SerialBackend,
    default_jobs,
    resolve_backend,
    split_error,
)
from .runner import SimulationConfig
from .store import SummaryStore, config_key, stable_key_hash
from .summary import SimulationSummary

__all__ = [
    "CellFailure",
    "SweepError",
    "cell_label",
    "default_jobs",
    "run_configs",
]

#: Progress callback signature: (done, total, label, wall_seconds).
ProgressFn = Callable[[int, int, str, float], None]


@dataclass(frozen=True)
class CellFailure:
    """One cell that raised (or whose workers died) instead of summarising.

    ``error`` stays the concise one-liner older callers matched on;
    ``traceback`` carries the worker's full stack when one exists, and
    ``store_key`` is the cell's content address — the name its summary
    would have in the store, so a failed cell can be hunted down in a
    shared cache.  ``attempts`` counts executions (>1 only for backends
    that retry, i.e. the fleet after worker deaths).
    """

    index: int
    label: str
    error: str
    traceback: str = ""
    store_key: str = ""
    attempts: int = 1

    def detail(self) -> str:
        """The longest failure text available (traceback, else error)."""
        return self.traceback or self.error


class SweepError(RuntimeError):
    """Raised after a sweep completes with one or more failed cells."""

    def __init__(self, failures: Sequence[CellFailure], total: int) -> None:
        self.failures = tuple(failures)
        self.total = total
        first = self.failures[0]
        where = f" [store key {first.store_key}]" if first.store_key else ""
        super().__init__(
            f"{len(self.failures)}/{total} sweep cells failed; "
            f"first failure ({first.label}){where}:\n{first.detail()}"
        )


def cell_label(config: SimulationConfig) -> str:
    """Human-readable cell identity for progress lines and errors."""
    return f"{config.label} n={config.n} seed={config.seed}"


def run_configs(
    configs: Sequence[SimulationConfig],
    *,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    store: Optional[SummaryStore] = None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> List[SimulationSummary]:
    """Run every config and return summaries in input order.

    *backend* selects the execution strategy — an
    :class:`ExecutionBackend` instance or a registered name (``"serial"``,
    ``"pool"``, ``"fleet"``).  The default (``None``) preserves the
    original behaviour bit-for-bit: serial in-process when ``jobs <= 1``
    or at most one cell remains, else a local pool of ``jobs`` workers.
    All strategies funnel through the same cell function, so they produce
    identical summaries (the equivalence the test suite asserts).

    With *store*, cells whose summary is already persisted are loaded
    instead of simulated (their progress label carries a ``(cached)``
    marker), and each freshly computed summary is written back as soon as
    it arrives — so a sweep killed mid-run resumes from its last
    completed cell, paying zero recomputation for work already persisted.
    Backends that write through from their workers (the fleet) mark
    results ``persisted`` so nothing is double-written.
    """
    payloads = list(enumerate(configs))
    total = len(payloads)
    summaries: List[Optional[SimulationSummary]] = [None] * total
    failures: List[CellFailure] = []
    recorded: Set[int] = set()
    started = time.perf_counter()

    def record(
        index: int,
        summary: Optional[SimulationSummary],
        error: Optional[str],
        cached: bool = False,
        persisted: bool = False,
        attempts: int = 1,
    ) -> int:
        if index in recorded:  # duplicate delivery from a retrying backend
            return len(recorded)
        recorded.add(index)
        if summary is not None:
            summaries[index] = summary
            if store is not None and not cached and not persisted:
                store.save(config_key(configs[index]), summary)
        else:
            text = error or "unknown error"
            failures.append(
                CellFailure(
                    index,
                    cell_label(configs[index]),
                    split_error(text),
                    traceback=text,
                    store_key=stable_key_hash(config_key(configs[index])),
                    attempts=attempts,
                )
            )
        done = len(recorded)
        if progress is not None:
            label = cell_label(configs[index])
            progress(
                done,
                total,
                f"{label} (cached)" if cached else label,
                time.perf_counter() - started,
            )
        return done

    if store is not None:
        pending = []
        for payload in payloads:
            index, config = payload
            summary = store.load(config_key(config))
            if summary is not None:
                record(index, summary, None, cached=True)
            else:
                pending.append(payload)
        payloads = pending

    executor = resolve_backend(backend, jobs=jobs)
    if executor is None:
        if jobs <= 1 or len(payloads) <= 1:
            executor = SerialBackend()
        else:
            executor = LocalPoolBackend(jobs)
    executor.execute(payloads, record, store=store)

    missing = [
        index for index, _ in payloads
        if index not in recorded
    ]
    for index in missing:  # a backend bug, not a cell failure — be loud
        record(
            index,
            None,
            f"backend {executor.name} returned without executing this cell",
        )

    if failures:
        failures.sort(key=lambda f: f.index)
        raise SweepError(failures, total)
    return [s for s in summaries if s is not None]
