"""Plain-text rendering of experiment outputs.

Every experiment module renders its result as an aligned text table (the
"same rows/series the paper reports"), so benchmark logs and the CLI give a
direct paper-vs-measured comparison without plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_cdf", "format_kv", "indent"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Aligned monospace table with a header rule."""
    string_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in string_rows:
        lines.append("  ".join(text.ljust(widths[i]) for i, text in enumerate(row)))
    return "\n".join(lines)


def format_cdf(
    points: Sequence[Tuple[float, float]],
    *,
    value_label: str = "value",
    max_rows: int = 12,
) -> str:
    """Down-sampled CDF rendering: at most *max_rows* evenly spaced points."""
    if not points:
        return "(empty CDF)"
    if len(points) <= max_rows:
        chosen = list(points)
    else:
        step = (len(points) - 1) / (max_rows - 1)
        chosen = [points[round(i * step)] for i in range(max_rows)]
        chosen[-1] = points[-1]
    return format_table(
        (value_label, "fraction <= value"),
        [(value, fraction) for value, fraction in chosen],
    )


def format_kv(pairs: Sequence[Tuple[str, object]]) -> str:
    """Aligned ``key: value`` block for scalar findings."""
    width = max((len(key) for key, _ in pairs), default=0)
    return "\n".join(f"{key.ljust(width)} : {_cell(value)}" for key, value in pairs)


def indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
