"""Network-attached worker fleet: lease cells from the store daemon.

The local fleet (:mod:`.fleet`) and this backend are the same
orchestration semantics — lease, heartbeat, expire, retry with the one
:class:`~.leases.RetryPolicy` schedule, at-least-once delivery deduped
by the orchestrator — over different transports.  Here the transport is
the store daemon itself (``avmon store serve``): its task board replaces
the multiprocessing result queue, its HTTP surface replaces pipes, and
workers can therefore live on *any host* that can reach the daemon:

    host A   avmon store serve --dir /data/cache --port 7780
    host B   avmon fleet worker --attach http://hostA:7780
    host C   avmon fleet worker --attach http://hostA:7780
    host D   avmon sweep ... --backend remote --cache-dir http://hostA:7780

The parent never talks to workers directly.  It publishes one task per
cell (the config pickled into the payload), drains the board's event log
by cursor, and applies exactly the local fleet's decisions to what it
sees: ``expired`` is a worker death (retry with backoff until the policy
is exhausted), ``failed`` is a deterministic bug (fail fast, no retry),
``done`` is recorded once per cell no matter how many stragglers report.

Cross-parent coordination rides the same daemon.  Before publishing, the
parent claims each cell's *store address* (its object name) with a TTL.
A granted claim means "I publish this cell"; a denied claim means some
other parent sweeping an overlapping grid already owns it, so this
parent just watches the store and adopts the summary when it appears.
A parent that dies stops renewing; its claims lapse, the survivor's next
claim attempt is granted (the daemon cancels the dead parent's orphaned
tasks), and the sweep completes anyway.  ``fleet.cell_done`` is emitted
only for cells this parent's own tasks computed and always carries the
store key, so concatenating every parent's journal and counting
duplicate keys verifies that no cell was computed twice.

The payloads travel as pickles, so a worker must trust its daemon; the
daemon's ``--auth-token`` gates who can publish (all mutating verbs
require the bearer token), which is the trust boundary.
"""

from __future__ import annotations

import base64
import heapq
import os
import pickle
import socket
import time
import traceback
from typing import Dict, List, Optional, Sequence, Set, Tuple
from urllib.parse import quote

from .base import ExecutionBackend, Payload, RecordFn, sorted_payloads
from .leases import FleetEventMixin, FleetStats, RetryPolicy

__all__ = ["RemoteWorkerBackend", "run_fleet_worker"]


def _default_identity(role: str) -> str:
    """A name unique enough across hosts, safe in URL paths unquoted."""
    host = socket.gethostname() or "host"
    safe = "".join(c if c.isalnum() or c in "._-" else "-" for c in host)
    return f"{role}-{safe}-{os.getpid()}"


def _encode_config(config) -> str:
    return base64.b64encode(
        pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_config(payload: str):
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class RemoteWorkerBackend(FleetEventMixin, ExecutionBackend):
    """Sweep through network-attached workers leasing cells from the daemon.

    Requires a shared store (``--cache-dir http://host:port``): the same
    daemon that holds the summaries is the coordinator, so there is no
    second service to deploy and the durable truth (the store) and the
    soft state (leases, claims) cannot point at different places.
    """

    name = "REMOTE"

    #: Every remote lifecycle count depends on wall-clock races — which
    #: worker polls first, whether a sibling parent wins a claim — so all
    #: of them are wall-kind: journals carry them, deterministic
    #: snapshots never do.
    WALL_EVENTS = frozenset(
        {
            "fleet.remote_attach",
            "fleet.lease_granted",
            "fleet.lease_expired",
            "fleet.retry",
            "fleet.cell_done",
            "fleet.cell_failed",
            "fleet.cell_adopted",
            "fleet.claim_granted",
            "fleet.claim_denied",
            "fleet.claim_expired",
            "fleet.claim_lost",
        }
    )

    def __init__(
        self,
        owner: Optional[str] = None,
        *,
        max_attempts: int = 3,
        retry_backoff: float = 0.25,
        lease_ttl: float = 30.0,
        claim_ttl: Optional[float] = None,
        poll_interval: float = 0.2,
        adopt_interval: Optional[float] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.owner = owner if owner else _default_identity("parent")
        self.policy = RetryPolicy(max_attempts, retry_backoff)
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.lease_ttl = lease_ttl
        #: Claims must outlive the renewal cadence comfortably; twice the
        #: task lease is a sane default for both knobs to scale together.
        self.claim_ttl = claim_ttl if claim_ttl is not None else 2.0 * lease_ttl
        self.poll_interval = poll_interval
        #: How often watched (other-parent-owned) cells are checked for
        #: adoption or claim takeover.
        self.adopt_interval = (
            adopt_interval
            if adopt_interval is not None
            else max(1.0, 5.0 * poll_interval)
        )
        self.stats = FleetStats()
        self._event_counts: Dict[str, int] = {}

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _coordinator(store):
        """The store's shared backend, which doubles as the coordinator."""
        backend = getattr(store, "backend", None)
        call = getattr(backend, "call", None)
        if store is None or call is None:
            raise ValueError(
                "the REMOTE backend coordinates through the store daemon; "
                "run the sweep with --cache-dir http://host:port "
                "(an `avmon store serve` URL), not a local directory"
            )
        return backend

    # -- orchestration -----------------------------------------------------

    def execute(
        self, payloads: Sequence[Payload], record: RecordFn, *, store=None
    ) -> None:
        from ..store import SummaryStore, config_key
        from ..summary import SimulationSummary

        payloads = sorted_payloads(payloads)
        if not payloads:
            return
        coordinator = self._coordinator(store)
        self.stats = FleetStats()
        self._event_counts = {}
        owner = self.owner
        configs = {index: config for index, config in payloads}
        keys = {
            index: SummaryStore.name_for(config_key(config))
            for index, config in payloads
        }
        outstanding: Set[int] = set(configs)
        mine: Set[int] = set()
        watched: Set[int] = set()
        attempts: Dict[int, int] = {}
        retry_heap: List[Tuple[float, int, int]] = []  # (ready, index, attempt)
        workers_seen: Set[str] = set()
        cursor = 0
        events_path = (
            f"/tasks/events?prefix={quote(owner + ':', safe='')}&since="
        )

        def publish(index: int, attempt: int) -> None:
            attempts[index] = attempt
            coordinator.call(
                "POST",
                "/tasks",
                {
                    "id": f"{owner}:{index}",
                    "payload": _encode_config(configs[index]),
                    "key": keys[index],
                    "lease_ttl": self.lease_ttl,
                    "attempt": attempt,
                },
            )

        def try_claim(index: int) -> Tuple[bool, str]:
            _, response = coordinator.call(
                "POST",
                "/claims/claim",
                {"key": keys[index], "owner": owner, "ttl": self.claim_ttl},
            )
            return bool(response.get("granted")), str(response.get("owner", ""))

        def fetch_summary(index: int):
            """Read the cell's summary straight off the store (no counters)."""
            text = coordinator.get(keys[index])
            if text is None:
                return None
            try:
                return SimulationSummary.from_json(text)
            except Exception:  # noqa: BLE001 — corrupt entry = miss
                return None

        def finish(index: int) -> None:
            outstanding.discard(index)
            mine.discard(index)
            watched.discard(index)

        def give_up(index: int, attempt: int, reason: str) -> None:
            record(
                index,
                None,
                f"remote fleet {reason}; gave up after {attempt} attempts",
                attempts=attempt,
            )
            self._emit("fleet.cell_failed", cell=index, attempts=attempt)
            finish(index)

        def retry_or_fail(index: int, attempt: int, reason: str) -> None:
            if self.policy.exhausted(attempt):
                give_up(index, attempt, reason)
                return
            delay = self.policy.delay(attempt)
            heapq.heappush(
                retry_heap, (time.monotonic() + delay, index, attempt + 1)
            )
            self.stats.retries += 1
            self._emit(
                "fleet.retry",
                cell=index,
                attempt=attempt + 1,
                delay_s=round(delay, 6),
            )

        def handle_event(event: dict) -> None:
            task_id = str(event.get("task", ""))
            try:
                index = int(task_id.rsplit(":", 1)[1])
            except (IndexError, ValueError):
                return
            if index not in outstanding:
                return  # straggler for a settled cell: at-least-once dedup
            kind = event.get("kind")
            attempt = int(event.get("attempt", attempts.get(index, 1)))
            worker = str(event.get("worker", ""))
            if kind == "claimed":
                if worker and worker not in workers_seen:
                    workers_seen.add(worker)
                    self.stats.workers_spawned += 1
                    self._emit("fleet.remote_attach", worker=worker)
                self._emit(
                    "fleet.lease_granted",
                    worker=worker,
                    cell=index,
                    attempt=attempt,
                )
                return
            if index not in mine:
                return  # we lost this cell's claim; the watcher owns it now
            if attempt < attempts.get(index, 1):
                return  # stale event from a superseded attempt
            if kind == "done":
                persisted = bool(event.get("persisted"))
                summary = None
                inline = event.get("summary")
                if isinstance(inline, str):
                    try:
                        summary = SimulationSummary.from_json(inline)
                    except Exception:  # noqa: BLE001 — fall through to store
                        summary = None
                if summary is None:
                    summary = fetch_summary(index)
                    # Whatever the event said, a summary served straight
                    # off the store is by definition persisted.
                    persisted = summary is not None
                if summary is None:
                    # The worker said done but neither the event nor the
                    # store has the summary (e.g. its write-through failed
                    # and the inline copy was mangled): treat like a death.
                    retry_or_fail(
                        index, attempt, f"worker {worker} reported an "
                        f"unfetchable result for cell {index}"
                    )
                    return
                self._emit(
                    "fleet.cell_done",
                    worker=worker,
                    cell=index,
                    attempt=attempt,
                    persisted=persisted,
                    key=keys[index],
                )
                record(
                    index, summary, None, persisted=persisted, attempts=attempt
                )
                finish(index)
                return
            if kind == "failed":
                # Deterministic failure: identical code on identical input
                # raises identically — no retry, keep the traceback.
                error = str(event.get("error", "")) or "remote worker failure"
                record(index, None, error, attempts=attempt)
                self._emit("fleet.cell_failed", cell=index, attempts=attempt)
                finish(index)
                return
            if kind == "expired":
                self.stats.leases_expired += 1
                self._emit(
                    "fleet.lease_expired",
                    worker=worker,
                    cell=index,
                    attempt=attempt,
                )
                retry_or_fail(
                    index,
                    attempt,
                    f"worker {worker} lost its lease on cell {index} "
                    f"(no heartbeat)",
                )
                return
            if kind == "cancelled":
                # Another parent took the claim over (it judged us dead —
                # e.g. we stalled past the claim TTL).  It owns the cell
                # now; demote ourselves to watching its result.
                mine.discard(index)
                watched.add(index)
                self._emit("fleet.claim_lost", cell=index, key=keys[index])

        def drain_events() -> None:
            nonlocal cursor
            _, response = coordinator.call("GET", events_path + str(cursor))
            cursor = int(response.get("cursor", cursor))
            for event in response.get("events", ()):
                handle_event(event)

        def renew_claims() -> None:
            held = sorted(keys[index] for index in mine)
            if not held:
                return
            _, response = coordinator.call(
                "POST",
                "/claims/renew",
                {"keys": held, "owner": owner, "ttl": self.claim_ttl},
            )
            renewed = set(response.get("renewed", ()))
            for index in sorted(mine):
                if keys[index] not in renewed:
                    mine.discard(index)
                    watched.add(index)
                    self._emit(
                        "fleet.claim_lost", cell=index, key=keys[index]
                    )

        def poll_watched() -> None:
            for index in sorted(watched & outstanding):
                summary = fetch_summary(index)
                if summary is not None:
                    # The owning parent's worker computed it; adopt the
                    # stored bytes.  Deliberately NOT a ``cell_done``:
                    # only the computing parent emits that, so duplicate
                    # keys across journals mean duplicate computation.
                    self._emit(
                        "fleet.cell_adopted", cell=index, key=keys[index]
                    )
                    record(index, summary, None, persisted=True)
                    finish(index)
                    continue
                granted, holder = try_claim(index)
                if granted:
                    # The owner's claim lapsed (it died or hung): the
                    # daemon granted us the takeover and cancelled its
                    # orphaned tasks; republish as our own fresh attempt.
                    self._emit(
                        "fleet.claim_expired", cell=index, key=keys[index]
                    )
                    self._emit(
                        "fleet.claim_granted",
                        cell=index,
                        key=keys[index],
                        takeover=True,
                    )
                    watched.discard(index)
                    mine.add(index)
                    publish(index, 1)

        # Claim every cell up front: winners publish, losers watch.
        for index, _ in payloads:
            granted, holder = try_claim(index)
            if granted:
                self._emit(
                    "fleet.claim_granted",
                    cell=index,
                    key=keys[index],
                    takeover=False,
                )
                mine.add(index)
                publish(index, 1)
            else:
                self._emit(
                    "fleet.claim_denied",
                    cell=index,
                    key=keys[index],
                    owner=holder,
                )
                watched.add(index)

        last_renew = time.monotonic()
        last_adopt = 0.0
        renew_every = max(self.claim_ttl / 3.0, 0.05)
        try:
            while outstanding:
                drain_events()
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, index, attempt = heapq.heappop(retry_heap)
                    if index in mine and index in outstanding:
                        publish(index, attempt)
                if now - last_renew >= renew_every:
                    renew_claims()
                    last_renew = now
                if (watched & outstanding) and now - last_adopt >= self.adopt_interval:
                    poll_watched()
                    last_adopt = now
                if outstanding:
                    time.sleep(self.poll_interval)
        finally:
            held = sorted(keys[index] for index in mine)
            # Best-effort claim release so a sibling parent can finish
            # cells we abandoned (e.g. the sweep was interrupted).
            for key in held:
                try:
                    coordinator.call(
                        "POST", "/claims/release", {"key": key, "owner": owner}
                    )
                except OSError:
                    break

    # -- reporting ---------------------------------------------------------

    def stats_line(self) -> str:
        counts = self._event_counts
        return (
            f"remote: workers={counts.get('fleet.remote_attach', 0)} "
            f"done={counts.get('fleet.cell_done', 0)} "
            f"adopted={counts.get('fleet.cell_adopted', 0)} "
            f"retries={counts.get('fleet.retry', 0)} "
            f"leases_expired={counts.get('fleet.lease_expired', 0)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteWorkerBackend(owner={self.owner!r}, "
            f"max_attempts={self.max_attempts})"
        )


# -- the worker side -------------------------------------------------------


def _run_task(backend, task: dict, name: str, out) -> None:
    """Lease held: heartbeat while computing, write through, report."""
    import threading

    from ..runner import run_simulation
    from ..summary import SimulationSummary, summarize

    task_id = str(task["id"])
    key = str(task.get("key", "") or "")
    lease_ttl = float(task.get("lease_ttl", 30.0))
    beat_every = max(lease_ttl / 3.0, 0.05)
    stop_beats = threading.Event()

    def pump() -> None:
        while not stop_beats.wait(beat_every):
            try:
                status, _ = backend.call(
                    "POST", f"/tasks/{task_id}/beat", {"worker": name}
                )
            except OSError:
                continue  # daemon briefly unreachable; keep computing
            if status != 200:
                # Lease lost.  Keep computing anyway: the board accepts a
                # straggler's ``done`` (at-least-once) and the store write
                # is idempotent, so finished work is never thrown away.
                return

    beats = threading.Thread(target=pump, daemon=True)
    beats.start()
    try:
        config = _decode_config(str(task["payload"]))
        summary, persisted = None, False
        if key:
            text = backend.get(key)
            if text is not None:
                try:
                    summary = SimulationSummary.from_json(text)
                    persisted = True
                except Exception:  # noqa: BLE001 — corrupt entry = recompute
                    summary = None
        if summary is None:
            summary = summarize(run_simulation(config))
            if key:
                try:
                    backend.put(key, summary.to_json())
                    persisted = True
                except OSError:
                    persisted = False
        body = {"worker": name, "persisted": persisted}
        if not persisted:
            body["summary"] = summary.to_json()
        backend.call("POST", f"/tasks/{task_id}/done", body)
    except Exception:  # noqa: BLE001 — deterministic failure: report it
        try:
            backend.call(
                "POST",
                f"/tasks/{task_id}/failed",
                {"worker": name, "error": traceback.format_exc()},
            )
        except OSError:
            pass
    finally:
        stop_beats.set()


def _worker_loop(
    url: str,
    name: str,
    poll_interval: float,
    max_idle: Optional[float],
    auth_token: Optional[str],
    out,
) -> int:
    """One attached worker: claim, compute, report, repeat."""
    from ..store_backends import SharedStoreBackend

    backend = SharedStoreBackend(url, auth_token=auth_token)
    print(f"fleet worker {name}: attached to {url}", file=out, flush=True)
    completed = 0
    idle_since = time.monotonic()
    while True:
        try:
            status, response = backend.call(
                "POST", "/tasks/claim", {"worker": name}
            )
        except OSError:
            # Daemon down or restarting: back off and retry attachment —
            # a worker outliving its daemon is the normal deploy order.
            time.sleep(max(poll_interval, 0.5))
            continue
        task = response.get("task") if status == 200 else None
        if not task:
            if (
                max_idle is not None
                and time.monotonic() - idle_since >= max_idle
            ):
                print(
                    f"fleet worker {name}: idle for {max_idle:g}s; exiting "
                    f"({completed} cells computed)",
                    file=out,
                    flush=True,
                )
                return completed
            time.sleep(poll_interval)
            continue
        _run_task(backend, task, name, out)
        completed += 1
        idle_since = time.monotonic()


def _worker_process_entry(
    url: str,
    name: str,
    poll_interval: float,
    max_idle: Optional[float],
    auth_token: Optional[str],
) -> None:
    import signal
    import sys

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _worker_loop(url, name, poll_interval, max_idle, auth_token, sys.stderr)


def run_fleet_worker(
    url: str,
    *,
    workers: int = 1,
    poll_interval: float = 0.5,
    max_idle: Optional[float] = None,
    auth_token: Optional[str] = None,
    name: Optional[str] = None,
    out=None,
) -> int:
    """The ``avmon fleet worker --attach URL`` body.

    With ``workers == 1`` the claim loop runs in this process (Ctrl-C
    stops it); with more, that many child processes each run their own
    loop and the parent waits for all of them (they only exit on their
    own when ``max_idle`` is set).
    """
    import sys

    out = out if out is not None else sys.stderr
    token = (
        auth_token
        if auth_token is not None
        else os.environ.get("AVMON_STORE_TOKEN") or None
    )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base = name if name else _default_identity("worker")
    if workers == 1:
        try:
            _worker_loop(url, base, poll_interval, max_idle, token, out)
        except KeyboardInterrupt:
            print(f"fleet worker {base}: interrupted", file=out, flush=True)
        return 0
    import multiprocessing

    ctx = multiprocessing.get_context()
    processes = []
    for i in range(workers):
        process = ctx.Process(
            target=_worker_process_entry,
            args=(url, f"{base}-{i}", poll_interval, max_idle, token),
            daemon=False,
        )
        process.start()
        processes.append(process)
    try:
        for process in processes:
            process.join()
    except KeyboardInterrupt:
        print(f"fleet worker {base}: interrupted", file=out, flush=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=2.0)
    return 0
