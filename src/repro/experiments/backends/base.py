"""The execution seam: how a batch of sweep cells turns into summaries.

:func:`~repro.experiments.orchestrator.run_configs` owns *what* runs
(the cell list, the store read-through, result ordering, failure
collection); an :class:`ExecutionBackend` owns *how* — in-process, over
a local process pool, or across a killable worker fleet.  The contract
is a single method::

    backend.execute(payloads, record, store=store)

where ``payloads`` is ``[(index, SimulationConfig), ...]`` and
``record(index, summary, error, ...)`` is called exactly once per index
(the orchestrator ignores duplicates, so an at-least-once backend — the
fleet re-queues cells whose worker died — composes safely with the
content-addressed store's idempotent cells).

Backends are registered under the ``"backend"`` component kind, so
``Scenario`` sweeps, ``run_configs`` and the CLI all accept a backend by
name (``avmon sweep --backend FLEET``) exactly like churn or fault
components.
"""

from __future__ import annotations

import abc
import multiprocessing
import traceback
from typing import Callable, List, Optional, Sequence, Tuple

from ..runner import SimulationConfig, run_simulation
from ..summary import SimulationSummary, summarize

__all__ = ["ExecutionBackend", "RecordFn", "Payload", "execute_cell", "default_jobs"]

#: One dispatchable unit of work: the cell's index in the sweep grid and
#: its fully-resolved, picklable configuration.
Payload = Tuple[int, SimulationConfig]

#: The orchestrator's sink.  ``record(index, summary, error, cached=...,
#: persisted=...)`` — ``cached`` marks a store hit (progress labelling),
#: ``persisted`` means the backend already wrote the summary to the
#: store, so the orchestrator must not write it again.
RecordFn = Callable[..., int]


def default_jobs() -> int:
    """Conservative default worker count: all cores, capped at 8."""
    return max(1, min(8, multiprocessing.cpu_count()))


def execute_cell(
    payload: Payload,
) -> Tuple[int, Optional[SimulationSummary], Optional[str]]:
    """Run one cell; never raises (errors travel back as traceback text).

    The single cell function every backend funnels through — serial,
    pooled and fleet runs execute byte-identical work.
    """
    index, config = payload
    try:
        return index, summarize(run_simulation(config)), None
    except Exception:
        return index, None, traceback.format_exc()


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of sweep cells."""

    #: Registry display name (``avmon list --json`` shows the catalogue).
    name: str = "?"

    #: Observability wiring (see :meth:`attach_obs`); None = disabled.
    obs_registry = None
    obs_journal = None

    def attach_obs(self, registry=None, journal=None) -> None:
        """Point this backend at an obs registry and/or event journal.

        Optional by contract: backends that report nothing simply never
        read the attributes.  The fleet emits its lifecycle events
        (lease granted/expired, worker death, retry, chaos kill) through
        whatever is attached here.
        """
        self.obs_registry = registry
        self.obs_journal = journal

    @abc.abstractmethod
    def execute(
        self,
        payloads: Sequence[Payload],
        record: RecordFn,
        *,
        store=None,
    ) -> None:
        """Run every payload, reporting each through *record*.

        *store* is the sweep's :class:`~repro.experiments.store.
        SummaryStore` (or None).  The orchestrator has already resolved
        store hits before calling; backends that persist results
        themselves (the fleet's write-through workers) signal it via
        ``record(..., persisted=True)``.
        """

    def stats_line(self) -> str:
        """One optional human line for the CLI's stderr tally ("" = none)."""
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def split_error(text: str) -> str:
    """The concise last line of a traceback (``RuntimeError: boom``)."""
    lines = [line for line in text.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


def sorted_payloads(payloads: Sequence[Payload]) -> List[Payload]:
    """Payloads in deterministic dispatch order (by cell index)."""
    return sorted(payloads, key=lambda payload: payload[0])
