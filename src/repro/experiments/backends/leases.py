"""The transport seam shared by the fleet orchestrators.

The local worker fleet (:mod:`.fleet`, multiprocessing children) and the
remote fleet (:mod:`.remote`, network-attached workers leasing cells
from the store daemon) are the *same* orchestration semantics over
different transports: leases with heartbeats, death detected by missed
deadlines, retry with exponential backoff, deterministic failures failed
fast, at-least-once delivery deduped by the orchestrator.  This module
holds the semantics so the transports cannot drift:

* :class:`RetryPolicy` — the one backoff schedule.  ``delay(attempt)``
  for the attempt that just failed is ``backoff * 2**(attempt - 1)``,
  i.e. the exponent starts at 0 for the first retry.
* :class:`FleetStats` — the operational tallies both backends expose.
* :class:`FleetEventMixin` — the ``_emit`` pattern: every lifecycle
  event is counted locally (the source of truth for ``stats_line``),
  mirrored into the obs registry (wall-kind for timing-dependent
  events), and appended to the journal when one is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

__all__ = ["RetryPolicy", "FleetStats", "FleetEventMixin"]


@dataclass(frozen=True)
class RetryPolicy:
    """Shared retry semantics: how many attempts, how long between them."""

    max_attempts: int = 3
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def exhausted(self, attempt: int) -> bool:
        """Whether a failure on *attempt* ends the cell (no retry left)."""
        return attempt >= self.max_attempts

    def delay(self, attempt: int) -> float:
        """Backoff before re-dispatching after a failure on *attempt*.

        The first retry (after attempt 1) waits exactly ``backoff``;
        each further retry doubles it: ``backoff * 2**(attempt - 1)``.
        """
        return self.backoff * (2 ** (attempt - 1))


@dataclass
class FleetStats:
    """Deterministic-free operational tallies (reported, never gated on)."""

    workers_spawned: int = 0
    deaths: int = 0
    retries: int = 0
    leases_expired: int = 0


class FleetEventMixin:
    """Count + registry + journal emission for fleet lifecycle events."""

    #: Event names whose counts depend on wall-clock timing; they land in
    #: the registry as wall-kind so deterministic snapshots stay byte-equal.
    WALL_EVENTS: FrozenSet[str] = frozenset()

    _event_counts: Dict[str, int]

    def _emit(self, event: str, **fields) -> None:
        """One lifecycle event: count it, mirror it to the obs wiring."""
        self._event_counts[event] = self._event_counts.get(event, 0) + 1
        registry = self.obs_registry
        if registry is not None:
            from ...obs.registry import DETERMINISTIC, WALL

            kind = WALL if event in self.WALL_EVENTS else DETERMINISTIC
            registry.counter(event, kind).inc()
        journal = self.obs_journal
        if journal is not None:
            journal.emit(event, **fields)
