"""Queue-based worker fleet: sweep cells survive SIGKILLed workers.

The fleet treats worker death as a *normal, retryable event* (Duarte et
al.'s unreliable-failure-detector model), not a sweep-aborting
exception.  The design:

* **Dispatch = lease.**  Each worker process owns a private task queue
  and holds at most one cell at a time, so the parent always knows
  exactly which cell a dead worker was running.  A heartbeat thread in
  the worker pings the shared result queue while the main thread
  simulates, so a wedged (but alive) worker is distinguishable from a
  busy one.
* **Death is detected, not trusted.**  The parent polls process
  liveness every loop; a worker that disappears (SIGKILL, OOM, crash)
  has its in-flight cell re-queued with exponential backoff and a fresh
  worker spawned in its place.  A worker whose heartbeat stops past the
  lease timeout is killed and handled the same way.
* **Re-execution is free-ish.**  Cells are deterministic and the store
  is content-addressed, so a retried cell first consults the (ideally
  shared) store — if the killed worker managed to write-through before
  dying, the retry is a read, not a recompute.  Workers write-through
  as soon as a summary exists, which also means a worker killed *after*
  computing but *before* reporting loses nothing.
* **At-least-once, recorded once.**  A cell can in principle complete
  twice (lease expired, then the slow worker finished anyway); results
  are idempotent by construction and the orchestrator ignores duplicate
  indices.

Cells that raise *deterministically* (a bug in the scenario, not the
worker) are failed immediately without retry — re-running identical
code on identical input would raise identically; retries exist for
infrastructure death, and the failure carries the worker's traceback
plus attempt count.

Workers attach to the sweep's store by **spec** (a directory path or an
``avmon store serve`` URL), so the same backend drives a single-host
fleet over a local directory and a multi-host fleet over one shared
HTTP cache.
"""

from __future__ import annotations

import collections
import heapq
import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import (
    ExecutionBackend,
    Payload,
    RecordFn,
    default_jobs,
    sorted_payloads,
)
from .leases import FleetEventMixin, FleetStats, RetryPolicy

__all__ = ["WorkerFleetBackend", "FleetStats"]


def _fleet_worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    store_spec: Optional[str],
    heartbeat_interval: float,
) -> None:
    """One fleet worker: lease a cell, heartbeat while computing, report.

    Runs in a child process.  Imports of the heavyweight simulation
    machinery happen lazily so the module stays importable without side
    effects in the parent.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from ..runner import run_simulation
    from ..store import SummaryStore, config_key
    from ..summary import summarize

    store = SummaryStore.open(store_spec) if store_spec else None
    while True:
        task = task_queue.get()
        if task is None:
            return
        index, config, attempt = task
        stop_beats = threading.Event()

        def pump() -> None:
            while not stop_beats.wait(heartbeat_interval):
                try:
                    result_queue.put(("beat", worker_id, index))
                except Exception:  # noqa: BLE001 — parent gone; just stop
                    return

        beats = threading.Thread(target=pump, daemon=True)
        beats.start()
        summary, error, persisted = None, None, False
        try:
            key = config_key(config) if store is not None else None
            if store is not None:
                # Idempotent re-execution: a retried cell whose previous
                # owner wrote through before dying is a read, not a run.
                summary = store.load(key)
                persisted = summary is not None
            if summary is None:
                summary = summarize(run_simulation(config))
                if store is not None and store.save(key, summary) is not None:
                    persisted = True
        except Exception:
            summary, error, persisted = None, traceback.format_exc(), False
        finally:
            stop_beats.set()
        result_queue.put(("done", worker_id, index, attempt, summary, error, persisted))


@dataclass
class _Lease:
    """One dispatched cell: who runs it, which attempt, and liveness."""

    index: int
    attempt: int
    dispatched_at: float
    last_beat: float


@dataclass
class _Worker:
    process: multiprocessing.Process
    task_queue: object
    lease: Optional[_Lease] = None


class WorkerFleetBackend(FleetEventMixin, ExecutionBackend):
    """N independent worker processes fed cell-by-cell with lease/retry.

    SIGKILLing any worker mid-sweep costs only the in-flight cell (and
    with a write-through store, often not even that).
    """

    name = "FLEET"

    #: Heartbeats arrive as fast as the pump thread runs — wall-kind, so
    #: they never leak into the deterministic snapshot bytes.
    WALL_EVENTS = frozenset({"fleet.heartbeat"})

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        max_attempts: int = 3,
        retry_backoff: float = 0.25,
        heartbeat_interval: float = 0.5,
        lease_timeout: float = 120.0,
        poll_interval: float = 0.05,
        chaos_kill_after_starts: Optional[int] = None,
    ) -> None:
        self.workers = workers if workers is not None else default_jobs()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if lease_timeout <= heartbeat_interval:
            raise ValueError("lease_timeout must exceed heartbeat_interval")
        self.policy = RetryPolicy(max_attempts, retry_backoff)
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        #: Test/chaos hook: after this many dispatches, SIGKILL one busy
        #: worker (once).  Results must be unaffected — that is the point.
        self.chaos_kill_after_starts = chaos_kill_after_starts
        self.stats = FleetStats()
        #: Per-execute lifecycle event counts; the source of truth for
        #: :meth:`stats_line`, so the human line and the journal agree by
        #: construction.
        self._event_counts: Dict[str, int] = {}

    # -- orchestration -----------------------------------------------------

    def execute(
        self, payloads: Sequence[Payload], record: RecordFn, *, store=None
    ) -> None:
        payloads = sorted_payloads(payloads)
        if not payloads:
            return
        self.stats = FleetStats()
        self._event_counts = {}
        store_spec = store.spec() if store is not None else None
        ctx = multiprocessing.get_context()
        result_queue = ctx.Queue()
        configs = {index: config for index, config in payloads}
        outstanding = set(configs)
        pending = collections.deque((index, 1) for index, _ in payloads)
        retry_heap: List[Tuple[float, int, int]] = []  # (ready, index, attempt)
        fleet: Dict[int, _Worker] = {}
        next_worker_id = 0
        dispatches = 0
        chaos_armed = self.chaos_kill_after_starts is not None

        def spawn() -> None:
            nonlocal next_worker_id
            worker_id = next_worker_id
            next_worker_id += 1
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=_fleet_worker_main,
                args=(
                    worker_id,
                    task_queue,
                    result_queue,
                    store_spec,
                    self.heartbeat_interval,
                ),
                daemon=True,
            )
            process.start()
            fleet[worker_id] = _Worker(process, task_queue)
            self.stats.workers_spawned += 1
            self._emit("fleet.worker_spawned", worker=worker_id)

        def dispatch() -> None:
            nonlocal dispatches
            for worker_id, worker in fleet.items():
                if worker.lease is not None or not pending:
                    continue
                index, attempt = pending.popleft()
                if index not in outstanding:
                    continue
                now = time.monotonic()
                worker.lease = _Lease(index, attempt, now, now)
                worker.task_queue.put((index, configs[index], attempt))
                dispatches += 1
                self._emit(
                    "fleet.lease_granted",
                    worker=worker_id,
                    cell=index,
                    attempt=attempt,
                )

        def handle_death(worker_id: int, reason: str) -> None:
            worker = fleet.pop(worker_id)
            worker.process.join(timeout=1.0)
            self.stats.deaths += 1
            lease = worker.lease
            self._emit(
                "fleet.worker_death",
                worker=worker_id,
                reason=reason,
                cell=lease.index if lease is not None else None,
                attempt=lease.attempt if lease is not None else None,
                exitcode=worker.process.exitcode,
            )
            if lease is not None and lease.index in outstanding:
                if self.policy.exhausted(lease.attempt):
                    record(
                        lease.index,
                        None,
                        f"fleet worker {worker_id} {reason} while running the "
                        f"cell; gave up after {lease.attempt} attempts "
                        f"(exitcode {worker.process.exitcode})",
                        attempts=lease.attempt,
                    )
                    outstanding.discard(lease.index)
                    self._emit(
                        "fleet.cell_failed",
                        cell=lease.index,
                        attempts=lease.attempt,
                    )
                else:
                    delay = self.policy.delay(lease.attempt)
                    heapq.heappush(
                        retry_heap,
                        (time.monotonic() + delay, lease.index, lease.attempt + 1),
                    )
                    self.stats.retries += 1
                    self._emit(
                        "fleet.retry",
                        cell=lease.index,
                        attempt=lease.attempt + 1,
                        delay_s=round(delay, 6),
                    )
            if outstanding:
                spawn()

        def reap() -> None:
            now = time.monotonic()
            for worker_id, worker in list(fleet.items()):
                if not worker.process.is_alive():
                    handle_death(worker_id, "died")
                    continue
                lease = worker.lease
                if lease is not None and (
                    now - max(lease.last_beat, lease.dispatched_at)
                    > self.lease_timeout
                ):
                    # Alive but silent past the lease: treat as failed
                    # (unreliable failure detector — suspicion is enough;
                    # a late completion is ignored as a duplicate).
                    self.stats.leases_expired += 1
                    self._emit(
                        "fleet.lease_expired",
                        worker=worker_id,
                        cell=lease.index,
                        attempt=lease.attempt,
                    )
                    _kill(worker.process)
                    handle_death(worker_id, "lost its lease (no heartbeat)")

        def maybe_chaos() -> None:
            nonlocal chaos_armed
            if not chaos_armed or dispatches < self.chaos_kill_after_starts:
                return
            for worker_id, worker in fleet.items():
                if worker.lease is not None:
                    self._emit(
                        "fleet.chaos_kill",
                        worker=worker_id,
                        cell=worker.lease.index,
                    )
                    _kill(worker.process)
                    chaos_armed = False
                    return

        try:
            for _ in range(min(self.workers, len(payloads))):
                spawn()
            while outstanding:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, index, attempt = heapq.heappop(retry_heap)
                    pending.append((index, attempt))
                dispatch()
                maybe_chaos()
                try:
                    message = result_queue.get(timeout=self.poll_interval)
                except Exception:  # queue.Empty — poll liveness and loop
                    reap()
                    continue
                kind, worker_id = message[0], message[1]
                worker = fleet.get(worker_id)
                if kind == "beat":
                    if worker is not None and worker.lease is not None:
                        worker.lease.last_beat = time.monotonic()
                        self._emit(
                            "fleet.heartbeat",
                            worker=worker_id,
                            cell=worker.lease.index,
                        )
                    continue
                # kind == "done"
                _, _, index, attempt, summary, error, persisted = message
                if worker is not None and worker.lease is not None and (
                    worker.lease.index == index
                ):
                    worker.lease = None
                if index not in outstanding:
                    continue  # duplicate from an expired-lease straggler
                outstanding.discard(index)
                self._emit(
                    "fleet.cell_done",
                    worker=worker_id,
                    cell=index,
                    attempt=attempt,
                    persisted=persisted,
                    error=error is not None,
                )
                record(index, summary, error, persisted=persisted, attempts=attempt)
        finally:
            self._shutdown(fleet)

    @staticmethod
    def _shutdown(fleet: Dict[int, _Worker]) -> None:
        for worker in fleet.values():
            if worker.process.is_alive():
                try:
                    worker.task_queue.put_nowait(None)
                except Exception:  # noqa: BLE001 — full/broken queue: terminate
                    pass
        deadline = time.monotonic() + 2.0
        for worker in fleet.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in fleet.values():
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        fleet.clear()

    # -- reporting ---------------------------------------------------------

    def stats_line(self) -> str:
        """Human render derived from the journal event counts.

        The same events the journal records produce this line, so the
        stderr tally and the machine-readable journal cannot disagree.
        (`FleetStats` tracks the identical quantities for programmatic
        consumers; the two are asserted equal in tests.)
        """
        counts = self._event_counts
        return (
            f"fleet: workers={self.workers} "
            f"spawned={counts.get('fleet.worker_spawned', 0)} "
            f"deaths={counts.get('fleet.worker_death', 0)} "
            f"retries={counts.get('fleet.retry', 0)} "
            f"leases_expired={counts.get('fleet.lease_expired', 0)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerFleetBackend(workers={self.workers}, "
            f"max_attempts={self.max_attempts})"
        )


def _kill(process: multiprocessing.Process) -> None:
    """SIGKILL without ceremony (what chaos and lease expiry both need)."""
    if process.pid is not None and process.is_alive():
        try:
            os.kill(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
