"""Single-host fan-out over a ``multiprocessing.Pool``.

The extracted body of the original ``run_configs`` parallel branch —
byte-identical behaviour, including Ctrl-C handling: workers ignore
SIGINT so an interrupt in the parent terminates the pool cleanly, and
any escape (a raising progress callback, an unpicklable result)
terminates workers before ``join()`` so the original error is the one
that propagates.
"""

from __future__ import annotations

import multiprocessing
import signal
from typing import Optional, Sequence

from .base import ExecutionBackend, Payload, RecordFn, default_jobs, execute_cell

__all__ = ["LocalPoolBackend"]


def _init_worker() -> None:
    """Leave interrupt handling to the parent so Ctrl-C terminates cleanly."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class LocalPoolBackend(ExecutionBackend):
    """Fan cells out over a local process pool, unordered completion."""

    name = "POOL"

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def execute(
        self, payloads: Sequence[Payload], record: RecordFn, *, store=None
    ) -> None:
        if not payloads:
            return
        workers = min(self.jobs, len(payloads))
        if workers <= 1:
            for payload in payloads:
                record(*execute_cell(payload))
            return
        pool = multiprocessing.Pool(workers, initializer=_init_worker)
        try:
            for outcome in pool.imap_unordered(execute_cell, payloads):
                record(*outcome)
            pool.close()
        except BaseException:
            # Any escape (Ctrl-C, a raising progress callback, unpicklable
            # result) must terminate the workers before join(), or join()
            # itself raises and masks the original error.
            pool.terminate()
            raise
        finally:
            pool.join()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalPoolBackend(jobs={self.jobs})"
