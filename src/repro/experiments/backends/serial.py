"""In-process execution: the ``jobs=1`` path, now a named backend."""

from __future__ import annotations

from typing import Sequence

from .base import ExecutionBackend, Payload, RecordFn, execute_cell

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Run every cell in this process, in input order.

    Funnels through the same :func:`~repro.experiments.backends.base.
    execute_cell` the pool and fleet use, so serial and parallel runs
    produce identical summaries (the equivalence the test suite asserts).
    """

    name = "SERIAL"

    def execute(
        self, payloads: Sequence[Payload], record: RecordFn, *, store=None
    ) -> None:
        for payload in payloads:
            record(*execute_cell(payload))
