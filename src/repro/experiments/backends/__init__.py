"""Execution backends: named strategies for running sweep cells.

Built-ins register under the ``"backend"`` component kind:

========  ==================================================  ============
name      strategy                                            extra params
========  ==================================================  ============
SERIAL    in this process, input order                        —
POOL      ``multiprocessing.Pool`` fan-out                    ``jobs``
FLEET     killable worker fleet with lease/retry semantics    ``workers``,
          (survives SIGKILL of any worker mid-sweep)          ``max_attempts``, ...
REMOTE    network-attached workers leasing cells from the     ``lease_ttl``,
          store daemon (``avmon fleet worker --attach``)      ``claim_ttl``, ...
========  ==================================================  ============

:func:`resolve_backend` is the single entry point callers use to turn a
user-facing spec (a name string, an already-built backend, or ``None``)
into an :class:`ExecutionBackend` instance.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ...registry import register
from .base import (
    ExecutionBackend,
    Payload,
    RecordFn,
    default_jobs,
    execute_cell,
    split_error,
)
from .fleet import WorkerFleetBackend
from .local_pool import LocalPoolBackend
from .remote import RemoteWorkerBackend, run_fleet_worker
from .serial import SerialBackend

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "LocalPoolBackend",
    "WorkerFleetBackend",
    "RemoteWorkerBackend",
    "run_fleet_worker",
    "Payload",
    "RecordFn",
    "default_jobs",
    "execute_cell",
    "split_error",
    "resolve_backend",
]


@register("backend", "SERIAL")
def _make_serial(**params: Any) -> SerialBackend:
    params.pop("jobs", None)  # uniform CLI surface: SERIAL ignores jobs
    return SerialBackend(**params)


@register("backend", "POOL")
def _make_pool(**params: Any) -> LocalPoolBackend:
    return LocalPoolBackend(**params)


@register("backend", "FLEET")
def _make_fleet(**params: Any) -> WorkerFleetBackend:
    params.setdefault("workers", params.pop("jobs", None))
    return WorkerFleetBackend(**params)


@register("backend", "REMOTE")
def _make_remote(**params: Any) -> RemoteWorkerBackend:
    params.pop("jobs", None)  # parallelism lives in the attached workers
    return RemoteWorkerBackend(**params)


def resolve_backend(
    backend: Union[None, str, ExecutionBackend],
    *,
    jobs: Optional[int] = None,
    **params: Any,
) -> Optional[ExecutionBackend]:
    """Normalise a backend spec into an instance (or ``None`` = legacy).

    Accepts an :class:`ExecutionBackend` (returned as-is; extra params
    rejected), a registered name (``"serial"``, ``"POOL"``, ``"fleet"`` —
    case/underscore-insensitive, constructed with *jobs* and *params*),
    or ``None`` (the orchestrator picks serial vs pool from ``jobs``,
    preserving the pre-backend behaviour exactly).
    """
    if backend is None:
        return None
    if isinstance(backend, ExecutionBackend):
        if params:
            raise ValueError(
                "backend params only apply when resolving by name; "
                f"got an instance plus {sorted(params)}"
            )
        return backend
    from ...registry import create

    if jobs is not None:
        params.setdefault("jobs", jobs)
    return create("backend", backend, **params)
