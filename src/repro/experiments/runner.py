"""Simulation orchestration: build, run and measure one AVMON experiment.

:func:`run_simulation` reproduces the experimental procedure of Section 5:

1. build the substrate (event engine, network, monitor relation, metrics);
2. create the initial population and let it warm up under the configured
   churn model (synthetic STAT/SYNTH/SYNTH-BD(2) or trace replay PL/OV);
3. at the end of the warm-up, arm the rate metrics, inject the control
   group (10 % of N joining simultaneously for STAT/SYNTH; implicit for the
   birth/death models, where nodes born after warm-up are tracked), and
   optionally flip a fraction of nodes into overreporting colluders;
4. run the measurement window and return a :class:`SimulationResult` with
   every series the paper's figures need.

:class:`Cluster` implements the churn-driver interface and owns node
lifecycles and true-uptime bookkeeping.
"""

from __future__ import annotations

import gc
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..churn import models as _churn_models  # noqa: F401 — registers STAT/SYNTH*
from ..churn import replay as _churn_replay  # noqa: F401 — registers TRACE/PL/OV
from ..churn.base import ChurnModel
from ..core.condition import ConsistencyCondition
from ..core.config import AvmonConfig
from ..core.hashing import NodeId
from ..core.node import AvmonNode
from ..core.relation import MonitorRelation
from ..live.faults import FaultInjector, FaultPlan
from ..metrics import stats
from ..metrics.collectors import MetricsHub
from ..net.latency import LatencyModel, UniformLatency
from ..net.network import Network, SimHost
from ..registry import resolve
from ..sim.engine import Simulator
from ..sim.randomness import RandomSource
from ..traces.format import AvailabilityTrace

__all__ = ["SimulationConfig", "SimulationResult", "Cluster", "run_simulation"]

#: Control-group injection styles.
CONTROL_SIMULTANEOUS = "simultaneous"
CONTROL_BIRTHS_AFTER_WARMUP = "births_after_warmup"
CONTROL_ALL_BIRTHS = "all_births"


@dataclass
class SimulationConfig:
    """Everything one experiment run depends on."""

    model: str = "STAT"
    n: int = 200
    duration: float = 2.0 * 3600.0
    warmup: float = 1200.0
    control_fraction: float = 0.1
    seed: int = 1
    #: AVMON protocol settings; None -> paper defaults for ``n``.
    avmon: Optional[AvmonConfig] = None
    #: Synthetic churn parameters (SYNTH / SYNTH-BD).
    churn_per_hour: float = 0.2
    birth_death_per_day: float = 0.2
    #: Replay trace (required when model is "TRACE"/"PL"/"OV").
    trace: Optional[AvailabilityTrace] = None
    #: Fraction of nodes that overreport TS availabilities (Figure 20).
    overreport_fraction: float = 0.0
    #: One-way latency bounds in seconds.
    latency_low: float = 0.02
    latency_high: float = 0.1
    #: Memory-sampling cadence during the measurement window.
    sample_interval: float = 120.0
    label: str = ""
    #: Pluggable latency model; None -> UniformLatency(latency_low, latency_high).
    latency: Optional[LatencyModel] = None
    #: Network fault plan (loss/duplication/partitions); None -> perfect
    #: network, with the exact pre-fault behaviour and cache key.
    fault: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.n <= 1:
            raise ValueError(f"n must exceed 1, got {self.n}")
        if self.duration <= self.warmup:
            raise ValueError(
                f"duration ({self.duration}) must exceed warmup ({self.warmup})"
            )
        if not 0.0 <= self.control_fraction <= 1.0:
            raise ValueError(
                f"control_fraction must be in [0, 1], got {self.control_fraction}"
            )
        if not 0.0 <= self.overreport_fraction <= 1.0:
            raise ValueError(
                f"overreport_fraction must be in [0, 1], got {self.overreport_fraction}"
            )
        if self.is_trace_model and self.trace is None:
            raise ValueError(f"model {self.model!r} requires a trace")
        if not self.label:
            self.label = self.model

    @property
    def model_key(self) -> str:
        return self.model.upper().replace("_", "-")

    @property
    def is_trace_model(self) -> bool:
        return self.model_key in ("TRACE", "PL", "OV")

    @property
    def control_mode(self) -> str:
        if self.is_trace_model:
            return CONTROL_ALL_BIRTHS
        if self.model_key in ("SYNTH-BD", "SYNTH-BD2"):
            return CONTROL_BIRTHS_AFTER_WARMUP
        return CONTROL_SIMULTANEOUS

    def resolved_avmon(self) -> AvmonConfig:
        if self.avmon is not None:
            return self.avmon
        return AvmonConfig.paper_defaults(self.n)


class Cluster:
    """Node lifecycles, churn-driver interface, uptime bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        relation: MonitorRelation,
        avmon_config: AvmonConfig,
        metrics: MetricsHub,
        source: RandomSource,
        *,
        warmup: float,
        control_mode: str = CONTROL_SIMULTANEOUS,
    ) -> None:
        self.sim = sim
        self.network = network
        self.relation = relation
        self.avmon_config = avmon_config
        self.metrics = metrics
        self.source = source
        self.warmup = warmup
        self.control_mode = control_mode
        self.model: Optional[ChurnModel] = None

        self.nodes: Dict[NodeId, AvmonNode] = {}
        self.control_nodes: Set[NodeId] = set()
        self._next_id = 0
        self._dead: Set[NodeId] = set()
        #: node -> list of [up_start, up_end]; open interval has end None.
        self._uptime: Dict[NodeId, List[List[Optional[float]]]] = defaultdict(list)
        self._first_join: Dict[NodeId, float] = {}
        self.births_total = 0

    def bind_model(self, model: ChurnModel) -> None:
        self.model = model
        model.bind(self)

    # -- node construction -------------------------------------------------

    def create_node(self) -> NodeId:
        """Allocate id, host, protocol node and periodic processes (down)."""
        node_id = self._next_id
        self._next_id += 1
        self.relation.add_node(node_id)
        host = SimHost(self.network, node_id, self.source.node_stream(node_id))
        node = AvmonNode(
            node_id, self.avmon_config, self.relation, host, self.metrics
        )
        host.attach(node)
        host.add_periodic(self.avmon_config.protocol_period, node.protocol_tick)
        host.add_periodic(self.avmon_config.monitoring_period, node.monitoring_tick)
        self.nodes[node_id] = node
        self.births_total += 1
        return node_id

    def host_of(self, node_id: NodeId) -> SimHost:
        return self.network.host(node_id)

    def bring_up(self, node_id: NodeId) -> None:
        """Transition a down node to alive and run the join protocol."""
        host = self.host_of(node_id)
        host.bring_up()
        now = self.sim.now
        self._uptime[node_id].append([now, None])
        if node_id not in self._first_join:
            self._first_join[node_id] = now
        self.nodes[node_id].begin_join()
        if self.model is not None:
            self.model.on_node_up(node_id)

    def take_down(self, node_id: NodeId, *, death: bool = False) -> None:
        host = self.host_of(node_id)
        host.take_down(death=death)
        intervals = self._uptime[node_id]
        if intervals and intervals[-1][1] is None:
            intervals[-1][1] = self.sim.now
        if death:
            self._dead.add(node_id)
            if self.model is not None:
                self.model.on_node_death(node_id)
        elif self.model is not None:
            self.model.on_node_down(node_id)

    def track_control(self, node_id: NodeId, join_time: float) -> None:
        self.control_nodes.add(node_id)
        self.metrics.discovery.track(node_id, join_time)

    # -- ChurnDriver interface ------------------------------------------------

    def request_leave(self, node: NodeId) -> None:
        if self.network.is_alive(node):
            self.take_down(node)

    def request_rejoin(self, node: NodeId) -> None:
        if node not in self._dead and not self.network.is_alive(node):
            self.bring_up(node)

    def request_birth(self) -> NodeId:
        node_id = self.create_node()
        now = self.sim.now
        if self.control_mode == CONTROL_ALL_BIRTHS or (
            self.control_mode == CONTROL_BIRTHS_AFTER_WARMUP and now >= self.warmup
        ):
            self.track_control(node_id, now)
        self.bring_up(node_id)
        return node_id

    def request_death(self, node: NodeId) -> None:
        self.take_down(node, death=True)

    def random_alive(self) -> Optional[NodeId]:
        return self.network.random_alive()

    def is_alive(self, node: NodeId) -> bool:
        return self.network.is_alive(node)

    def is_dead(self, node: NodeId) -> bool:
        return node in self._dead

    # -- ground truth --------------------------------------------------------------

    def true_availability(self, node: NodeId, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` the node was actually up."""
        if end <= start:
            return 0.0
        return self.uptime_in_window(node, start, end) / (end - start)

    def uptime_in_window(self, node: NodeId, start: float, end: float) -> float:
        """Seconds the node was up within ``[start, end)``."""
        up = 0.0
        for interval_start, interval_end in self._uptime.get(node, ()):  # type: ignore[misc]
            closed_end = interval_end if interval_end is not None else end
            up += max(0.0, min(closed_end, end) - max(interval_start, start))
        return up

    def first_join_time(self, node: NodeId) -> Optional[float]:
        return self._first_join.get(node)

    def last_up_time(self, node: NodeId, default: float) -> float:
        """End of the node's most recent up interval (*default* if still up).

        Used as the truth window's end when auditing availability: a node
        that departed for good is judged over its observable lifetime, the
        same horizon its monitors' ping records cover.
        """
        intervals = self._uptime.get(node)
        if not intervals:
            return default
        last_end = intervals[-1][1]
        return default if last_end is None else last_end

    def alive_ids(self) -> Tuple[NodeId, ...]:
        return self.network.alive_ids()


@dataclass
class SimulationResult:
    """Everything measured by one run, plus helpers for the figures."""

    config: SimulationConfig
    avmon_config: AvmonConfig
    metrics: MetricsHub
    cluster: Cluster
    network: Network
    #: Per-node mean memory entries over the measurement window.
    memory_means: Dict[NodeId, float]
    #: Per-node outgoing bytes during the measurement window.
    window_bytes: Dict[NodeId, int]
    window_seconds: float
    n_longterm: int
    final_alive: int
    events_processed: int = 0
    wall_seconds: float = 0.0

    # -- discovery (Figures 3-6, 13, 15) ---------------------------------------

    def first_monitor_delays(self) -> List[float]:
        return self.metrics.discovery.first_monitor_delays()

    def nth_monitor_delays(self, nth: int) -> List[float]:
        return self.metrics.discovery.nth_monitor_delays(nth)

    def average_discovery_time(self, drop_top: int = 1) -> float:
        return self.metrics.discovery.average_first_delay(drop_top=drop_top)

    def discovery_cdf(self) -> List[Tuple[float, float]]:
        return stats.cdf_points(self.first_monitor_delays())

    # -- node selections -----------------------------------------------------------

    def _selection(self, control_only: bool) -> List[NodeId]:
        if control_only and self.cluster.control_nodes:
            return sorted(self.cluster.control_nodes)
        return sorted(self.cluster.nodes)

    def _alive_seconds(self, node: NodeId) -> float:
        """Seconds the node spent alive inside the measurement window."""
        return self.cluster.uptime_in_window(
            node, self.config.warmup, self.config.duration
        )

    #: Rate metrics skip nodes alive for less than this many seconds in the
    #: window — a node up for one protocol period has no meaningful rate.
    MIN_ALIVE_SECONDS = 300.0

    # -- computation (Figures 7, 8, 12) ----------------------------------------------

    def computation_rates(self, control_only: bool = True) -> List[float]:
        """Consistency checks per second per node, over each node's alive
        time within the window (churned nodes only accrue cost while up)."""
        rates = []
        for node in self._selection(control_only):
            alive = self._alive_seconds(node)
            if alive < self.MIN_ALIVE_SECONDS:
                continue
            rates.append(self.metrics.computation.total(node) / alive)
        return rates

    # -- memory (Figures 9, 10, 14, 16) -----------------------------------------------

    def memory_values(self, control_only: bool = True) -> List[float]:
        selection = self._selection(control_only)
        return [self.memory_means[n] for n in selection if n in self.memory_means]

    # -- bandwidth (Figure 19) -----------------------------------------------------------

    def bandwidth_rates(self) -> List[float]:
        """Outgoing bytes/second per node over its alive time in the window."""
        out = []
        for node, sent in self.window_bytes.items():
            alive = self._alive_seconds(node)
            if alive < self.MIN_ALIVE_SECONDS:
                continue
            out.append(sent / alive)
        return out

    # -- pings (Figure 18) -------------------------------------------------------------

    def useless_ping_rates(self) -> List[float]:
        """Useless monitoring pings per alive-minute per node."""
        rates = []
        for node in sorted(self.cluster.nodes):
            alive = self._alive_seconds(node)
            if alive < self.MIN_ALIVE_SECONDS:
                continue
            rates.append(self.metrics.pings.useless_total(node) / (alive / 60.0))
        return rates

    # -- availability accuracy (Figures 17, 20) ---------------------------------------------

    def availability_audit(
        self,
        control_only: bool = True,
        min_pings: int = 3,
        alive_only: bool = False,
    ) -> Dict[NodeId, Tuple[float, float]]:
        """Per node: (estimated availability averaged over PS, true uptime).

        The estimate honours overreporting monitors (they claim 1.0), which
        is exactly what Figure 20's attack measures; Figure 17 uses honest
        populations so the same code path yields the forgetful-ping ratio.
        True availability is the node's uptime fraction from its first join
        to the end of the run.  With *alive_only* the audit covers only
        nodes still in the system at the end — the population whose
        measured reputation matters to applications (departed-for-good
        nodes' ping estimates necessarily lag their wall-clock truth).
        """
        end = self.config.duration
        monitors_of: Dict[NodeId, List[NodeId]] = defaultdict(list)
        for monitor, targets in self.metrics.monitor_targets.items():
            for target in targets:
                monitors_of[target].append(monitor)
        audits: Dict[NodeId, Tuple[float, float]] = {}
        for node in self._selection(control_only):
            if alive_only and not self.network.is_alive(node):
                continue
            first_join = self.cluster.first_join_time(node)
            if first_join is None or first_join >= end:
                continue
            estimates = []
            for monitor_id in monitors_of.get(node, ()):  # monitors that found it
                monitor = self.cluster.nodes.get(monitor_id)
                if monitor is None:
                    continue
                record = monitor.store.get(node)
                if record is None or record.pings_sent < min_pings:
                    continue
                estimates.append(monitor.availability_report(node))
            if not estimates:
                continue
            truth = self.cluster.true_availability(node, first_join, end)
            audits[node] = (stats.mean(estimates), truth)
        return audits

    def availability_ratio_series(self, control_only: bool = True) -> Dict[NodeId, float]:
        """Figure 17's series: estimated / true availability per node."""
        series = {}
        for node, (estimate, truth) in self.availability_audit(control_only).items():
            if truth > 0:
                series[node] = estimate / truth
        return series

    def fraction_affected(self, threshold: float = 0.2) -> float:
        """Figure 20's metric: fraction of nodes with |estimate − truth| >
        *threshold*, over the live population."""
        audits = self.availability_audit(control_only=False, alive_only=True)
        if not audits:
            return 0.0
        affected = sum(
            1 for estimate, truth in audits.values() if abs(estimate - truth) > threshold
        )
        return affected / len(audits)

    # -- summary extraction ----------------------------------------------------

    def summary(self):
        """Flat, picklable :class:`~repro.experiments.summary.SimulationSummary`
        carrying every series the figures consume (see that module)."""
        from .summary import summarize

        return summarize(self)


def run_simulation(
    config: SimulationConfig, *, obs=None
) -> SimulationResult:
    """Build and execute one experiment; see the module docstring.

    *obs* is an optional :class:`repro.obs.registry.MetricsRegistry`; when
    given, the engine, condition and relation are observed through it
    (callback gauges plus the relation's guarded scan instrumentation).
    The simulation itself is unaffected — hooks are read-only.
    """
    wall_start = time.perf_counter()
    avmon_config = config.resolved_avmon()
    source = RandomSource(config.seed)
    sim = Simulator()
    latency = config.latency
    if latency is None:
        latency = UniformLatency(config.latency_low, config.latency_high)
    fault = None
    if config.fault is not None and not config.fault.is_null():
        fault = FaultInjector(config.fault)
    network = Network(
        sim,
        latency=latency,
        rng=source.stream("network"),
        entry_bytes=avmon_config.entry_bytes,
        fault=fault,
    )
    condition = ConsistencyCondition(
        avmon_config.k, avmon_config.n_expected, avmon_config.hash_algorithm
    )
    relation = MonitorRelation(condition)
    if obs is not None:
        from ..obs.hooks import observe_condition, observe_simulator

        observe_simulator(obs, sim)
        observe_condition(obs, condition)
        relation.observe(obs)
    metrics = MetricsHub()
    cluster = Cluster(
        sim,
        network,
        relation,
        avmon_config,
        metrics,
        source,
        warmup=config.warmup,
        control_mode=config.control_mode,
    )
    model = _build_model(config, cluster, source)
    cluster.bind_model(model)

    _provision_initial_population(config, cluster, source, model)
    model.setup()

    # Warm-up boundary: arm metrics, inject control group, start attack.
    memory_sums: Dict[NodeId, float] = defaultdict(float)
    memory_counts: Dict[NodeId, int] = defaultdict(int)
    baseline_bytes: Dict[NodeId, int] = {}

    def at_warmup() -> None:
        metrics.arm(sim.now)
        baseline_bytes.update(network.accountant.snapshot())
        if config.control_mode == CONTROL_SIMULTANEOUS:
            control_size = max(1, round(config.control_fraction * config.n))
            for _ in range(control_size):
                node_id = cluster.create_node()
                cluster.track_control(node_id, sim.now)
                cluster.bring_up(node_id)
        if config.overreport_fraction > 0.0:
            _select_overreporters(config, cluster, source)

    sim.schedule_call_at(config.warmup, at_warmup)

    def sample_memory() -> None:
        for node_id in network.alive_ids():
            node = cluster.nodes[node_id]
            memory_sums[node_id] += node.memory_entries()
            memory_counts[node_id] += 1

    cursor = config.warmup + config.sample_interval
    while cursor <= config.duration:
        sim.schedule_call_at(cursor, sample_memory)
        cursor += config.sample_interval

    # The event loop allocates millions of short-lived, acyclic objects
    # (messages, heap entries); cyclic GC passes over them are pure
    # overhead, so collection is paused for the loop.  Refcounting still
    # frees everything transient; the few cyclic structures (hosts, nodes,
    # handles) outlive the run regardless and are collected once the
    # caller drops the result.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        sim.run_until(config.duration)
    finally:
        if gc_was_enabled:
            gc.enable()

    memory_means = {
        node: memory_sums[node] / memory_counts[node]
        for node in memory_sums
        if memory_counts[node] > 0
    }
    final_bytes = network.accountant.snapshot()
    window_bytes = {
        node: final_bytes.get(node, 0) - baseline_bytes.get(node, 0)
        for node in final_bytes
    }
    return SimulationResult(
        config=config,
        avmon_config=avmon_config,
        metrics=metrics,
        cluster=cluster,
        network=network,
        memory_means=memory_means,
        window_bytes=window_bytes,
        window_seconds=config.duration - config.warmup,
        n_longterm=cluster.births_total,
        final_alive=network.alive_count(),
        events_processed=sim.processed_events,
        wall_seconds=time.perf_counter() - wall_start,
    )


def _build_model(
    config: SimulationConfig, cluster: Cluster, source: RandomSource
) -> ChurnModel:
    """Build the churn model named by the config via the component registry.

    Every registered ``"churn"`` factory shares the signature
    ``factory(n_stable, rng, **params)`` and picks the parameters it needs,
    so third-party models plug in without touching this module.
    """
    factory = resolve("churn", config.model_key)
    return factory(
        config.n,
        source.stream("churn"),
        churn_per_hour=config.churn_per_hour,
        birth_death_per_day=config.birth_death_per_day,
        trace=config.trace,
    )


def _provision_initial_population(
    config: SimulationConfig,
    cluster: Cluster,
    source: RandomSource,
    model: ChurnModel,
) -> None:
    """Create the pre-warm-up population (synthetic models only).

    Trace models create their own population through replayed births.
    Initial joins are staggered over the first half of the warm-up so the
    bootstrap does not start from a thundering herd.
    """
    if config.is_trace_model:
        return
    rng = source.stream("initial")
    join_window = config.warmup * 0.5
    for _ in range(config.n):
        node_id = cluster.create_node()
        delay = rng.uniform(0.0, join_window)
        cluster.sim.schedule_call_at(delay, cluster.bring_up, node_id)
    down_per_alive = getattr(model, "initial_down_per_alive", 0.0)
    down_count = int(round(down_per_alive * config.n))
    for _ in range(down_count):
        node_id = cluster.create_node()
        # Hand the down node to the model so it schedules the first rejoin.
        cluster.sim.schedule_call_at(0.0, model.on_node_down, node_id)


def _select_overreporters(
    config: SimulationConfig, cluster: Cluster, source: RandomSource
) -> None:
    rng = source.stream("attack")
    population = sorted(cluster.nodes)
    count = int(round(config.overreport_fraction * len(population)))
    for node_id in rng.sample(population, min(count, len(population))):
        cluster.nodes[node_id].overreports = True
