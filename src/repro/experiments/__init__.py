"""Evaluation harness: runner, scenarios and one module per paper artifact."""

from .cache import SimulationCache, default_cache
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .runner import Cluster, SimulationConfig, SimulationResult, run_simulation
from .scenarios import (
    SCALES,
    n_values,
    overnet_scenario,
    planetlab_scenario,
    scenario,
    trace_for,
)

__all__ = [
    "Cluster",
    "EXPERIMENTS",
    "Experiment",
    "SCALES",
    "SimulationCache",
    "SimulationConfig",
    "SimulationResult",
    "default_cache",
    "experiment_ids",
    "n_values",
    "overnet_scenario",
    "planetlab_scenario",
    "run_experiment",
    "run_simulation",
    "scenario",
    "trace_for",
]
