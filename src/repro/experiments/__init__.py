"""Evaluation harness: runner, scenarios, orchestrator and one module per
paper artifact."""

from .cache import SimulationCache, default_cache
from .orchestrator import CellFailure, SweepError, default_jobs, run_configs
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .runner import Cluster, SimulationConfig, SimulationResult, run_simulation
from .scenarios import (
    SCALES,
    n_values,
    overnet_scenario,
    planetlab_scenario,
    scale_window,
    scenario,
    trace_for,
)
from .store import SummaryStore, config_key, stable_key_hash, store_filename
from .summary import SimulationSummary, summarize

__all__ = [
    "CellFailure",
    "Cluster",
    "EXPERIMENTS",
    "Experiment",
    "SCALES",
    "SimulationCache",
    "SimulationConfig",
    "SimulationResult",
    "SimulationSummary",
    "SummaryStore",
    "SweepError",
    "config_key",
    "default_cache",
    "default_jobs",
    "experiment_ids",
    "n_values",
    "overnet_scenario",
    "planetlab_scenario",
    "run_configs",
    "run_experiment",
    "run_simulation",
    "scale_window",
    "scenario",
    "stable_key_hash",
    "store_filename",
    "summarize",
    "trace_for",
]
