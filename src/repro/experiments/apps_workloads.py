"""The Section-1 application workloads as runnable experiments.

The paper motivates availability monitoring with three consumers: network
queries for a node's availability (§3.3's full report/verify/aggregate
flow), availability-aware replica placement, and availability prediction
from monitored histories.  :mod:`repro.apps` implements the application
logic; this module packages each one as an ``experiment`` component —
registered in :mod:`repro.registry` like every figure — so they show up in
``avmon list --json`` and run through ``avmon run app_query`` and friends.

Unlike the figure experiments these need *live* node objects (monitor
stores, in-sim message exchange), which the flat summary cache cannot
carry, so each run simulates its base scenario directly rather than
priming the shared summary store.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..apps.prediction import (
    PeriodicPredictor,
    SaturatingCounterPredictor,
    hit_rate,
)
from ..apps.query import QueryClient, QueryResult
from ..apps.replication import compare_policies
from ..metrics import stats
from ..net.network import SimHost
from .cache import SimulationCache
from .report import format_kv, format_table
from .runner import run_simulation
from .scenarios import scenario

__all__ = ["run_query", "run_replication", "run_prediction"]

#: Per-scale base population for the app workloads.
_APP_N = {"paper": 400, "bench": 100, "test": 40}


def _base_result(scale: str, *, churn_per_hour: float = 2.0, seed: int = 11):
    """A churned SYNTH run whose monitors observe many up/down cycles."""
    config = scenario(
        "SYNTH",
        _APP_N.get(scale, 100),
        scale,
        seed=seed,
        churn_per_hour=churn_per_hour,
    )
    return run_simulation(config)


def run_query(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    """§3.3 end to end: report -> verify -> per-monitor history -> aggregate.

    Attaches a :class:`~repro.apps.query.QueryClient` to the finished
    simulation's network (the simulator keeps running, churn and all) and
    queries a sample of alive nodes for their availability.
    """
    del cache  # needs live node objects; see the module docstring
    result = _base_result(scale)
    cluster = result.cluster
    network = result.network
    sim = cluster.sim
    condition = cluster.relation.condition

    client_id = max(cluster.nodes) + 1009
    host = SimHost(network, client_id, random.Random(4242))
    client = QueryClient(
        client_id, condition, host, min_monitors=1, timeout=30.0
    )
    host.attach(client)
    host.bring_up()

    rng = random.Random(99)
    alive = [n for n in network.alive_ids() if n in cluster.nodes]
    subjects = rng.sample(alive, min(25, len(alive)))
    results: List[QueryResult] = []
    for index, subject in enumerate(subjects):
        sim.schedule(0.5 * index, lambda s=subject: client.query(s, results.append))
    sim.run_until(sim.now + 0.5 * len(subjects) + 35.0)

    satisfied = [r for r in results if r.policy_satisfied]
    complete = [r for r in results if r.complete]
    errors = []
    for entry in satisfied:
        truth = cluster.true_availability(
            entry.subject,
            cluster.first_join_time(entry.subject) or 0.0,
            result.config.duration,
        )
        errors.append(abs(entry.availability - truth))
    return format_kv(
        [
            ("queries issued", len(subjects)),
            ("replies received", len(results)),
            ("policy satisfied (>= l verified monitors)", len(satisfied)),
            ("fully answered (every monitor reported)", len(complete)),
            (
                "mean verified monitors per query",
                stats.mean([len(r.verified_monitors) for r in results])
                if results
                else 0.0,
            ),
            (
                "reported monitors failing verification",
                sum(len(r.rejected_monitors) for r in results),
            ),
            ("mean |estimate - truth|", stats.mean(errors) if errors else 0.0),
        ]
    )


def run_replication(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> str:
    """Availability-aware vs random replica placement over audited reports."""
    del cache
    result = _base_result(scale)
    audits = result.availability_audit(control_only=False)
    measured = {node: estimate for node, (estimate, _) in audits.items()}
    if not measured:
        return "(no audited nodes; run a larger scale)"
    rng = random.Random(7)
    rows = []
    for count in (2, 3, 5):
        smart, random_score = compare_policies(measured, count, rng)
        smart_miss = max(1e-9, 1.0 - smart.availability)
        rows.append(
            (
                count,
                smart.availability,
                random_score,
                (1.0 - random_score) / smart_miss,
            )
        )
    table = format_table(
        ("replicas", "smart P(>=1 up)", "random P(>=1 up)", "unavail. shrink"),
        rows,
    )
    return (
        f"audited {len(measured)} nodes via their verified monitors\n" + table
    )


def run_prediction(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> str:
    """Train the two classic predictors on monitors' raw sample histories."""
    del cache
    result = _base_result(scale)
    counter_scores: List[float] = []
    lastvalue_scores: List[float] = []
    periodic_scores: List[float] = []
    streams = 0
    for node in result.cluster.nodes.values():
        for record in node.store.records():
            samples = getattr(record.history, "samples", lambda: ())()
            if len(samples) < 20:
                continue
            streams += 1
            split = int(len(samples) * 0.8)
            train, test = samples[:split], samples[split:]
            actual = [up for _, up in test]

            counter = SaturatingCounterPredictor(bits=2)
            counter.train([up for _, up in train])
            predictions = []
            for _, up in test:
                predictions.append(counter.predict())
                counter.observe(up)
            counter_scores.append(hit_rate(predictions, actual))

            last = SaturatingCounterPredictor(bits=1)
            last.train([up for _, up in train])
            predictions = []
            for _, up in test:
                predictions.append(last.predict())
                last.observe(up)
            lastvalue_scores.append(hit_rate(predictions, actual))

            periodic = PeriodicPredictor(cycle=3600.0, buckets=12)
            periodic.train(train)
            periodic_scores.append(
                hit_rate([periodic.predict(t) for t, _ in test], actual)
            )
    if not streams:
        return "(no monitor observed enough samples; run a larger scale)"
    return format_kv(
        [
            ("monitored sample streams", streams),
            ("saturating counter (2-bit) hit rate", stats.mean(counter_scores)),
            ("last-value (1-bit) hit rate", stats.mean(lastvalue_scores)),
            ("periodic (diurnal) hit rate", stats.mean(periodic_scores)),
        ]
    )
