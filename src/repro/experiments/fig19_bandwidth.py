"""Figure 19: CDF of per-node outgoing bandwidth.

Three settings: STAT at the largest N, STAT with the PR2 in-degree refresh
(a node unpinged for two protocol periods forces itself back into its
coarse-view members' views), and the Overnet trace.  The paper: most STAT
nodes sit below 10 Bps but ~6.5 % exceed 50 Bps due to in-degree
degradation; PR2 pulls everyone under 9 Bps; OV's constant churn keeps
bandwidth uniform (99.85 % under 11 Bps).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_cdf, format_table
from .scenarios import n_values, overnet_scenario, scenario

__all__ = ["compute", "render", "run"]


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[str, dict]:
    cache = cache if cache is not None else default_cache()
    n = n_values(scale)[-1]
    stat_config = scenario("STAT", n, scale)
    pr2_config = scenario("STAT", n, scale)
    pr2_config.avmon = pr2_config.resolved_avmon().with_overrides(enable_pr2=True)
    pr2_config.label = "STAT-PR2"
    configs = [
        ("STAT", stat_config),
        ("STAT-PR2", pr2_config),
        ("OV", overnet_scenario(scale)),
    ]
    cache.prime([config for _, config in configs], jobs=jobs)
    out = {}
    for label, config in configs:
        rates = cache.get_summary(config).bandwidth_rates()
        out[label] = {
            "rates": rates,
            "cdf": stats.cdf_points(rates),
            "below_10": stats.fraction_below(rates, 10.0),
            "below_25": stats.fraction_below(rates, 25.0),
            "p99": stats.percentile(rates, 99.0),
            "max": max(rates) if rates else 0.0,
        }
    return out


def render(data: Dict[str, dict]) -> str:
    lines = [
        "Figure 19 - CDF of per-node outgoing bandwidth (bytes/second)",
        "paper: STAT mostly < 10 Bps with a heavy tail; PR2 removes the",
        "tail; OV stays uniform under churn",
        "",
        format_table(
            ("setting", "nodes", "frac <= 10 Bps", "frac <= 25 Bps", "p99 Bps", "max Bps"),
            [
                (
                    label,
                    len(info["rates"]),
                    info["below_10"],
                    info["below_25"],
                    info["p99"],
                    info["max"],
                )
                for label, info in data.items()
            ],
        ),
    ]
    for label, info in data.items():
        lines.append("")
        lines.append(f"{label} CDF:")
        lines.append(format_cdf(info["cdf"], value_label="outgoing Bps"))
    return "\n".join(lines)


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return render(compute(scale, cache, jobs))
