"""Figures 7 and 8: computational overhead of the discovery protocol.

Figure 7: average consistency-condition evaluations per second per node
(with ±1 σ) against N for the three synthetic models — the paper finds it
sublinear in N and "close to 2·cvs² per minute", essentially unaffected by
churn.  Figure 8: the CDF of the same quantity across nodes at the smallest
and largest N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import optimal
from ..metrics import stats
from .cache import SimulationCache, default_cache
from .fig03_discovery import MODELS
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig7", "compute_fig8", "run_fig7", "run_fig8", "run"]


def compute_fig7(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> List[Tuple[str, int, float, float, float]]:
    """Rows of (model, N, avg comps/s, std, expected 2·cvs²/period)."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for model in MODELS:
        for n in n_values(scale):
            result = cache.get(scenario(model, n, scale))
            rates = result.computation_rates(control_only=True)
            expected = (
                2.0
                * result.avmon_config.cvs ** 2
                / result.avmon_config.protocol_period
            )
            rows.append((model, n, stats.mean(rates), stats.std(rates), expected))
    return rows


def compute_fig8(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> Dict[Tuple[str, int], List[Tuple[float, float]]]:
    """CDF points of per-node comps/s at the sweep's extreme Ns."""
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    out = {}
    for model in MODELS:
        for n in (sweep[0], sweep[-1]):
            result = cache.get(scenario(model, n, scale))
            out[(model, n)] = stats.cdf_points(
                result.computation_rates(control_only=True)
            )
    return out


def run_fig7(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    rows = compute_fig7(scale, cache)
    header = (
        "Figure 7 - average computations per second per node\n"
        "paper: sublinear in N, close to 2*cvs^2 per minute, barely\n"
        "influenced by churn\n"
    )
    return header + format_table(
        ("model", "N", "avg comps/s", "std", "expected 2*cvs^2/T"), rows
    )


def run_fig8(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    data = compute_fig8(scale, cache)
    lines = ["Figure 8 - CDF of per-node computations per second"]
    for (model, n), points in sorted(data.items()):
        lines.append("")
        lines.append(f"{model}, N = {n}:")
        lines.append(format_cdf(points, value_label="comps/s"))
    return "\n".join(lines)


def run(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    return run_fig7(scale, cache) + "\n\n" + run_fig8(scale, cache)
