"""Figures 7 and 8: computational overhead of the discovery protocol.

Figure 7: average consistency-condition evaluations per second per node
(with ±1 σ) against N for the three synthetic models — the paper finds it
sublinear in N and "close to 2·cvs² per minute", essentially unaffected by
churn.  Figure 8: the CDF of the same quantity across nodes at the smallest
and largest N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .fig03_discovery import MODELS
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig7", "compute_fig8", "run_fig7", "run_fig8", "run"]


def compute_fig7(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, float, float, float]]:
    """Rows of (model, N, avg comps/s, std, expected 2·cvs²/period)."""
    cache = cache if cache is not None else default_cache()
    configs = [
        scenario(model, n, scale) for model in MODELS for n in n_values(scale)
    ]
    cache.prime(configs, jobs=jobs)
    rows = []
    for config in configs:
        summary = cache.get_summary(config)
        rates = summary.computation_rates(control_only=True)
        expected = (
            2.0 * summary.avmon["cvs"] ** 2 / summary.avmon["protocol_period"]
        )
        rows.append(
            (summary.model, summary.n, stats.mean(rates), stats.std(rates), expected)
        )
    return rows


def compute_fig8(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[Tuple[str, int], List[Tuple[float, float]]]:
    """CDF points of per-node comps/s at the sweep's extreme Ns."""
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    configs = {
        (model, n): scenario(model, n, scale)
        for model in MODELS
        for n in (sweep[0], sweep[-1])
    }
    cache.prime(configs.values(), jobs=jobs)
    return {
        key: stats.cdf_points(
            cache.get_summary(config).computation_rates(control_only=True)
        )
        for key, config in configs.items()
    }


def run_fig7(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    rows = compute_fig7(scale, cache, jobs)
    header = (
        "Figure 7 - average computations per second per node\n"
        "paper: sublinear in N, close to 2*cvs^2 per minute, barely\n"
        "influenced by churn\n"
    )
    return header + format_table(
        ("model", "N", "avg comps/s", "std", "expected 2*cvs^2/T"), rows
    )


def run_fig8(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    data = compute_fig8(scale, cache, jobs)
    lines = ["Figure 8 - CDF of per-node computations per second"]
    for (model, n), points in sorted(data.items()):
        lines.append("")
        lines.append(f"{model}, N = {n}:")
        lines.append(format_cdf(points, value_label="comps/s"))
    return "\n".join(lines)


def run(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    return run_fig7(scale, cache, jobs) + "\n\n" + run_fig8(scale, cache, jobs)
