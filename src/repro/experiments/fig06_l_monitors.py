"""Figure 6: average time to discover the first L monitors (L = 1, 2, 3).

For the largest N in the sweep, each synthetic model's control nodes are
timed until their 1st, 2nd and 3rd monitor discoveries.  The paper's claim:
PS nodes are discovered at roughly uniform time intervals for every model.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .fig03_discovery import MODELS
from .report import format_table
from .scenarios import n_values, scenario

__all__ = ["compute", "render", "run", "MAX_L"]

MAX_L = 3


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, int, float, int]]:
    """Rows of (model, N, L, avg time to Lth monitor in s, nodes reaching L)."""
    cache = cache if cache is not None else default_cache()
    n = n_values(scale)[-1]
    configs = {model: scenario(model, n, scale) for model in MODELS}
    cache.prime(configs.values(), jobs=jobs)
    rows = []
    for model in MODELS:
        summary = cache.get_summary(configs[model])
        for level in range(1, MAX_L + 1):
            delays = summary.nth_monitor_delays(level)
            rows.append((model, n, level, stats.mean(delays), len(delays)))
    return rows


def render(rows) -> str:
    header = (
        "Figure 6 - average time to discovery of first L monitors\n"
        "paper: monitors are discovered at roughly uniform intervals for\n"
        "every churn model\n"
    )
    return header + format_table(
        ("model", "N", "L", "avg time to Lth monitor (s)", "nodes"), rows
    )


def run(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    return render(compute(scale, cache, jobs))
