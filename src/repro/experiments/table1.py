"""Table 1: complexity of Broadcast vs the AVMON variants.

Regenerates the paper's comparison table, both asymptotically and
instantiated at a concrete N (including the paper's running example
N = 10^6: cvs = 32 for Optimal-MDC, ~1000 hashes/period, 192 Bps).  Also
cross-checks the closed-form optima against a numeric minimiser.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import optimal
from .report import format_kv, format_table

__all__ = ["compute", "render", "run"]

#: The paper's running example size.
PAPER_EXAMPLE_N = 1_000_000


def compute(n: int = PAPER_EXAMPLE_N) -> List[optimal.TableRow]:
    return optimal.variant_table(n)


def render(rows: List[optimal.TableRow], n: int = PAPER_EXAMPLE_N) -> str:
    table = format_table(
        (
            "approach",
            "M (asympt.)",
            "D (asympt.)",
            "C (asympt.)",
            "cvs",
            "M entries",
            "E[D] periods",
            "C per period",
        ),
        [
            (
                row.approach,
                row.memory_bandwidth,
                row.discovery_time,
                row.computation,
                row.cvs_value if row.cvs_value is not None else "-",
                row.memory_value if row.memory_value is not None else "-",
                row.discovery_value if row.discovery_value is not None else "-",
                row.computation_value if row.computation_value is not None else "-",
            )
            for row in rows
        ],
    )
    numeric_md = optimal.minimize_cost(optimal.cost_md, n)
    numeric_mdc = optimal.minimize_cost(optimal.cost_mdc, n)
    checks = format_kv(
        [
            ("closed-form Optimal-MD cvs", optimal.cvs_optimal_md(n, rounded=False)),
            ("numeric  Optimal-MD cvs", numeric_md),
            ("closed-form Optimal-MDC cvs", optimal.cvs_optimal_mdc(n, rounded=False)),
            ("numeric  Optimal-MDC cvs", numeric_mdc),
        ]
    )
    header = f"Table 1 - AVMON variants at N = {n:,}\n"
    return header + table + "\n\nclosed form vs numeric minimiser:\n" + checks


def run(scale: str = "bench", cache=None, n: Optional[int] = None) -> str:
    size = n if n is not None else PAPER_EXAMPLE_N
    return render(compute(size), size)
