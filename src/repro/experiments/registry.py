"""Experiment registry: every paper artifact by id.

Maps experiment ids (``fig3`` … ``fig20``, ``table1``, ``ext_baselines``)
to the callable that regenerates the corresponding table or figure series.
Each experiment is also registered under the ``"experiment"`` kind of the
component registry, so unknown ids raise the same
:class:`~repro.registry.UnknownComponentError` (listing the alternatives)
as any other component lookup, and third parties can plug in artifacts of
their own.

Used by the CLI and by the per-artifact benchmarks.  Experiments whose
runner accepts a ``jobs`` parameter (the N-sweep figures) fan their base
simulations out over a process pool via the orchestrator.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..registry import REGISTRY, resolve
from . import (
    apps_workloads,
    ext_baselines,
    fig03_discovery,
    fig04_05_cdf,
    fig06_l_monitors,
    fig07_08_computation,
    fig09_10_memory,
    fig11_12_cvs_sweep,
    fig13_14_traces,
    fig15_16_high_churn,
    fig17_18_forgetful,
    fig19_bandwidth,
    fig20_overreport,
    table1,
)
from .cache import SimulationCache

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    id: str
    title: str
    runner: Callable[..., str]

    @property
    def supports_jobs(self) -> bool:
        """Whether the runner can fan out over a multiprocessing pool."""
        return "jobs" in inspect.signature(self.runner).parameters

    def run(
        self,
        scale: str = "bench",
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
    ) -> str:
        if self.supports_jobs:
            return self.runner(scale, cache, jobs=jobs)
        return self.runner(scale, cache)


EXPERIMENTS: Dict[str, Experiment] = {
    exp.id: exp
    for exp in (
        Experiment("table1", "Complexity of Broadcast vs AVMON variants", table1.run),
        Experiment("fig3", "Average first-monitor discovery time vs N", fig03_discovery.run),
        Experiment("fig4", "Discovery-time CDF, STAT", fig04_05_cdf.run_fig4),
        Experiment("fig5", "Discovery-time CDF, SYNTH-BD", fig04_05_cdf.run_fig5),
        Experiment("fig6", "Time to first L monitors", fig06_l_monitors.run),
        Experiment("fig7", "Computations per second vs N", fig07_08_computation.run_fig7),
        Experiment("fig8", "CDF of computations per second", fig07_08_computation.run_fig8),
        Experiment("fig9", "Memory entries vs N", fig09_10_memory.run_fig9),
        Experiment("fig10", "CDF of memory entries", fig09_10_memory.run_fig10),
        Experiment("fig11", "Discovery time vs coarse-view size", fig11_12_cvs_sweep.run),
        Experiment("fig12", "Memory and computation vs coarse-view size", fig11_12_cvs_sweep.run),
        Experiment("fig13", "Discovery-time CDF, PL and OV traces", fig13_14_traces.run_fig13),
        Experiment("fig14", "Memory CDF, PL and OV traces", fig13_14_traces.run_fig14),
        Experiment("fig15", "Discovery CDF under doubled birth/death", fig15_16_high_churn.run_fig15),
        Experiment("fig16", "Memory under doubled birth/death", fig15_16_high_churn.run_fig16),
        Experiment("fig17", "Forgetful pinging: estimation accuracy", fig17_18_forgetful.run_fig17),
        Experiment("fig18", "Forgetful pinging: useless pings saved", fig17_18_forgetful.run_fig18),
        Experiment("fig19", "Outgoing-bandwidth CDF (STAT, STAT-PR2, OV)", fig19_bandwidth.run),
        Experiment("fig20", "Overreporting attack resilience", fig20_overreport.run),
        Experiment("ext_baselines", "Baselines vs AVMON (extension)", ext_baselines.run),
        Experiment(
            "app_query",
            "Application: availability queries via verified monitors (§3.3)",
            apps_workloads.run_query,
        ),
        Experiment(
            "app_replication",
            "Application: availability-aware replica placement",
            apps_workloads.run_replication,
        ),
        Experiment(
            "app_prediction",
            "Application: availability prediction from histories",
            apps_workloads.run_prediction,
        ),
    )
}

for _experiment in EXPERIMENTS.values():
    if not REGISTRY.is_registered("experiment", _experiment.id):
        REGISTRY.register("experiment", _experiment.id, _experiment)
del _experiment


def experiment_ids() -> tuple:
    return tuple(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    """Run one artifact by id (raises UnknownComponentError when unknown)."""
    experiment = resolve("experiment", experiment_id)
    return experiment.run(scale, cache, jobs=jobs)
