"""Figures 11 and 12: the effect of varying the coarse-view size.

On the STAT model (isolating cvs from churn), cvs is swept over
``{4, 6, 8, 10} · N^{1/4}``.  Figure 11: average discovery time (±1 σ) falls
with cvs and shows a knee around ``8·N^{1/4}``, beyond which extra view
entries buy little.  Figure 12: memory grows linearly with cvs and
computations quadratically, independent of N — so cvs should be set at the
knee of Figure 11's curve.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.config import AvmonConfig
from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_table
from .scenarios import n_values, scenario

__all__ = ["MULTIPLIERS", "compute", "render", "run"]

#: The paper's sweep: cvs = multiplier * N^(1/4).
MULTIPLIERS = (4, 6, 8, 10)


def compute(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> List[Tuple[int, int, int, float, float, float, float]]:
    """Rows of (N, multiplier, cvs, avg disc s, std disc, avg mem, comps/s)."""
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    selected = sweep[-2:] if len(sweep) >= 2 else sweep
    rows = []
    for n in selected:
        for multiplier in MULTIPLIERS:
            cvs = max(1, round(multiplier * n ** 0.25))
            avmon = AvmonConfig.paper_defaults(n, cvs=cvs)
            result = cache.get(scenario("STAT", n, scale, avmon=avmon))
            delays = result.first_monitor_delays()
            memory = result.memory_values(control_only=True)
            comps = result.computation_rates(control_only=True)
            rows.append(
                (
                    n,
                    multiplier,
                    cvs,
                    stats.mean(delays),
                    stats.std(delays),
                    stats.mean(memory),
                    stats.mean(comps),
                )
            )
    return rows


def render(rows) -> str:
    header = (
        "Figures 11 & 12 - varying coarse view size (STAT model)\n"
        "paper fig 11: discovery time decreases with cvs, knee at 8*N^(1/4)\n"
        "paper fig 12: memory linear in cvs, computations quadratic,\n"
        "independent of N\n"
    )
    return header + format_table(
        (
            "N",
            "mult",
            "cvs",
            "avg discovery (s)",
            "std (s)",
            "avg memory entries",
            "avg comps/s",
        ),
        rows,
    )


def run(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    return render(compute(scale, cache))
