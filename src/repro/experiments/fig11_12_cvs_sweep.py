"""Figures 11 and 12: the effect of varying the coarse-view size.

On the STAT model (isolating cvs from churn), cvs is swept over
``{4, 6, 8, 10} · N^{1/4}``.  Figure 11: average discovery time (±1 σ) falls
with cvs and shows a knee around ``8·N^{1/4}``, beyond which extra view
entries buy little.  Figure 12: memory grows linearly with cvs and
computations quadratically, independent of N — so cvs should be set at the
knee of Figure 11's curve.

The sweep is expressed as a declarative scenario grid over ``avmon``
overrides (one cvs per multiplier) and executed through
:meth:`SimulationCache.prime`, so it fans out over worker processes with
``jobs > 1`` and resumes from a disk-backed store exactly like the other
N-sweep figures — and it consumes flat summaries only, never pinning full
results (live cluster + network graph) in the shared cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_table
from .runner import SimulationConfig
from .scenarios import n_values

__all__ = ["MULTIPLIERS", "compute", "render", "run", "sweep_configs"]

#: The paper's sweep: cvs = multiplier * N^(1/4).
MULTIPLIERS = (4, 6, 8, 10)


def sweep_configs(scale: str = "bench") -> List[Tuple[int, int, SimulationConfig]]:
    """The (N, multiplier, config) grid behind Figures 11 and 12.

    Built from :class:`~repro.api.Scenario` cells expanded over an
    ``avmon`` override grid (cvs per multiplier), keeping every cell fully
    declarative; the largest two N values stand in for the paper's pair.
    """
    from ..api import Scenario, expand_grid  # local: avoid import cycle at load

    sweep = n_values(scale)
    selected = sweep[-2:] if len(sweep) >= 2 else sweep
    cells: List[Tuple[int, int, SimulationConfig]] = []
    for n in selected:
        base = Scenario(model="STAT", n=n, scale=scale)
        grid = {
            "avmon": [
                {"cvs": max(1, round(multiplier * n ** 0.25))}
                for multiplier in MULTIPLIERS
            ]
        }
        for multiplier, cell in zip(MULTIPLIERS, expand_grid(base, grid)):
            cells.append((n, multiplier, cell.to_config()))
    return cells


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[int, int, int, float, float, float, float]]:
    """Rows of (N, multiplier, cvs, avg disc s, std disc, avg mem, comps/s).

    With ``jobs > 1`` the grid's cells fan out over a process pool through
    the orchestrator before the rows are assembled from their summaries.
    """
    cache = cache if cache is not None else default_cache()
    cells = sweep_configs(scale)
    cache.prime([config for _, _, config in cells], jobs=jobs)
    rows = []
    for n, multiplier, config in cells:
        summary = cache.get_summary(config)
        delays = summary.first_monitor_delays()
        memory = summary.memory_values(control_only=True)
        comps = summary.computation_rates(control_only=True)
        rows.append(
            (
                n,
                multiplier,
                config.resolved_avmon().cvs,
                stats.mean(delays),
                stats.std(delays),
                stats.mean(memory),
                stats.mean(comps),
            )
        )
    return rows


def render(rows) -> str:
    header = (
        "Figures 11 & 12 - varying coarse view size (STAT model)\n"
        "paper fig 11: discovery time decreases with cvs, knee at 8*N^(1/4)\n"
        "paper fig 12: memory linear in cvs, computations quadratic,\n"
        "independent of N\n"
    )
    return header + format_table(
        (
            "N",
            "mult",
            "cvs",
            "avg discovery (s)",
            "std (s)",
            "avg memory entries",
            "avg comps/s",
        ),
        rows,
    )


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return render(compute(scale, cache, jobs))
