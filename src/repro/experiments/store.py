"""Disk-backed summary store: content-addressed, resumable across processes.

The in-process :class:`~repro.experiments.cache.SimulationCache` dies with
its process; every CLI invocation of ``avmon run``/``avmon sweep`` used to
recompute the same base simulations from scratch.  :class:`SummaryStore`
persists each :class:`~repro.experiments.summary.SimulationSummary` as one
JSON file whose name is a stable hash of the run's structural cache key
(:func:`config_key`, also exposed as ``SimulationCache.key_of``), so

* a killed sweep resumed with the same arguments recomputes only the
  missing cells (the orchestrator consults the store before simulating and
  writes back as results arrive), and
* separate processes — workers, repeat CLI invocations, CI jobs — share
  one directory of results, ACME-style: monitoring data collection as a
  resumable, queryable artifact rather than an in-process object graph.

Key stability contract
----------------------

:func:`stable_key_hash` must give the same digest for the same experiment
in every process, forever:

* keys are built exclusively from declared configuration values — public
  latency-model attributes (:func:`latency_key` skips ``_``-prefixed,
  lazily-memoised state), full-precision floats, and the trace *content*
  hash — never from ``repr`` output, ``id()`` addresses or Python's
  per-process-salted ``hash()``;
* the digest is BLAKE2b over a canonical JSON encoding (sorted keys,
  minimal separators), so it is independent of process, platform and
  ``PYTHONHASHSEED``.

Writes are atomic (temp file + ``os.replace``), and a corrupt or truncated
file — e.g. left by a power loss mid-write on a non-atomic filesystem —
loads as a miss with a warning, never a crash: the cell is simply
recomputed and the file rewritten.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings
from typing import Optional, Tuple, Union

from .runner import SimulationConfig
from .store_backends import (
    FilesystemBackend,
    StoreBackend,
    StoreEntry,
    backend_from_spec,
)
from .summary import SimulationSummary

__all__ = [
    "SummaryStore",
    "config_key",
    "latency_key",
    "stable_key_hash",
    "store_filename",
]


def latency_key(latency) -> Optional[Tuple]:
    """Structural key for a pluggable latency model.

    Keyed on the type name plus the *public* declared attributes in sorted
    order.  ``_``-prefixed attributes are skipped: they are lazy memoisation
    state (an attribute set on first ``sample()`` call would flip the key of
    an otherwise identical model, turning cache hits into misses).  Reprs
    are never used — ``LogNormalLatency`` rounds its parameters and the
    default ``object.__repr__`` embeds a process-local address, so repr keys
    either collide or never match across processes.

    Models without a ``__dict__`` (``__slots__`` classes, C extension
    types) fall back to a deterministic type-name-only key and a loud
    warning: distinct parameterisations of such a type would share one
    cache entry, which callers should know about.
    """
    if latency is None:
        return None
    try:
        attributes = vars(latency)
    except TypeError:  # __slots__ or C types: no __dict__ to inspect
        warnings.warn(
            f"latency model {type(latency).__name__} has no __dict__; "
            f"its cache key falls back to the type name alone, so distinct "
            f"parameterisations of this type will share a cache entry. "
            f"Give the class a __dict__ (or register parameters as public "
            f"attributes) to make runs with it cacheable by content.",
            RuntimeWarning,
            stacklevel=2,
        )
        return (type(latency).__name__,)
    public = tuple(
        sorted(
            (name, value)
            for name, value in attributes.items()
            if not name.startswith("_")
        )
    )
    return (type(latency).__name__, public)


def config_key(config: SimulationConfig) -> Tuple:
    """The structural identity of one simulation run.

    Two configs with equal keys produce byte-identical summaries (the
    simulator's randomness derives only from the seed), so the key is safe
    to use for both in-memory memoisation and the on-disk store.  Traces
    are fingerprinted by *content* hash — shallow shapes like
    ``(len, duration)`` collide for traces generated from different seeds.
    """
    avmon = config.resolved_avmon()
    trace_fingerprint = None
    if config.trace is not None:
        trace_fingerprint = config.trace.content_hash()
    key = (
        config.model_key,
        config.n,
        config.duration,
        config.warmup,
        config.control_fraction,
        config.seed,
        config.churn_per_hour,
        config.birth_death_per_day,
        config.overreport_fraction,
        config.latency_low,
        config.latency_high,
        latency_key(config.latency),
        config.sample_interval,
        trace_fingerprint,
        (
            avmon.n_expected,
            avmon.k,
            avmon.cvs,
            avmon.protocol_period,
            avmon.monitoring_period,
            avmon.forgetful_tau,
            avmon.forgetful_c,
            avmon.enable_forgetful,
            avmon.enable_pr2,
            avmon.ping_timeout,
            avmon.entry_bytes,
            avmon.hash_algorithm,
        ),
    )
    if config.fault is not None and not config.fault.is_null():
        # Appended only for faulty runs: every fault-free cell already on
        # disk keeps its address (see the key-stability contract above).
        key = key + (config.fault.key(),)
    return key


def _canonical(value):
    """Reduce a key to JSON-encodable primitives, preserving distinctions.

    Tuples become lists (JSON has no tuple); scalars pass through.  Booleans
    and integers stay distinct (``true`` vs ``1``), as do ints and floats
    (``1`` vs ``1.0``) — ``json.dumps`` renders each unambiguously.
    """
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"cache key contains a non-serialisable value of type "
        f"{type(value).__name__}: {value!r}"
    )


def stable_key_hash(key: Tuple) -> str:
    """Process-independent hex digest of a structural cache key.

    Canonical JSON (sorted keys, minimal separators) hashed with BLAKE2b;
    never Python's builtin ``hash()``, which is salted per process for
    strings.  Float encoding relies on ``repr``'s shortest-round-trip
    guarantee, identical across conforming CPython builds.
    """
    import hashlib

    text = json.dumps(_canonical(key), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def store_filename(config: SimulationConfig) -> str:
    """The store-relative filename for one config's summary."""
    return f"{stable_key_hash(config_key(config))}.json"


class SummaryStore:
    """Content-addressed collection of serialised simulation summaries.

    One JSON object per distinct :func:`config_key`; object names are
    :func:`stable_key_hash` digests, so any process pointed at the same
    backend resolves the same experiments to the same objects.  Instances
    track ``hits`` / ``misses`` / ``writes`` so orchestration layers can
    report how much of a sweep was resumed versus recomputed.

    The store owns addressing and the summary codec; *where* the bytes
    live is a pluggable :class:`~repro.experiments.store_backends.
    StoreBackend`.  ``SummaryStore(directory)`` keeps the original local
    layout (a :class:`FilesystemBackend`); ``SummaryStore.open(spec)``
    also accepts an ``http://host:port`` URL and attaches to a shared
    ``avmon store serve`` daemon, so a worker fleet — and multiple serve
    front ends — read-through/write-through one cache.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike, None] = None,
        *,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if backend is None:
            if root is None:
                raise ValueError("SummaryStore needs a root directory or a backend")
            backend = FilesystemBackend(root)
        elif root is not None:
            raise ValueError("pass either a root directory or a backend, not both")
        self.backend = backend
        self.hits = 0
        self.misses = 0
        self.writes = 0

    @classmethod
    def open(cls, spec: Union[str, os.PathLike]) -> "SummaryStore":
        """A store for *spec*: a local directory or an ``http://`` URL."""
        return cls(backend=backend_from_spec(spec))

    @property
    def root(self):
        """Where the store lives: a directory path or the shared-store URL."""
        backend = self.backend
        if isinstance(backend, FilesystemBackend):
            return backend.root
        return backend.describe()

    # -- addressing --------------------------------------------------------

    @staticmethod
    def name_for(key: Tuple) -> str:
        """The flat object name one structural key addresses."""
        return f"{stable_key_hash(key)}.json"

    def path_for(self, key: Tuple):
        """Where *key*'s summary lives (a path, or a URL for shared stores)."""
        return self.backend.location(self.name_for(key))

    def path_for_config(self, config: SimulationConfig):
        return self.path_for(config_key(config))

    # -- persistence -------------------------------------------------------

    def load(self, key: Tuple) -> Optional[SimulationSummary]:
        """The stored summary for *key*, or None (missing or corrupt).

        A file that cannot be read or parsed — truncated by a crash,
        damaged on disk, or written by an incompatible version — is
        reported with a warning and treated as a miss: the caller
        recomputes the cell and :meth:`save` overwrites the bad file.
        """
        path = self.path_for(key)
        try:
            text = self.backend.get(self.name_for(key))
        except OSError as error:
            warnings.warn(
                f"unreadable summary entry {path} ({error}); recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        if text is None:
            self.misses += 1
            return None
        try:
            summary = SimulationSummary.from_json(text)
        except (
            json.JSONDecodeError,
            AttributeError,
            TypeError,
            ValueError,
            KeyError,
        ) as error:
            warnings.warn(
                f"corrupt summary file {path} ({error.__class__.__name__}: "
                f"{error}); recomputing",
                RuntimeWarning,
                stacklevel=2,
            )
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def save(self, key: Tuple, summary: SimulationSummary):
        """Persist *summary* under *key*'s content address.

        The filesystem backend writes to a temp file + ``os.replace``, so
        concurrent readers (parallel sweeps sharing one store) never
        observe a partial file; the shared backend PUTs to the daemon,
        which does the same on its own disk.

        The store is a best-effort cache on the write side too: a failed
        write (disk full, store daemon down) is warned about and returns
        None rather than raising — the caller already holds the computed
        summary, and aborting a sweep to report an unsaveable by-product
        would discard finished work.

        Returns the entry's location (a path, or a URL for shared stores).
        """
        name = self.name_for(key)
        try:
            self.backend.put(name, summary.to_json())
        except OSError as error:
            warnings.warn(
                f"failed to persist summary to {self.backend.location(name)} "
                f"({error}); continuing without the cache write",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.writes += 1
        return self.backend.location(name)

    # -- introspection -----------------------------------------------------

    def __contains__(self, key: Tuple) -> bool:
        return self.backend.exists(self.name_for(key))

    def __len__(self) -> int:
        return len(self.backend.entries())

    def entries(self) -> Tuple[StoreEntry, ...]:
        """Every stored object (name + size), sorted by name."""
        return self.backend.entries()

    def paths(self) -> Tuple:
        """Every stored entry's location, sorted (``avmon cache ls``)."""
        return tuple(
            self.backend.location(entry.name) for entry in self.backend.entries()
        )

    def read_entry(self, name: str) -> Optional[SimulationSummary]:
        """Parse one stored object by name; None (no warning, no counter)
        when unreadable or corrupt.

        The inspection-side sibling of :meth:`load`: ``avmon cache ls``
        walks the backend's listing without knowing the structural keys
        that produced the names.
        """
        try:
            text = self.backend.get(name)
        except OSError:
            return None
        if text is None:
            return None
        return self._parse(text)

    def read_file(self, path: Union[str, os.PathLike]) -> Optional[SimulationSummary]:
        """Parse one store file by filesystem path (legacy inspection API)."""
        try:
            text = pathlib.Path(path).read_text(encoding="utf-8")
        except OSError:
            return None
        return self._parse(text)

    @staticmethod
    def _parse(text: str) -> Optional[SimulationSummary]:
        try:
            return SimulationSummary.from_json(text)
        except (
            json.JSONDecodeError,
            AttributeError,
            TypeError,
            ValueError,
            KeyError,
        ):
            return None

    def clear(self) -> int:
        """Delete every entry; returns how many objects were removed.

        An entry that cannot be deleted (permissions, store daemon down)
        raises — claiming a clear succeeded while objects remain would be
        worse than failing.
        """
        return self.backend.clear()

    def spec(self) -> str:
        """The picklable string that reopens this store (path or URL).

        What the worker fleet ships to its processes: each worker calls
        :meth:`open` on the spec and attaches to the same cache.
        """
        return self.backend.spec()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SummaryStore({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, writes={self.writes})"
        )
