"""Soft-state sweep coordination for the store daemon.

Two small in-memory structures turn ``avmon store serve`` into a
multi-host sweep coordinator, following the same at-least-once,
lease-based design the worker fleet already uses locally (and the
unreliable-failure-detector stance the paper borrows from Duarte et
al.): suspicion after a missed deadline is enough, late completions are
ignored as duplicates, and losing the daemon loses only soft state —
every durable result lives in the content-addressed store.

:class:`TaskBoard`
    A lease queue of sweep cells.  Parents publish tasks; any worker on
    any host claims one, heartbeats while computing, and reports done or
    failed.  A claimed task whose beats stop past its lease TTL is
    expired back onto the queue (the parent decides whether to retry).
    Every transition is appended to a bounded event log that parents
    drain by cursor — the remote transport's equivalent of the local
    fleet's result queue.

:class:`CellClaims`
    TTL ownership registry keyed by a cell's store address (its object
    name), so two parents sweeping the same grid through one daemon
    never compute the same cell: the claim winner publishes the task,
    the loser watches the store for the result.  A parent that dies
    simply stops renewing; its claims expire and a surviving parent
    takes the cells over.

Both take an injectable clock for deterministic tests.  Neither touches
disk: the board and claims are exactly as durable as the daemon, which
is the right durability — a restarted daemon means parents re-claim and
republish, and already-persisted cells are store hits.
"""

from __future__ import annotations

import collections
import time
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Task", "TaskBoard", "CellClaims"]

#: Task lifecycle states.
QUEUED = "queued"
LEASED = "leased"
EXPIRED = "expired"  #: lease lapsed; waits for the parent to republish
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Event-log ceiling: old events fall off the front; a parent that
#: drains slower than this window loses events and must resync from the
#: store (which holds the durable truth anyway).
MAX_EVENTS = 10_000


@dataclass
class Task:
    """One published sweep cell on the board."""

    id: str
    payload: str  #: opaque to the daemon (base64-pickled config)
    key: str = ""  #: the cell's store object name ("" = unkeyed)
    lease_ttl: float = 30.0
    attempt: int = 1
    state: str = QUEUED
    worker: str = ""
    lease_deadline: float = 0.0
    result: Optional[dict] = None

    def public(self, *, with_payload: bool = False) -> dict:
        view = {
            "id": self.id,
            "key": self.key,
            "attempt": self.attempt,
            "state": self.state,
            "worker": self.worker,
            "lease_ttl": self.lease_ttl,
        }
        if with_payload:
            view["payload"] = self.payload
        return view


@dataclass
class _Event:
    seq: int
    kind: str  #: claimed | done | failed | expired | cancelled
    task_id: str
    fields: dict = field(default_factory=dict)

    def public(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, "task": self.task_id,
                **self.fields}


class TaskBoard:
    """Lease queue + event log behind the daemon's ``/tasks`` routes."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._tasks: Dict[str, Task] = {}
        self._queue: Deque[str] = collections.deque()
        self._events: Deque[_Event] = collections.deque(maxlen=MAX_EVENTS)
        self._next_seq = 0

    # -- internals ---------------------------------------------------------

    def _emit(self, kind: str, task: Task, **fields) -> None:
        self._next_seq += 1
        self._events.append(
            _Event(self._next_seq, kind, task.id,
                   {"key": task.key, "attempt": task.attempt,
                    "worker": task.worker, **fields})
        )

    def expire(self) -> int:
        """Lazily expire leases past their deadline (called per request)."""
        now = self._clock()
        expired = 0
        for task in self._tasks.values():
            if task.state == LEASED and now > task.lease_deadline:
                # Not auto-requeued: the publishing parent sees the
                # ``expired`` event and owns the retry/backoff decision,
                # exactly like the local fleet orchestrator.
                task.state = EXPIRED
                self._emit("expired", task)
                expired += 1
        return expired

    # -- parent side -------------------------------------------------------

    def publish(self, task_id: str, payload: str, *, key: str = "",
                lease_ttl: float = 30.0, attempt: int = 1) -> Task:
        """Enqueue a task (idempotent: republishing an id re-queues it)."""
        task = self._tasks.get(task_id)
        if task is None:
            task = Task(task_id, payload, key=key, lease_ttl=lease_ttl,
                        attempt=attempt)
            self._tasks[task_id] = task
        else:
            task.payload = payload
            task.lease_ttl = lease_ttl
            task.attempt = attempt
            task.state = QUEUED
            task.worker = ""
        if task_id not in self._queue:
            self._queue.append(task_id)
        return task

    def cancel(self, task_id: str) -> bool:
        task = self._tasks.get(task_id)
        if task is None or task.state in (DONE, FAILED, CANCELLED):
            return False
        task.state = CANCELLED
        self._emit("cancelled", task)
        return True

    def cancel_for_key(self, key: str) -> int:
        """Withdraw every live task for a cell (a parent took the claim
        over from a dead one; the dead parent's tasks must not race it)."""
        cancelled = 0
        if not key:
            return 0
        for task in self._tasks.values():
            if task.key == key and task.state in (QUEUED, LEASED):
                task.state = CANCELLED
                self._emit("cancelled", task)
                cancelled += 1
        return cancelled

    def events_since(self, cursor: int, *, prefix: str = "") -> Tuple[int, List[dict]]:
        """Events after *cursor*, optionally filtered to task-id prefix."""
        self.expire()
        out = [
            event.public()
            for event in self._events
            if event.seq > cursor
            and (not prefix or event.task_id.startswith(prefix))
        ]
        return self._next_seq, out

    # -- worker side -------------------------------------------------------

    def claim(self, worker: str) -> Optional[Task]:
        """Lease the oldest queued task to *worker* (None = board idle)."""
        self.expire()
        while self._queue:
            task_id = self._queue.popleft()
            task = self._tasks.get(task_id)
            if task is None or task.state != QUEUED:
                continue
            task.state = LEASED
            task.worker = worker
            task.lease_deadline = self._clock() + task.lease_ttl
            self._emit("claimed", task)
            return task
        return None

    def beat(self, task_id: str, worker: str) -> bool:
        """Extend the lease; False = lease lost (stop working on it)."""
        self.expire()
        task = self._tasks.get(task_id)
        if task is None or task.state != LEASED or task.worker != worker:
            return False
        task.lease_deadline = self._clock() + task.lease_ttl
        return True

    def done(self, task_id: str, worker: str, result: Optional[dict] = None) -> bool:
        """Report completion; False = the report cannot be accepted.

        A straggler whose lease expired but who finished anyway is still
        accepted (at-least-once: the parent dedups by cell index, and
        the store write is idempotent) — only a report from the *wrong*
        worker on a live lease, or on a settled task, is refused.
        """
        self.expire()
        task = self._tasks.get(task_id)
        if task is None or task.state not in (LEASED, EXPIRED, QUEUED):
            return False
        if task.state == LEASED and task.worker != worker:
            return False
        task.state = DONE
        task.worker = worker
        task.result = result
        self._emit("done", task, **(result or {}))
        return True

    def failed(self, task_id: str, worker: str, error: str = "") -> bool:
        self.expire()
        task = self._tasks.get(task_id)
        if task is None or task.state not in (LEASED, EXPIRED, QUEUED):
            return False
        if task.state == LEASED and task.worker != worker:
            return False
        task.state = FAILED
        task.worker = worker
        task.result = {"error": error}
        self._emit("failed", task, error=error)
        return True

    # -- inspection --------------------------------------------------------

    def tasks(self) -> List[dict]:
        self.expire()
        return [self._tasks[tid].public() for tid in sorted(self._tasks)]

    def stats(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for task in self._tasks.values():
            counts[task.state] = counts.get(task.state, 0) + 1
        return counts


@dataclass
class _Claim:
    owner: str
    deadline: float


class CellClaims:
    """TTL ownership of cells, keyed by store object name."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._claims: Dict[str, _Claim] = {}
        #: key -> owner whose claim lapsed there (consumed on re-claim,
        #: so the daemon can tell a takeover from a fresh claim).
        self._expired_owner: Dict[str, str] = {}
        #: How often an expiry has been observed (scraped as a counter).
        self.expired_total = 0

    def _live(self, key: str) -> Optional[_Claim]:
        claim = self._claims.get(key)
        if claim is None:
            return None
        if self._clock() > claim.deadline:
            del self._claims[key]
            self._expired_owner[key] = claim.owner
            self.expired_total += 1
            return None
        return claim

    def take_expired_owner(self, key: str) -> str:
        """The owner whose claim on *key* lapsed, consumed ("" = none)."""
        self._live(key)  # fold in a just-now expiry
        return self._expired_owner.pop(key, "")

    def claim(self, key: str, owner: str, ttl: float) -> Tuple[bool, str]:
        """Try to own *key*; returns ``(granted, current_owner)``.

        Re-claiming a key you already own renews it (idempotent).
        """
        current = self._live(key)
        if current is not None and current.owner != owner:
            return False, current.owner
        self._claims[key] = _Claim(owner, self._clock() + ttl)
        return True, owner

    def renew(self, keys: List[str], owner: str, ttl: float) -> List[str]:
        """Extend every still-owned key; returns the keys actually renewed."""
        renewed = []
        deadline = self._clock() + ttl
        for key in keys:
            current = self._live(key)
            if current is not None and current.owner == owner:
                current.deadline = deadline
                renewed.append(key)
        return renewed

    def release(self, key: str, owner: str) -> bool:
        current = self._live(key)
        if current is None or current.owner != owner:
            return False
        del self._claims[key]
        return True

    def owner_of(self, key: str) -> str:
        current = self._live(key)
        return current.owner if current else ""

    def claims(self) -> List[dict]:
        now = self._clock()
        out = []
        for key in sorted(self._claims):
            claim = self._live(key)  # folds just-lapsed claims into expiry
            if claim is not None:
                out.append(
                    {"key": key, "owner": claim.owner,
                     "ttl_left": round(claim.deadline - now, 3)}
                )
        return out
