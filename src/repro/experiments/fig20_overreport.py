"""Figure 20: resilience to the overreporting attack.

A fraction of nodes (x-axis, 0–0.2) report 100 % availability for every
node in their TS.  Because monitors are selected uniformly at random and
availability is averaged over each node's (verified) PS, only nodes whose
PS happens to contain many colluders are distorted.  The paper: the
fraction of nodes whose measured availability is off by more than 0.2 stays
very small — at most 3.5 % in the worst case across SYNTH, SYNTH-BD, PL
and OV.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .cache import SimulationCache, default_cache
from .report import format_table
from .scenarios import n_values, overnet_scenario, planetlab_scenario, scenario

__all__ = ["FRACTIONS", "compute", "render", "run"]

#: Overreporting fractions swept on the x-axis.
FRACTIONS = (0.0, 0.1, 0.2)

#: Churn settings exercised (the paper's four lines).
SYSTEMS = ("SYNTH", "SYNTH-BD", "PL", "OV")


def _config(system: str, scale: str, fraction: float):
    if system == "PL":
        config = planetlab_scenario(scale, overreport_fraction=fraction)
    elif system == "OV":
        config = overnet_scenario(scale, overreport_fraction=fraction)
    else:
        # A mid-size N keeps the 12-run sweep affordable.
        sweep = n_values(scale)
        n = sweep[len(sweep) // 2]
        config = scenario(system, n, scale, overreport_fraction=fraction)
    config.label = f"{system}-overreport-{fraction}"
    return config


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, float, float, int]]:
    """Rows of (system, overreport fraction, fraction affected, audited)."""
    cache = cache if cache is not None else default_cache()
    cells = [
        (system, fraction, _config(system, scale, fraction))
        for system in SYSTEMS
        for fraction in FRACTIONS
    ]
    cache.prime([config for _, _, config in cells], jobs=jobs)
    rows = []
    for system, fraction, config in cells:
        summary = cache.get_summary(config)
        affected = summary.fraction_affected(threshold=0.2)
        rows.append((system, fraction, affected, len(summary.availability_alive)))
    return rows


def render(rows) -> str:
    header = (
        "Figure 20 - overreporting attack: fraction of nodes whose measured\n"
        "availability is off by more than 0.2\n"
        "paper: at most 3.5% of nodes affected in the worst case\n"
    )
    return header + format_table(
        ("system", "overreporting fraction", "fraction affected", "nodes audited"),
        rows,
    )


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return render(compute(scale, cache, jobs))
