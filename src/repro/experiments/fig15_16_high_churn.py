"""Figures 15 and 16: resistance to very high birth/death churn.

SYNTH-BD2 doubles SYNTH-BD's birth and death rates (0.4·N per day).  The
paper finds no noticeable difference in first-monitor discovery CDFs
(Figure 15) and under 10 % additional memory entries (Figure 16) — AVMON's
discovery is churn-resistant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig15", "compute_fig16", "run_fig15", "run_fig16", "run"]

_MODELS = ("SYNTH-BD", "SYNTH-BD2")


def compute_fig15(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[str, dict]:
    cache = cache if cache is not None else default_cache()
    n = n_values(scale)[-1]
    configs = {model: scenario(model, n, scale) for model in _MODELS}
    cache.prime(configs.values(), jobs=jobs)
    out = {}
    for model, config in configs.items():
        summary = cache.get_summary(config)
        delays = summary.first_monitor_delays()
        out[model] = {
            "n": n,
            "n_longterm": summary.n_longterm,
            "cdf": stats.cdf_points(delays),
            "within_60s": stats.fraction_below(delays, 60.0),
            "mean": stats.mean(delays),
        }
    return out


def compute_fig16(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, float, float]]:
    """Rows of (model, N, avg memory entries, std)."""
    cache = cache if cache is not None else default_cache()
    configs = [
        (model, n, scenario(model, n, scale))
        for model in _MODELS
        for n in n_values(scale)
    ]
    cache.prime([config for _, _, config in configs], jobs=jobs)
    rows = []
    for model, n, config in configs:
        values = cache.get_summary(config).memory_values(control_only=True)
        rows.append((model, n, stats.mean(values), stats.std(values)))
    return rows


def run_fig15(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    data = compute_fig15(scale, cache, jobs)
    lines = [
        "Figure 15 - discovery-time CDFs under doubled birth/death churn",
        "paper: no noticeable difference between SYNTH-BD and SYNTH-BD2",
        "",
        format_table(
            ("model", "N", "N_longterm", "mean discovery (s)", "frac <= 60 s"),
            [
                (model, info["n"], info["n_longterm"], info["mean"], info["within_60s"])
                for model, info in sorted(data.items())
            ],
        ),
    ]
    for model, info in sorted(data.items()):
        lines.append("")
        lines.append(f"{model} CDF:")
        lines.append(format_cdf(info["cdf"], value_label="discovery (s)"))
    return "\n".join(lines)


def run_fig16(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    rows = compute_fig16(scale, cache, jobs)
    by_key = {(model, n): avg for model, n, avg, _ in rows}
    increases = []
    for model, n, avg, _ in rows:
        if model == "SYNTH-BD2":
            base = by_key.get(("SYNTH-BD", n))
            if base:
                increases.append((n, (avg - base) / base))
    header = (
        "Figure 16 - average memory entries, SYNTH-BD vs SYNTH-BD2\n"
        "paper: doubled churn adds less than 10% extra memory entries\n"
    )
    table = format_table(("model", "N", "avg entries", "std"), rows)
    extra = format_table(("N", "relative increase BD2 vs BD"), increases)
    return header + table + "\n\n" + extra


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return run_fig15(scale, cache, jobs) + "\n\n" + run_fig16(scale, cache, jobs)
