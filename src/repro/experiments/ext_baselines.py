"""Extension experiment: put numbers on the baseline critiques of Section 1.

Not a paper figure, but a direct quantification of the qualitative
arguments AVMON's introduction makes against the alternatives:

* **DHT-based selection** violates consistency — every churn event reshapes
  nearby replica sets — and randomness (3b): ring-adjacent monitors co-occur
  in many pinging sets.  AVMON's hash-based selection has *zero* churn
  disruption by construction.
* **Broadcast** ([11]) discovers instantly but pays O(N) messages per join
  versus AVMON's O(cvs) per period.
* **Central** concentrates the entire monitoring load on one host.
* **Self-reporting** lets selfish nodes claim arbitrary availability.
"""

from __future__ import annotations

import random
from typing import Optional

from ..baselines.central import CentralMonitorScheme
from ..baselines.dht import DhtMonitorScheme
from ..baselines.self_report import SelfReportScheme
from ..core.condition import ConsistencyCondition
from ..core.relation import MonitorRelation
from .report import format_kv

__all__ = ["compute", "render", "run"]


def compute(n: int = 300, k: int = 8, churn_events: int = 100, seed: int = 11) -> dict:
    rng = random.Random(seed)
    population = list(range(n))

    # --- DHT: consistency + randomness violations under churn -----------------
    dht = DhtMonitorScheme(k)
    for node in population:
        dht.ring.join(node)
    monitored = population[: n // 2]
    dht.record_baseline(monitored)
    next_id = n
    alive = set(population)
    for _ in range(churn_events):
        if rng.random() < 0.5:
            dht.apply_churn_event(monitored, joined=next_id)
            alive.add(next_id)
            next_id += 1
        else:
            victim = rng.choice(sorted(alive - set(monitored)))
            dht.apply_churn_event(monitored, left=victim)
            alive.discard(victim)
    dht_changes = dht.total_monitor_changes()
    dht_cooccurrence = dht.max_cooccurrence(monitored)

    # --- AVMON: same churn cannot change any PS (consistency by construction) --
    condition = ConsistencyCondition(k, n)
    relation = MonitorRelation(condition)
    relation.add_nodes(range(next_id))
    before = {node: frozenset(relation.monitors_of(node)) for node in monitored}
    # Births extend the universe; existing membership never flips.
    relation.add_nodes(range(next_id, next_id + churn_events))
    after = {node: frozenset(relation.monitors_of(node)) for node in monitored}
    avmon_removed = sum(
        1 for node in monitored if not before[node] <= after[node]
    )
    avmon_cooccurrence = _max_cooccurrence(relation, monitored)

    # --- Broadcast vs AVMON join cost -------------------------------------------
    from ..core import optimal

    avmon_cvs = optimal.cvs_paper_default(n)
    broadcast_join_messages = n
    avmon_join_messages = avmon_cvs  # JOIN spanning tree reaches ~cvs nodes

    # --- Central load imbalance ---------------------------------------------------
    central = CentralMonitorScheme(server=0)
    load = central.load_report(population)

    # --- Self-reporting: unverifiable lying ----------------------------------------
    scheme = SelfReportScheme()
    actual = {node: rng.uniform(0.2, 0.9) for node in population}
    selfish = set(rng.sample(population, n // 10))
    outcome = scheme.evaluate(actual, selfish)

    return {
        "n": n,
        "k": k,
        "churn_events": churn_events,
        "dht_monitor_set_changes": dht_changes,
        "dht_max_pair_cooccurrence": dht_cooccurrence,
        "avmon_monitor_sets_losing_members": avmon_removed,
        "avmon_max_pair_cooccurrence": avmon_cooccurrence,
        "broadcast_join_messages": broadcast_join_messages,
        "avmon_join_messages": avmon_join_messages,
        "central_load_imbalance": load.load_imbalance(),
        "self_report_undetected_liars": outcome.nodes_with_error_above(0.1),
        "self_report_selfish_count": len(selfish),
    }


def _max_cooccurrence(relation: MonitorRelation, monitored) -> int:
    from collections import defaultdict

    counts = defaultdict(int)
    for node in monitored:
        monitors = sorted(relation.monitors_of(node))
        for i, first in enumerate(monitors):
            for second in monitors[i + 1 :]:
                counts[(first, second)] += 1
    return max(counts.values(), default=0)


def render(data: dict) -> str:
    header = (
        "Extension - baselines vs AVMON "
        f"(N={data['n']}, K={data['k']}, {data['churn_events']} churn events)\n"
    )
    return header + format_kv(
        [
            ("DHT: monitored nodes' PS changes under churn", data["dht_monitor_set_changes"]),
            ("AVMON: PS sets losing a member under churn", data["avmon_monitor_sets_losing_members"]),
            ("DHT: max monitor-pair co-occurrence", data["dht_max_pair_cooccurrence"]),
            ("AVMON: max monitor-pair co-occurrence", data["avmon_max_pair_cooccurrence"]),
            ("Broadcast: messages per join", data["broadcast_join_messages"]),
            ("AVMON: messages per join (JOIN tree)", data["avmon_join_messages"]),
            ("Central: load imbalance (max/mean)", data["central_load_imbalance"]),
            ("Self-report: undetected liars", data["self_report_undetected_liars"]),
            ("Self-report: selfish nodes", data["self_report_selfish_count"]),
        ]
    )


def run(scale: str = "bench", cache=None) -> str:
    n = 300 if scale != "test" else 80
    return render(compute(n=n))
