"""Figures 13 and 14: AVMON under the PlanetLab and Overnet traces.

Trace-replay runs (see DESIGN.md for the synthetic-trace substitution).
Figure 13: CDF of first-monitor discovery time for every node born during
the run — the paper reports 97.27 % of OV nodes and over 98 % of PL nodes
discovering their first monitor within about a minute of birth.  Figure 14:
CDF of per-node memory entries — uniformly distributed, above the
``cvs + 2K`` expectation for OV because of birth/death garbage, with hard
caps the paper quotes (81 entries for OV, 44 for PL).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_cdf, format_kv
from .scenarios import overnet_scenario, planetlab_scenario

__all__ = ["compute", "run_fig13", "run_fig14", "run"]


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[str, dict]:
    cache = cache if cache is not None else default_cache()
    configs = {
        "PL": planetlab_scenario(scale),
        "OV": overnet_scenario(scale),
    }
    cache.prime(configs.values(), jobs=jobs)
    out: Dict[str, dict] = {}
    for label, config in configs.items():
        summary = cache.get_summary(config)
        delays = summary.first_monitor_delays()
        memory = summary.memory_values(control_only=False)
        out[label] = {
            "delays": delays,
            "discovery_cdf": stats.cdf_points(delays),
            "within_63s": stats.fraction_below(delays, 63.0),
            "memory": memory,
            "memory_cdf": stats.cdf_points(memory),
            "max_memory": max(memory) if memory else 0.0,
            "expected_memory": summary.avmon["expected_memory_entries"],
            "n_longterm": summary.n_longterm,
            "final_alive": summary.final_alive,
        }
    return out


def run_fig13(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    data = compute(scale, cache, jobs)
    lines = [
        "Figure 13 - CDF of first-monitor discovery time (PL and OV traces)",
        "paper: 97.27% of OV births and >98% of PL nodes discover their",
        "first monitor within about a minute",
        "",
    ]
    for label, info in sorted(data.items()):
        lines.append(
            format_kv(
                [
                    (f"{label} nodes born", info["n_longterm"]),
                    (f"{label} frac discovered <= 63 s", info["within_63s"]),
                ]
            )
        )
        lines.append(f"{label} discovery CDF:")
        lines.append(format_cdf(info["discovery_cdf"], value_label="discovery (s)"))
        lines.append("")
    return "\n".join(lines).rstrip()


def run_fig14(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    data = compute(scale, cache, jobs)
    lines = [
        "Figure 14 - CDF of per-node memory entries (PL and OV traces)",
        "paper: uniform across nodes; OV above the cvs+2K expectation due",
        "to birth/death garbage; max 81 entries (OV), 44 (PL)",
        "",
    ]
    for label, info in sorted(data.items()):
        lines.append(
            format_kv(
                [
                    (f"{label} expected cvs+2K", info["expected_memory"]),
                    (f"{label} mean entries", stats.mean(info["memory"])),
                    (f"{label} max entries", info["max_memory"]),
                ]
            )
        )
        lines.append(f"{label} memory CDF:")
        lines.append(format_cdf(info["memory_cdf"], value_label="entries"))
        lines.append("")
    return "\n".join(lines).rstrip()


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return run_fig13(scale, cache, jobs) + "\n\n" + run_fig14(scale, cache, jobs)
