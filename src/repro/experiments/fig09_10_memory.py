"""Figures 9 and 10: per-node memory usage (|CV| + |PS| + |TS|).

Figure 9: mean memory entries per node (±1 σ) against N for the three
synthetic models — the paper expects values near ``cvs + 2K``, with churned
models slightly above because of garbage PS/TS entries.  Figure 10: the CDF
across nodes at the extreme Ns, showing memory is minimally influenced by
churn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .fig03_discovery import MODELS
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig9", "compute_fig10", "run_fig9", "run_fig10", "run"]


def compute_fig9(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> List[Tuple[str, int, float, float, float]]:
    """Rows of (model, N, avg entries, std, expected cvs + 2K)."""
    cache = cache if cache is not None else default_cache()
    rows = []
    for model in MODELS:
        for n in n_values(scale):
            result = cache.get(scenario(model, n, scale))
            values = result.memory_values(control_only=True)
            rows.append(
                (
                    model,
                    n,
                    stats.mean(values),
                    stats.std(values),
                    result.avmon_config.expected_memory_entries,
                )
            )
    return rows


def compute_fig10(
    scale: str = "bench", cache: Optional[SimulationCache] = None
) -> Dict[Tuple[str, int], List[Tuple[float, float]]]:
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    out = {}
    for model in MODELS:
        for n in (sweep[0], sweep[-1]):
            result = cache.get(scenario(model, n, scale))
            out[(model, n)] = stats.cdf_points(
                result.memory_values(control_only=True)
            )
    return out


def run_fig9(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    rows = compute_fig9(scale, cache)
    header = (
        "Figure 9 - average memory entries per node (|PS| + |TS| + |CV|)\n"
        "paper: close to the expected cvs + 2K; churned models slightly\n"
        "above due to garbage PS/TS entries\n"
    )
    return header + format_table(
        ("model", "N", "avg entries", "std", "expected cvs+2K"), rows
    )


def run_fig10(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    data = compute_fig10(scale, cache)
    lines = ["Figure 10 - CDF of per-node memory entries"]
    for (model, n), points in sorted(data.items()):
        lines.append("")
        lines.append(f"{model}, N = {n}:")
        lines.append(format_cdf(points, value_label="memory entries"))
    return "\n".join(lines)


def run(scale: str = "bench", cache: Optional[SimulationCache] = None) -> str:
    return run_fig9(scale, cache) + "\n\n" + run_fig10(scale, cache)
