"""Figures 9 and 10: per-node memory usage (|CV| + |PS| + |TS|).

Figure 9: mean memory entries per node (±1 σ) against N for the three
synthetic models — the paper expects values near ``cvs + 2K``, with churned
models slightly above because of garbage PS/TS entries.  Figure 10: the CDF
across nodes at the extreme Ns, showing memory is minimally influenced by
churn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .fig03_discovery import MODELS
from .report import format_cdf, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig9", "compute_fig10", "run_fig9", "run_fig10", "run"]


def compute_fig9(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, float, float, float]]:
    """Rows of (model, N, avg entries, std, expected cvs + 2K)."""
    cache = cache if cache is not None else default_cache()
    configs = [
        scenario(model, n, scale) for model in MODELS for n in n_values(scale)
    ]
    cache.prime(configs, jobs=jobs)
    rows = []
    for config in configs:
        summary = cache.get_summary(config)
        values = summary.memory_values(control_only=True)
        rows.append(
            (
                summary.model,
                summary.n,
                stats.mean(values),
                stats.std(values),
                summary.avmon["expected_memory_entries"],
            )
        )
    return rows


def compute_fig10(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[Tuple[str, int], List[Tuple[float, float]]]:
    cache = cache if cache is not None else default_cache()
    sweep = n_values(scale)
    configs = {
        (model, n): scenario(model, n, scale)
        for model in MODELS
        for n in (sweep[0], sweep[-1])
    }
    cache.prime(configs.values(), jobs=jobs)
    return {
        key: stats.cdf_points(
            cache.get_summary(config).memory_values(control_only=True)
        )
        for key, config in configs.items()
    }


def run_fig9(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    rows = compute_fig9(scale, cache, jobs)
    header = (
        "Figure 9 - average memory entries per node (|PS| + |TS| + |CV|)\n"
        "paper: close to the expected cvs + 2K; churned models slightly\n"
        "above due to garbage PS/TS entries\n"
    )
    return header + format_table(
        ("model", "N", "avg entries", "std", "expected cvs+2K"), rows
    )


def run_fig10(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    data = compute_fig10(scale, cache, jobs)
    lines = ["Figure 10 - CDF of per-node memory entries"]
    for (model, n), points in sorted(data.items()):
        lines.append("")
        lines.append(f"{model}, N = {n}:")
        lines.append(format_cdf(points, value_label="memory entries"))
    return "\n".join(lines)


def run(
    scale: str = "bench", cache: Optional[SimulationCache] = None, jobs: int = 1
) -> str:
    return run_fig9(scale, cache, jobs) + "\n\n" + run_fig10(scale, cache, jobs)
