"""Canonical experiment parameterisations at three scales.

* ``paper`` — the paper's exact settings: N up to 2000, 48-hour runs,
  one-hour warm-up, PL with N = 239 and OV with N ≈ 550.  CPU-hungry in a
  pure-Python simulator; available through the CLI for full replication.
* ``bench`` — the benchmark default: N scaled into the 60–400 range and
  runs of 1–3 simulated hours, preserving every protocol constant and
  therefore the qualitative shape of each figure.
* ``test`` — tiny settings for the integration test suite.

``n_values`` returns the per-scale stand-ins for the paper's N sweep
{100, 500, 1000, 2000}.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import AvmonConfig
from ..traces.format import AvailabilityTrace
from ..traces.overnet import generate_overnet_trace
from ..traces.planetlab import generate_planetlab_trace
from .runner import SimulationConfig

__all__ = [
    "SCALES",
    "n_values",
    "scale_window",
    "scenario",
    "trace_for",
    "planetlab_scenario",
    "overnet_scenario",
]

SCALES = ("paper", "bench", "test")

#: (warmup seconds, measurement seconds) per scale.
_WINDOWS: Dict[str, Tuple[float, float]] = {
    "paper": (3600.0, 47.0 * 3600.0),
    "bench": (1500.0, 5400.0),
    "test": (600.0, 1500.0),
}

#: Stand-ins for the paper's N sweep {100, 500, 1000, 2000}.
_N_SWEEP: Dict[str, List[int]] = {
    "paper": [100, 500, 1000, 2000],
    "bench": [60, 120, 240],
    "test": [30, 60],
}

_TRACE_CACHE: Dict[tuple, AvailabilityTrace] = {}


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return scale


def n_values(scale: str = "bench") -> List[int]:
    """The system sizes standing in for the paper's {100..2000} sweep."""
    return list(_N_SWEEP[_check_scale(scale)])


def scale_window(scale: str = "bench") -> Tuple[float, float]:
    """``(warmup seconds, measurement seconds)`` for a named scale."""
    return _WINDOWS[_check_scale(scale)]


def scenario(
    model: str,
    n: int,
    scale: str = "bench",
    *,
    seed: int = 1,
    avmon: Optional[AvmonConfig] = None,
    **overrides,
) -> SimulationConfig:
    """Build a :class:`SimulationConfig` for a synthetic model at a scale.

    For the birth/death models the birth rate is scaled so the *cumulative*
    birth count over the run matches the paper's: 0.2·N/day over 48 h means
    ≈ 0.4·N births in total (their SYNTH-BD N_longterm of 2809 for N = 2000).
    Each birth's discovery behaviour is independent of the rate, so this
    preserves the figures' shape while giving scaled-down runs enough
    control-group samples.
    """
    warmup, window = _WINDOWS[_check_scale(scale)]
    duration = warmup + window
    if (
        model.upper().replace("_", "-") in ("SYNTH-BD", "SYNTH-BD2")
        and "birth_death_per_day" not in overrides
    ):
        overrides["birth_death_per_day"] = 0.4 / (duration / 86400.0)
    return SimulationConfig(
        model=model,
        n=n,
        duration=duration,
        warmup=warmup,
        seed=seed,
        avmon=avmon,
        **overrides,
    )


def trace_for(system: str, scale: str = "bench", *, seed: int = 7) -> AvailabilityTrace:
    """Generate (and cache) the PL/OV replacement trace at a scale."""
    key = (system.upper(), _check_scale(scale), seed)
    cached = _TRACE_CACHE.get(key)
    if cached is not None:
        return cached
    warmup, window = _WINDOWS[scale]
    duration = warmup + window
    if system.upper() == "PL":
        if scale == "paper":
            trace = generate_planetlab_trace(duration=48 * 3600.0, seed=seed)
        else:
            trace = generate_planetlab_trace(
                n=120 if scale == "bench" else 40, duration=duration, seed=seed
            )
    elif system.upper() == "OV":
        if scale == "paper":
            trace = generate_overnet_trace(duration=48 * 3600.0, seed=seed)
        else:
            n_stable = 130 if scale == "bench" else 40
            # Keep the full generator's birth-rate-to-size ratio (4.6/550).
            births_per_hour = (4.6 / 550.0) * n_stable
            trace = generate_overnet_trace(
                n_stable=n_stable,
                duration=duration,
                seed=seed,
                births_per_hour=births_per_hour,
            )
    else:
        raise ValueError(f"unknown trace system {system!r}; expected PL or OV")
    _TRACE_CACHE[key] = trace
    return trace


def planetlab_scenario(
    scale: str = "bench", *, seed: int = 1, trace_seed: int = 7, **overrides
) -> SimulationConfig:
    """The paper's PL experiment: N = 239, K = 8, cvs = 16 (scaled)."""
    warmup, window = _WINDOWS[_check_scale(scale)]
    trace = trace_for("PL", scale, seed=trace_seed)
    stable = 239 if scale == "paper" else len(trace)
    avmon = overrides.pop("avmon", None)
    if avmon is None:
        avmon = AvmonConfig.paper_defaults(stable)
    duration = min(warmup + window, trace.duration)
    return SimulationConfig(
        model="PL",
        n=stable,
        duration=duration,
        warmup=warmup,
        seed=seed,
        trace=trace,
        avmon=avmon,
        **overrides,
    )


def overnet_scenario(
    scale: str = "bench", *, seed: int = 1, trace_seed: int = 7, **overrides
) -> SimulationConfig:
    """The paper's OV experiment: stable N = 550, K = 9, cvs = 19 (scaled)."""
    warmup, window = _WINDOWS[_check_scale(scale)]
    trace = trace_for("OV", scale, seed=trace_seed)
    stable = 550 if scale == "paper" else max(2, round(len(trace) / 2))
    avmon = overrides.pop("avmon", None)
    if avmon is None:
        avmon = AvmonConfig.paper_defaults(stable)
    duration = min(warmup + window, trace.duration)
    return SimulationConfig(
        model="OV",
        n=stable,
        duration=duration,
        warmup=warmup,
        seed=seed,
        trace=trace,
        avmon=avmon,
        **overrides,
    )
