"""Figure 3: average discovery time of first monitors vs system size.

For each synthetic churn model (STAT, SYNTH, SYNTH-BD) and each N in the
sweep, a control group of 10 %·N nodes joins after warm-up (implicitly, as
post-warm-up births, for SYNTH-BD) and we measure the time to each node's
*first* monitor discovery.  The paper's claims: the average stays below one
protocol period (1 minute), is unaffected by join/leave churn, and only
mildly affected by birth/death.

Following the paper's footnote 8, the single highest measurement per
setting is dropped as an outlier.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_table
from .scenarios import n_values, scenario

__all__ = ["MODELS", "compute", "render", "run"]

MODELS = ("STAT", "SYNTH", "SYNTH-BD")


def compute(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, float, float, int]]:
    """Rows of (model, N, avg discovery s, std s, control-group size).

    With ``jobs > 1`` the base runs fan out over a process pool through the
    orchestrator before the rows are assembled from their summaries.
    """
    cache = cache if cache is not None else default_cache()
    configs = [
        scenario(model, n, scale) for model in MODELS for n in n_values(scale)
    ]
    cache.prime(configs, jobs=jobs)
    rows = []
    for config in configs:
        summary = cache.get_summary(config)
        delays = summary.first_monitor_delays()
        rows.append(
            (
                summary.model,
                summary.n,
                summary.average_discovery_time(drop_top=1),
                stats.std(delays),
                summary.tracked_count(),
            )
        )
    return rows


def render(rows) -> str:
    header = (
        "Figure 3 - average discovery time of first monitor (control group)\n"
        "paper: below 1 minute for every model and N; join/leave churn has\n"
        "no effect, birth/death only a mild one\n"
    )
    table = format_table(
        ("model", "N", "avg discovery (s)", "std (s)", "control nodes"), rows
    )
    return header + table


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return render(compute(scale, cache, jobs))
