"""Picklable per-run summary: the metric series the figures consume.

:class:`~repro.experiments.runner.SimulationResult` drags the whole live
object graph along (cluster, network, event queue) and therefore cannot
cross a process boundary or be cached to disk.  :class:`SimulationSummary`
is the flat extraction — plain lists and dicts of floats — carrying exactly
the series the paper's figures read, with the same accessor names, so
figure code runs unchanged against either object.

Summaries are JSON-serialisable and deterministic: the same configuration
always produces byte-identical :meth:`SimulationSummary.to_json` output,
whether the run executed in-process or in a worker process (wall-clock
timing is deliberately excluded from the serialised form).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..metrics import stats

__all__ = ["SCHEMA_VERSION", "SimulationSummary", "summarize"]

#: Serialised-payload schema. Bump when a field is renamed, removed or
#: reinterpreted: readers reject stamps they don't know (the disk store
#: treats that as a warned miss and recomputes), instead of silently
#: loading an old-schema file as a default-valued summary. Purely
#: additive fields don't need a bump — unknown keys are dropped on read.
SCHEMA_VERSION = 1


@dataclass
class SimulationSummary:
    """Flat, process-portable record of one simulation run."""

    #: Identity: model key, system size, seed and display label.
    model: str = ""
    n: int = 0
    seed: int = 0
    label: str = ""
    #: Scalar run parameters (duration, warmup, rates ...).
    params: Dict[str, float] = field(default_factory=dict)
    #: Resolved AVMON protocol constants (k, cvs, protocol_period ...).
    avmon: Dict[str, float] = field(default_factory=dict)
    #: Monitor rank -> discovery delays across tracked control nodes.
    monitor_delays: Dict[int, List[float]] = field(default_factory=dict)
    control_count: int = 0
    undiscovered_count: int = 0
    computation_rates_control: List[float] = field(default_factory=list)
    computation_rates_all: List[float] = field(default_factory=list)
    memory_control: List[float] = field(default_factory=list)
    memory_all: List[float] = field(default_factory=list)
    bandwidth: List[float] = field(default_factory=list)
    useless_pings: List[float] = field(default_factory=list)
    #: ``[node, estimated availability, true availability]`` triples.
    availability_control: List[List[float]] = field(default_factory=list)
    availability_alive: List[List[float]] = field(default_factory=list)
    n_longterm: int = 0
    final_alive: int = 0
    events_processed: int = 0
    window_seconds: float = 0.0
    #: Wall-clock runtime; excluded from to_dict()/to_json() so serialised
    #: summaries are deterministic across machines and process counts.
    wall_seconds: float = 0.0

    # -- discovery (Figures 3-6, 13, 15) ----------------------------------

    def first_monitor_delays(self) -> List[float]:
        return list(self.monitor_delays.get(1, ()))

    def nth_monitor_delays(self, nth: int) -> List[float]:
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        return list(self.monitor_delays.get(nth, ()))

    def average_discovery_time(self, drop_top: int = 1) -> float:
        delays = sorted(self.first_monitor_delays())
        if drop_top > 0 and len(delays) > drop_top:
            delays = delays[:-drop_top]
        return stats.mean(delays)

    def discovery_cdf(self) -> List[Tuple[float, float]]:
        return stats.cdf_points(self.first_monitor_delays())

    def tracked_count(self) -> int:
        return self.control_count

    # -- computation / memory / bandwidth / pings --------------------------

    def computation_rates(self, control_only: bool = True) -> List[float]:
        if control_only:
            return list(self.computation_rates_control)
        return list(self.computation_rates_all)

    def memory_values(self, control_only: bool = True) -> List[float]:
        return list(self.memory_control if control_only else self.memory_all)

    def bandwidth_rates(self) -> List[float]:
        return list(self.bandwidth)

    def useless_ping_rates(self) -> List[float]:
        return list(self.useless_pings)

    # -- availability accuracy (Figures 17, 20) ----------------------------

    def availability_ratio_series(self) -> Dict[int, float]:
        return {
            int(node): estimate / truth
            for node, estimate, truth in self.availability_control
            if truth > 0
        }

    def fraction_affected(self, threshold: float = 0.2) -> float:
        audits = self.availability_alive
        if not audits:
            return 0.0
        affected = sum(
            1 for _, estimate, truth in audits if abs(estimate - truth) > threshold
        )
        return affected / len(audits)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready payload (deterministic: no wall-clock timing)."""
        return {
            "schema": SCHEMA_VERSION,
            "model": self.model,
            "n": self.n,
            "seed": self.seed,
            "label": self.label,
            "params": dict(self.params),
            "avmon": dict(self.avmon),
            "monitor_delays": {
                str(rank): list(delays)
                for rank, delays in sorted(self.monitor_delays.items())
            },
            "control_count": self.control_count,
            "undiscovered_count": self.undiscovered_count,
            "computation_rates_control": list(self.computation_rates_control),
            "computation_rates_all": list(self.computation_rates_all),
            "memory_control": list(self.memory_control),
            "memory_all": list(self.memory_all),
            "bandwidth": list(self.bandwidth),
            "useless_pings": list(self.useless_pings),
            "availability_control": [list(row) for row in self.availability_control],
            "availability_alive": [list(row) for row in self.availability_alive],
            "n_longterm": self.n_longterm,
            "final_alive": self.final_alive,
            "events_processed": self.events_processed,
            "window_seconds": self.window_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationSummary":
        version = payload.get("schema", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported summary schema {version!r} "
                f"(this version reads schema {SCHEMA_VERSION})"
            )
        # Within a schema, unknown keys are dropped rather than rejected: a
        # store written by a newer version with extra series stays readable.
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in payload.items() if key in known}
        data["monitor_delays"] = {
            int(rank): list(delays)
            for rank, delays in data.get("monitor_delays", {}).items()
        }
        data.pop("wall_seconds", None)
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SimulationSummary":
        return cls.from_dict(json.loads(text))


def summarize(result) -> SimulationSummary:
    """Extract a :class:`SimulationSummary` from a live ``SimulationResult``.

    Must run in the process that owns the result (it walks the cluster's
    node objects for the availability audit); the returned summary is then
    free to cross process boundaries.
    """
    config = result.config
    avmon = result.avmon_config
    audits_control = result.availability_audit(control_only=True)
    audits_alive = result.availability_audit(control_only=False, alive_only=True)
    return SimulationSummary(
        model=config.model_key,
        n=config.n,
        seed=config.seed,
        label=config.label,
        params={
            "duration": config.duration,
            "warmup": config.warmup,
            "control_fraction": config.control_fraction,
            "churn_per_hour": config.churn_per_hour,
            "birth_death_per_day": config.birth_death_per_day,
            "overreport_fraction": config.overreport_fraction,
            "sample_interval": config.sample_interval,
        },
        avmon={
            "n_expected": avmon.n_expected,
            "k": avmon.k,
            "cvs": avmon.cvs,
            "protocol_period": avmon.protocol_period,
            "monitoring_period": avmon.monitoring_period,
            "expected_memory_entries": avmon.expected_memory_entries,
            "enable_forgetful": avmon.enable_forgetful,
            "enable_pr2": avmon.enable_pr2,
        },
        monitor_delays=result.metrics.discovery.delays_by_rank(),
        control_count=result.metrics.discovery.tracked_count(),
        undiscovered_count=result.metrics.discovery.undiscovered_count(),
        computation_rates_control=result.computation_rates(control_only=True),
        computation_rates_all=result.computation_rates(control_only=False),
        memory_control=result.memory_values(control_only=True),
        memory_all=result.memory_values(control_only=False),
        bandwidth=result.bandwidth_rates(),
        useless_pings=result.useless_ping_rates(),
        availability_control=[
            [int(node), estimate, truth]
            for node, (estimate, truth) in sorted(audits_control.items())
        ],
        availability_alive=[
            [int(node), estimate, truth]
            for node, (estimate, truth) in sorted(audits_alive.items())
        ],
        n_longterm=result.n_longterm,
        final_alive=result.final_alive,
        events_processed=result.events_processed,
        window_seconds=result.window_seconds,
        wall_seconds=result.wall_seconds,
    )
