"""Figures 17 and 18: the forgetful-pinging optimisation (SYNTH model).

Figure 17: per-control-node ratio of estimated availability (fraction of
monitoring pings answered, averaged over the node's monitors) to its real
uptime fraction.  The paper: without forgetfulness the estimate is accurate;
with it the average relative error stays below 5 % (max 8 %).

Figure 18: useless pings per minute (pings sent to nodes not currently in
the system) with and without the optimisation — forgetting reduces them by
about an order of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..metrics import stats
from .cache import SimulationCache, default_cache
from .report import format_kv, format_table
from .scenarios import n_values, scenario

__all__ = ["compute_fig17", "compute_fig18", "run_fig17", "run_fig18", "run"]


def _config(n: int, scale: str, forgetful: bool):
    config = scenario("SYNTH", n, scale)
    if scale != "paper":
        # Forgetful-ping savings are governed by the dimensionless ratio of
        # measurement window to mean session length (the paper's 47 h / 5 h
        # ~ 9); preserve it when the window is scaled down by scaling the
        # churn rate up.
        window_hours = (config.duration - config.warmup) / 3600.0
        config.churn_per_hour = 9.0 / window_hours
    config.avmon = config.resolved_avmon().with_overrides(
        enable_forgetful=forgetful
    )
    config.label = f"SYNTH-{'forgetful' if forgetful else 'non-forgetful'}"
    return config


def compute_fig17(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> Dict[str, dict]:
    cache = cache if cache is not None else default_cache()
    n = n_values(scale)[-1]
    configs = {
        forgetful: _config(n, scale, forgetful) for forgetful in (True, False)
    }
    cache.prime(configs.values(), jobs=jobs)
    out = {}
    for forgetful, config in configs.items():
        summary = cache.get_summary(config)
        ratios = list(summary.availability_ratio_series().values())
        errors = [abs(r - 1.0) for r in ratios]
        out["forgetful" if forgetful else "non-forgetful"] = {
            "n": n,
            "ratios": ratios,
            "mean_ratio": stats.mean(ratios),
            "mean_error": stats.mean(errors),
            "max_error": max(errors) if errors else 0.0,
        }
    return out


def compute_fig18(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> List[Tuple[str, int, float, float]]:
    """Rows of (variant, N, avg useless pings/min, std)."""
    cache = cache if cache is not None else default_cache()
    cells = [
        ("forgetful" if forgetful else "non-forgetful", n, _config(n, scale, forgetful))
        for forgetful in (True, False)
        for n in n_values(scale)
    ]
    cache.prime([config for _, _, config in cells], jobs=jobs)
    rows = []
    for label, n, config in cells:
        rates = cache.get_summary(config).useless_ping_rates()
        rows.append((label, n, stats.mean(rates), stats.std(rates)))
    return rows


def run_fig17(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    data = compute_fig17(scale, cache, jobs)
    lines = [
        "Figure 17 - estimated/real availability ratio per control node",
        "paper: non-forgetful is accurate; forgetful adds < 5% average",
        "relative error (max 8%) over the non-forgetful baseline",
        "",
    ]
    for label, info in sorted(data.items()):
        lines.append(
            format_kv(
                [
                    (f"{label} N", info["n"]),
                    (f"{label} nodes audited", len(info["ratios"])),
                    (f"{label} mean ratio", info["mean_ratio"]),
                    (f"{label} mean |error|", info["mean_error"]),
                    (f"{label} max |error|", info["max_error"]),
                ]
            )
        )
        lines.append("")
    # The paper's comparison: how much error does forgetting *add* on top
    # of the sampling noise both estimators share?
    excess = data["forgetful"]["mean_error"] - data["non-forgetful"]["mean_error"]
    lines.append(
        format_kv([("forgetful excess mean |error| vs baseline", excess)])
    )
    return "\n".join(lines).rstrip()


def run_fig18(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    rows = compute_fig18(scale, cache, jobs)
    header = (
        "Figure 18 - useless pings per minute (sent to absent nodes)\n"
        "paper: forgetful pinging reduces useless pings by roughly an\n"
        "order of magnitude\n"
    )
    return header + format_table(
        ("variant", "N", "avg useless pings/min", "std"), rows
    )


def run(
    scale: str = "bench",
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
) -> str:
    return run_fig17(scale, cache, jobs) + "\n\n" + run_fig18(scale, cache, jobs)
