"""Machine-readable performance trajectory: micro and sweep benchmarks.

``avmon bench`` measures the simulator's hot paths (micro) and the serial
figure-sweep workload (sweep), then *appends* the results to
``BENCH_micro.json`` / ``BENCH_sweep.json`` — one entry per invocation, so
the files accumulate a commit-over-commit performance trajectory instead of
overwriting history.

Every entry carries two kinds of numbers:

* **wall times** — machine-dependent, for humans and for before/after
  comparisons on one box;
* **deterministic counters** — hash evaluations, processed events, relation
  index sizes, summary checksums and store cache keys.  These are
  byte-stable per seed and Python-version independent, so CI can gate on
  them without flaky wall-clock thresholds: a counter that moves means the
  simulation's work (or its on-disk cache contract) changed, not the
  hardware.
"""

from __future__ import annotations

import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.condition import ConsistencyCondition
from ..core.hashing import hash_pair, hash_pair_u64
from ..core.relation import MonitorRelation
from ..sim.engine import Simulator

__all__ = [
    "MICRO_FILENAME",
    "SWEEP_FILENAME",
    "SERVE_FILENAME",
    "run_micro_bench",
    "run_sweep_bench",
    "run_backend_bench",
    "append_entry",
    "run_bench",
]

MICRO_FILENAME = "BENCH_micro.json"
SWEEP_FILENAME = "BENCH_sweep.json"
SERVE_FILENAME = "BENCH_serve.json"
BENCH_SCHEMA = 1

#: Micro-bench sizing per scale: (hash calls, condition checks, relation
#: universe, relation probes, engine events, network messages).
_MICRO_SIZES = {
    "paper": (200_000, 300_000, 10_000, 20, 200_000, 100_000),
    "bench": (200_000, 300_000, 10_000, 20, 200_000, 100_000),
    "test": (20_000, 30_000, 2_000, 10, 20_000, 10_000),
}


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_micro_bench(scale: str = "bench") -> Dict[str, dict]:
    """Measure the hot-path primitives; returns ``{metric: payload}``.

    Payloads mix wall numbers (``wall_s``, ``per_sec``) with deterministic
    counters (``evaluations``, ``events``) where the primitive has one.
    """
    try:
        hash_calls, checks, universe, probes, events, messages = _MICRO_SIZES[scale]
    except KeyError:
        raise ValueError(
            f"unknown bench scale {scale!r}; expected one of {sorted(_MICRO_SIZES)}"
        ) from None
    results: Dict[str, dict] = {}

    for algorithm in ("md5", "splitmix64"):
        wall = _timed(
            lambda: [hash_pair(12345, 67890, algorithm) for _ in range(hash_calls)]
        )
        results[f"hash_pair_{algorithm}"] = {
            "calls": hash_calls,
            "wall_s": round(wall, 4),
            "per_sec": round(hash_calls / wall),
        }

    # Integer-domain condition checks over a fixed random pair workload
    # (memo-free: every check is a real hash + integer compare).
    for algorithm in ("md5", "splitmix64"):
        condition = ConsistencyCondition(k=13, n=10_000, hash_algorithm=algorithm)
        rng = random.Random(1)
        pairs = [(rng.randrange(2000), rng.randrange(2000)) for _ in range(checks)]
        holds = condition.holds

        def check_all() -> None:
            for a, b in pairs:
                holds(a, b)

        wall = _timed(check_all)
        results[f"condition_check_{algorithm}"] = {
            "checks": checks,
            "evaluations": condition.hash_evaluations,
            "wall_s": round(wall, 4),
            "per_sec": round(checks / wall),
        }

    # Relation warm scan: materialise TS for `probes` nodes over a
    # `universe`-id universe through the chunked scan kernels.
    for algorithm in ("md5", "splitmix64"):
        condition = ConsistencyCondition(k=13, n=10_000, hash_algorithm=algorithm)
        relation = MonitorRelation(condition)
        relation.add_nodes(range(universe))

        def scan_all() -> None:
            for probe in range(probes):
                relation.targets_of(probe)

        wall = _timed(scan_all)
        results[f"relation_scan_n{universe}_{algorithm}"] = {
            "evaluations": condition.hash_evaluations,
            "index_entries": relation.index_entries(),
            "wall_s": round(wall, 4),
            "pairs_per_sec": round(condition.hash_evaluations / wall),
        }

    # Event-engine throughput: cancellable handles vs the no-handle lane.
    def run_schedule() -> int:
        sim = Simulator()
        for index in range(events):
            sim.schedule(float(index % 60), _noop)
        sim.run_until(60.0)
        return sim.processed_events

    def run_schedule_call() -> int:
        sim = Simulator()
        for index in range(events):
            sim.schedule_call(float(index % 60), _noop)
        sim.run_until(60.0)
        return sim.processed_events

    for name, runner in (("engine_schedule", run_schedule),
                         ("engine_schedule_call", run_schedule_call)):
        start = time.perf_counter()
        processed = runner()
        wall = time.perf_counter() - start
        results[name] = {
            "events": processed,
            "wall_s": round(wall, 4),
            "events_per_sec": round(processed / wall),
        }

    # Full network delivery path: send -> heap -> deliver -> handler.
    from ..net.network import Network, SimHost

    sim = Simulator()
    network = Network(sim, rng=random.Random(0))
    sender = SimHost(network, 0, random.Random(1))
    receiver = SimHost(network, 1, random.Random(2))
    sender.attach(_SinkNode())
    receiver.attach(_SinkNode())
    sender.bring_up()
    receiver.bring_up()
    from ..core.messages import CvPing

    message = CvPing(0, 1)
    send = sender.send

    def pump() -> None:
        for _ in range(messages):
            send(1, message)
        sim.run_until(1e9)

    wall = _timed(pump)
    results["network_delivery"] = {
        "messages": messages,
        "events": sim.processed_events,
        "wall_s": round(wall, 4),
        "messages_per_sec": round(messages / wall),
    }

    # Registry view of the primitives just measured.  Attached AFTER the
    # timed sections — every hot path above ran with hooks disabled, so
    # the micro numbers stay comparable across the trajectory; the
    # callback gauges read the final engine/condition state for free.
    from ..obs import MetricsRegistry
    from ..obs.hooks import observe_condition, observe_simulator

    registry = MetricsRegistry()
    observe_simulator(registry, sim)  # the network-delivery engine
    observe_condition(registry, condition)  # last relation-scan condition
    results["obs"] = {"deterministic": registry.deterministic_snapshot()}
    return results


def _noop() -> None:
    return None


class _SinkNode:
    def handle_message(self, message) -> None:
        return None


def run_sweep_bench(scale: str = "bench", *, scale_out: Optional[bool] = None) -> dict:
    """Serial figure-sweep workload with per-cell deterministic counters.

    Runs the scale's SYNTH N-grid over two seeds exactly as
    ``benchmarks/bench_sweep.py`` does serially, recording per cell the
    wall time plus: processed events, hash evaluations, relation index
    size, the summary JSON's SHA-256 and the disk store's cache key.  The
    latter two pin the byte-identity and cache-address contracts into the
    trajectory file — any drift is visible in the diff.  Each cell also
    embeds the deterministic half of a per-cell ``repro.obs`` registry
    snapshot (engine/condition/relation hooks), which the perf-smoke gate
    compares byte-for-byte between identical runs.

    With *scale_out* (default: only at ``bench``/``paper`` scale) a
    shortened-window ``STAT N=10,000`` cell demonstrates the scale-out
    regime the integer-domain condition and allocation-lean engine exist
    for; the pre-optimisation simulator could not hold its O(N²) condition
    memo in memory at this size.
    """
    from .runner import SimulationConfig, run_simulation
    from .scenarios import n_values, scenario
    from .store import config_key, stable_key_hash

    if scale_out is None:
        scale_out = scale != "test"

    cells: List[dict] = []
    total_wall = 0.0

    from ..obs import MetricsRegistry

    def run_cell(label: str, config) -> None:
        nonlocal total_wall
        registry = MetricsRegistry()
        start = time.perf_counter()
        result = run_simulation(config, obs=registry)
        wall = time.perf_counter() - start
        total_wall += wall
        summary_json = result.summary().to_json()
        relation = result.cluster.relation
        condition = relation.condition
        cells.append(
            {
                "label": label,
                "model": config.model_key,
                "n": config.n,
                "seed": config.seed,
                "wall_s": round(wall, 3),
                "events_processed": result.events_processed,
                "hash_evaluations": condition.hash_evaluations,
                "relation_index_entries": relation.index_entries(),
                "universe": relation.universe_size(),
                "summary_sha256": hashlib.sha256(
                    summary_json.encode("utf-8")
                ).hexdigest(),
                "store_key": stable_key_hash(config_key(config)),
                # Deterministic only: the wall-kind series (scan-phase
                # timers) are excluded, so the perf-smoke gate can compare
                # this dict byte-for-byte between identical runs.
                "obs": registry.deterministic_snapshot(),
            }
        )

    for n in n_values(scale):
        for seed in (1, 2):
            run_cell(f"SYNTH-n{n}-s{seed}", scenario("SYNTH", n, scale, seed=seed))

    if scale_out:
        # Shortened window so the cell stays minutes, not hours; the point
        # is that N=10,000 runs at all (and how fast the substrate is).
        config = SimulationConfig(
            model="STAT",
            n=10_000,
            duration=1500.0,
            warmup=300.0,
            sample_interval=300.0,
            label="scale-out",
        )
        run_cell("STAT-n10000-s1", config)

    return {"cells": cells, "total_wall_s": round(total_wall, 2)}


def run_backend_bench(scale: str = "bench") -> dict:
    """Execution-backend comparison over one shared store: serial vs pool
    vs fleet (cold and warm), plus a chaos variant that SIGKILLs a worker
    and a two-parent remote variant where network-attached workers lease
    cells from the daemon and the parents split the grid via cell claims.

    All variants run the same SYNTH N-grid × two seeds.  The fleet
    variants execute against a live ``avmon store serve`` daemon on an
    ephemeral localhost port, so the measured path is the real one —
    workers resolving and persisting cells over HTTP.  Besides wall
    times, the entry records the concatenated summary-JSON SHA-256 of
    every variant: ``byte_identical`` pins the "same bytes from any
    backend, even with a worker SIGKILLed mid-sweep" contract into the
    trajectory file.
    """
    import asyncio
    import tempfile
    import threading

    from .backends import (
        LocalPoolBackend,
        RemoteWorkerBackend,
        WorkerFleetBackend,
        default_jobs,
        run_fleet_worker,
    )
    from .orchestrator import run_configs
    from .scenarios import n_values, scenario
    from .store import SummaryStore
    from .store_backends import FilesystemBackend
    from .store_server import serve_store

    configs = [
        scenario("SYNTH", n, scale, seed=seed)
        for n in n_values(scale)
        for seed in (1, 2)
    ]
    # At least two workers even on a one-core box: the point is the
    # coordination path (leases, retries, shared store), not raw speedup.
    workers = max(2, default_jobs())
    variants: List[dict] = []
    checksums = []

    def record(name: str, wall: float, summaries, extra: dict) -> None:
        digest = hashlib.sha256(
            "".join(s.to_json() for s in summaries).encode("utf-8")
        ).hexdigest()
        checksums.append(digest)
        variants.append(
            {
                "backend": name,
                "wall_s": round(wall, 3),
                "summaries_sha256": digest,
                **extra,
            }
        )

    def timed_run(name: str, extra_of=None, **kwargs) -> None:
        start = time.perf_counter()
        summaries = run_configs(configs, **kwargs)
        wall = time.perf_counter() - start
        record(name, wall, summaries, extra_of() if extra_of else {})

    timed_run("serial", jobs=1)
    timed_run("pool", backend=LocalPoolBackend(workers))

    with tempfile.TemporaryDirectory(prefix="avmon-bench-store-") as shared:
        loop = asyncio.new_event_loop()
        started = threading.Event()
        state: dict = {}

        async def boot() -> None:
            server = await serve_store(FilesystemBackend(shared), "127.0.0.1", 0)
            state["port"] = server.sockets[0].getsockname()[1]
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                server.close()
                await server.wait_closed()

        def run_daemon() -> None:
            state["task"] = loop.create_task(boot())
            try:
                loop.run_until_complete(state["task"])
                # Idle keep-alive connections from the worker threads may
                # still be parked in handlers; drain them before closing.
                pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
                for leftover in pending:
                    leftover.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

        daemon = threading.Thread(target=run_daemon, daemon=True)
        daemon.start()
        if not started.wait(5.0):
            raise OSError("store daemon failed to start for the fleet bench")
        url = f"http://127.0.0.1:{state['port']}"
        cold_store = SummaryStore.open(url)
        warm_store = SummaryStore.open(url)
        remote_state: dict = {}
        try:
            fleet = WorkerFleetBackend(workers, heartbeat_interval=0.1)
            timed_run(
                "fleet_cold_shared",
                backend=fleet,
                store=cold_store,
                extra_of=lambda: {
                    "workers": workers,
                    "deaths": fleet.stats.deaths,
                },
            )
            warm = WorkerFleetBackend(workers, heartbeat_interval=0.1)
            timed_run(
                "fleet_warm_shared",
                backend=warm,
                store=warm_store,
                extra_of=lambda: {
                    "workers": workers,
                    "store_hits": warm_store.hits,
                    "cells_computed": warm_store.writes
                    + warm.stats.workers_spawned,
                },
            )
            chaos_store_dir = Path(shared) / "chaos"
            chaos = WorkerFleetBackend(
                workers,
                heartbeat_interval=0.1,
                retry_backoff=0.1,
                chaos_kill_after_starts=1,
            )
            timed_run(
                "fleet_chaos_sigkill",
                backend=chaos,
                store=SummaryStore(chaos_store_dir),
                extra_of=lambda: {
                    "workers": workers,
                    "deaths": chaos.stats.deaths,
                    "retries": chaos.stats.retries,
                },
            )

            # Two parents, network-attached workers, one daemon: the
            # multi-host path.  A second daemon with a fresh root keeps
            # the variant cold — the fleet variants above already warmed
            # ``shared``.
            remote_root = Path(shared) / "remote"
            remote_root.mkdir()
            remote_started = threading.Event()

            async def boot_remote() -> None:
                server = await serve_store(
                    FilesystemBackend(remote_root), "127.0.0.1", 0
                )
                remote_state["port"] = server.sockets[0].getsockname()[1]
                remote_started.set()
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    server.close()
                    await server.wait_closed()

            remote_state["future"] = asyncio.run_coroutine_threadsafe(
                boot_remote(), loop
            )
            if not remote_started.wait(5.0):
                raise OSError("second store daemon failed to start")
            remote_url = f"http://127.0.0.1:{remote_state['port']}"
            for i in range(2):
                threading.Thread(
                    target=run_fleet_worker,
                    args=(remote_url,),
                    kwargs=dict(
                        poll_interval=0.05, max_idle=15.0, name=f"bench-w{i}"
                    ),
                    daemon=True,
                ).start()
            parents: dict = {}

            def remote_sweep(tag: str) -> None:
                backend = RemoteWorkerBackend(
                    owner=tag,
                    lease_ttl=10.0,
                    poll_interval=0.05,
                    retry_backoff=0.1,
                )
                parent_store = SummaryStore.open(remote_url)
                try:
                    summaries = run_configs(
                        configs, store=parent_store, backend=backend
                    )
                finally:
                    parent_store.backend.close()
                parents[tag] = (summaries, backend)

            start = time.perf_counter()
            sweeps = [
                threading.Thread(target=remote_sweep, args=(tag,))
                for tag in ("bench-parent-a", "bench-parent-b")
            ]
            for sweep in sweeps:
                sweep.start()
            for sweep in sweeps:
                sweep.join()
            remote_wall = time.perf_counter() - start
            if set(parents) != {"bench-parent-a", "bench-parent-b"}:
                raise OSError("a remote bench parent died mid-sweep")
            json_a = [s.to_json() for s in parents["bench-parent-a"][0]]
            json_b = [s.to_json() for s in parents["bench-parent-b"][0]]
            counts = [p[1]._event_counts for p in parents.values()]
            record(
                "fleet_remote_two_parent",
                remote_wall,
                parents["bench-parent-a"][0],
                {
                    "parents": 2,
                    "workers": 2,
                    "cells_computed": sum(
                        c.get("fleet.cell_done", 0) for c in counts
                    ),
                    "adopted": sum(
                        c.get("fleet.cell_adopted", 0) for c in counts
                    ),
                    "parents_agree": json_a == json_b,
                },
            )
        finally:
            # Drop the persistent client connections before stopping the
            # loop, or their server-side handler tasks outlive it noisily.
            cold_store.backend.close()
            warm_store.backend.close()
            time.sleep(0.05)
            remote_future = remote_state.get("future")
            if remote_future is not None:
                remote_future.cancel()
            loop.call_soon_threadsafe(state["task"].cancel)
            daemon.join(timeout=5.0)

    return {
        "cells": len(configs),
        "workers": workers,
        "variants": variants,
        "byte_identical": len(set(checksums)) == 1,
        "summaries_sha256": checksums[0],
    }


def _entry(label: str, scale: str, results: dict) -> dict:
    return {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def append_entry(path: Path, entry: dict) -> None:
    """Append *entry* to the trajectory file at *path* (created if absent).

    Unreadable/foreign content is preserved by renaming, never silently
    overwritten.
    """
    payload = {"schema": BENCH_SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
                payload = existing
            else:
                path.rename(path.with_suffix(path.suffix + ".bak"))
        except (OSError, ValueError):
            path.rename(path.with_suffix(path.suffix + ".bak"))
    payload["schema"] = BENCH_SCHEMA
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_bench(
    which: str = "all",
    scale: str = "bench",
    out_dir: Optional[str] = None,
    label: str = "",
    scale_out: Optional[bool] = None,
    out=sys.stdout,
) -> dict:
    """Run the requested benches, append trajectory entries, return results."""
    root = Path(out_dir) if out_dir else Path.cwd()
    root.mkdir(parents=True, exist_ok=True)
    label = label or f"avmon-bench-{scale}"
    produced: Dict[str, dict] = {}
    if which in ("micro", "all"):
        micro = run_micro_bench(scale)
        append_entry(root / MICRO_FILENAME, _entry(label, scale, micro))
        produced["micro"] = micro
        print(f"bench: micro -> {root / MICRO_FILENAME}", file=out)
    if which in ("sweep", "all"):
        sweep_results = run_sweep_bench(scale, scale_out=scale_out)
        append_entry(root / SWEEP_FILENAME, _entry(label, scale, sweep_results))
        produced["sweep"] = sweep_results
        print(
            f"bench: sweep ({sweep_results['total_wall_s']}s serial) -> "
            f"{root / SWEEP_FILENAME}",
            file=out,
        )
    # The serving-load and backend-comparison benches are deliberately NOT
    # part of "all": the CI perf-smoke determinism gate runs `bench all`
    # twice and its contract stays micro+sweep; serve and fleet have their
    # own gates in the serve-smoke and fleet-smoke jobs.
    if which == "fleet":
        backend_results = run_backend_bench(scale)
        append_entry(root / SWEEP_FILENAME, _entry(label, scale, backend_results))
        produced["fleet"] = backend_results
        print(
            f"bench: fleet ({backend_results['cells']} cells x "
            f"{len(backend_results['variants'])} backends, byte_identical="
            f"{backend_results['byte_identical']}) -> {root / SWEEP_FILENAME}",
            file=out,
        )
    if which == "serve":
        from ..serve.bench import run_serve_bench

        serve_results = run_serve_bench(scale)
        append_entry(root / SERVE_FILENAME, _entry(label, scale, serve_results))
        produced["serve"] = serve_results
        print(
            f"bench: serve ({serve_results['requests_total']} requests, "
            f"{serve_results['total_wall_s']}s) -> {root / SERVE_FILENAME}",
            file=out,
        )
    return produced
