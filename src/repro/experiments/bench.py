"""Machine-readable performance trajectory: micro and sweep benchmarks.

``avmon bench`` measures the simulator's hot paths (micro) and the serial
figure-sweep workload (sweep), then *appends* the results to
``BENCH_micro.json`` / ``BENCH_sweep.json`` — one entry per invocation, so
the files accumulate a commit-over-commit performance trajectory instead of
overwriting history.

Every entry carries two kinds of numbers:

* **wall times** — machine-dependent, for humans and for before/after
  comparisons on one box;
* **deterministic counters** — hash evaluations, processed events, relation
  index sizes, summary checksums and store cache keys.  These are
  byte-stable per seed and Python-version independent, so CI can gate on
  them without flaky wall-clock thresholds: a counter that moves means the
  simulation's work (or its on-disk cache contract) changed, not the
  hardware.
"""

from __future__ import annotations

import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..core.condition import ConsistencyCondition
from ..core.hashing import hash_pair, hash_pair_u64
from ..core.relation import MonitorRelation
from ..sim.engine import Simulator

__all__ = [
    "MICRO_FILENAME",
    "SWEEP_FILENAME",
    "SERVE_FILENAME",
    "run_micro_bench",
    "run_sweep_bench",
    "append_entry",
    "run_bench",
]

MICRO_FILENAME = "BENCH_micro.json"
SWEEP_FILENAME = "BENCH_sweep.json"
SERVE_FILENAME = "BENCH_serve.json"
BENCH_SCHEMA = 1

#: Micro-bench sizing per scale: (hash calls, condition checks, relation
#: universe, relation probes, engine events, network messages).
_MICRO_SIZES = {
    "paper": (200_000, 300_000, 10_000, 20, 200_000, 100_000),
    "bench": (200_000, 300_000, 10_000, 20, 200_000, 100_000),
    "test": (20_000, 30_000, 2_000, 10, 20_000, 10_000),
}


def _timed(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_micro_bench(scale: str = "bench") -> Dict[str, dict]:
    """Measure the hot-path primitives; returns ``{metric: payload}``.

    Payloads mix wall numbers (``wall_s``, ``per_sec``) with deterministic
    counters (``evaluations``, ``events``) where the primitive has one.
    """
    try:
        hash_calls, checks, universe, probes, events, messages = _MICRO_SIZES[scale]
    except KeyError:
        raise ValueError(
            f"unknown bench scale {scale!r}; expected one of {sorted(_MICRO_SIZES)}"
        ) from None
    results: Dict[str, dict] = {}

    for algorithm in ("md5", "splitmix64"):
        wall = _timed(
            lambda: [hash_pair(12345, 67890, algorithm) for _ in range(hash_calls)]
        )
        results[f"hash_pair_{algorithm}"] = {
            "calls": hash_calls,
            "wall_s": round(wall, 4),
            "per_sec": round(hash_calls / wall),
        }

    # Integer-domain condition checks over a fixed random pair workload
    # (memo-free: every check is a real hash + integer compare).
    for algorithm in ("md5", "splitmix64"):
        condition = ConsistencyCondition(k=13, n=10_000, hash_algorithm=algorithm)
        rng = random.Random(1)
        pairs = [(rng.randrange(2000), rng.randrange(2000)) for _ in range(checks)]
        holds = condition.holds

        def check_all() -> None:
            for a, b in pairs:
                holds(a, b)

        wall = _timed(check_all)
        results[f"condition_check_{algorithm}"] = {
            "checks": checks,
            "evaluations": condition.hash_evaluations,
            "wall_s": round(wall, 4),
            "per_sec": round(checks / wall),
        }

    # Relation warm scan: materialise TS for `probes` nodes over a
    # `universe`-id universe through the chunked scan kernels.
    for algorithm in ("md5", "splitmix64"):
        condition = ConsistencyCondition(k=13, n=10_000, hash_algorithm=algorithm)
        relation = MonitorRelation(condition)
        relation.add_nodes(range(universe))

        def scan_all() -> None:
            for probe in range(probes):
                relation.targets_of(probe)

        wall = _timed(scan_all)
        results[f"relation_scan_n{universe}_{algorithm}"] = {
            "evaluations": condition.hash_evaluations,
            "index_entries": relation.index_entries(),
            "wall_s": round(wall, 4),
            "pairs_per_sec": round(condition.hash_evaluations / wall),
        }

    # Event-engine throughput: cancellable handles vs the no-handle lane.
    def run_schedule() -> int:
        sim = Simulator()
        for index in range(events):
            sim.schedule(float(index % 60), _noop)
        sim.run_until(60.0)
        return sim.processed_events

    def run_schedule_call() -> int:
        sim = Simulator()
        for index in range(events):
            sim.schedule_call(float(index % 60), _noop)
        sim.run_until(60.0)
        return sim.processed_events

    for name, runner in (("engine_schedule", run_schedule),
                         ("engine_schedule_call", run_schedule_call)):
        start = time.perf_counter()
        processed = runner()
        wall = time.perf_counter() - start
        results[name] = {
            "events": processed,
            "wall_s": round(wall, 4),
            "events_per_sec": round(processed / wall),
        }

    # Full network delivery path: send -> heap -> deliver -> handler.
    from ..net.network import Network, SimHost

    sim = Simulator()
    network = Network(sim, rng=random.Random(0))
    sender = SimHost(network, 0, random.Random(1))
    receiver = SimHost(network, 1, random.Random(2))
    sender.attach(_SinkNode())
    receiver.attach(_SinkNode())
    sender.bring_up()
    receiver.bring_up()
    from ..core.messages import CvPing

    message = CvPing(0, 1)
    send = sender.send

    def pump() -> None:
        for _ in range(messages):
            send(1, message)
        sim.run_until(1e9)

    wall = _timed(pump)
    results["network_delivery"] = {
        "messages": messages,
        "events": sim.processed_events,
        "wall_s": round(wall, 4),
        "messages_per_sec": round(messages / wall),
    }
    return results


def _noop() -> None:
    return None


class _SinkNode:
    def handle_message(self, message) -> None:
        return None


def run_sweep_bench(scale: str = "bench", *, scale_out: Optional[bool] = None) -> dict:
    """Serial figure-sweep workload with per-cell deterministic counters.

    Runs the scale's SYNTH N-grid over two seeds exactly as
    ``benchmarks/bench_sweep.py`` does serially, recording per cell the
    wall time plus: processed events, hash evaluations, relation index
    size, the summary JSON's SHA-256 and the disk store's cache key.  The
    latter two pin the byte-identity and cache-address contracts into the
    trajectory file — any drift is visible in the diff.

    With *scale_out* (default: only at ``bench``/``paper`` scale) a
    shortened-window ``STAT N=10,000`` cell demonstrates the scale-out
    regime the integer-domain condition and allocation-lean engine exist
    for; the pre-optimisation simulator could not hold its O(N²) condition
    memo in memory at this size.
    """
    from .runner import SimulationConfig, run_simulation
    from .scenarios import n_values, scenario
    from .store import config_key, stable_key_hash

    if scale_out is None:
        scale_out = scale != "test"

    cells: List[dict] = []
    total_wall = 0.0

    def run_cell(label: str, config) -> None:
        nonlocal total_wall
        start = time.perf_counter()
        result = run_simulation(config)
        wall = time.perf_counter() - start
        total_wall += wall
        summary_json = result.summary().to_json()
        relation = result.cluster.relation
        condition = relation.condition
        cells.append(
            {
                "label": label,
                "model": config.model_key,
                "n": config.n,
                "seed": config.seed,
                "wall_s": round(wall, 3),
                "events_processed": result.events_processed,
                "hash_evaluations": condition.hash_evaluations,
                "relation_index_entries": relation.index_entries(),
                "universe": relation.universe_size(),
                "summary_sha256": hashlib.sha256(
                    summary_json.encode("utf-8")
                ).hexdigest(),
                "store_key": stable_key_hash(config_key(config)),
            }
        )

    for n in n_values(scale):
        for seed in (1, 2):
            run_cell(f"SYNTH-n{n}-s{seed}", scenario("SYNTH", n, scale, seed=seed))

    if scale_out:
        # Shortened window so the cell stays minutes, not hours; the point
        # is that N=10,000 runs at all (and how fast the substrate is).
        config = SimulationConfig(
            model="STAT",
            n=10_000,
            duration=1500.0,
            warmup=300.0,
            sample_interval=300.0,
            label="scale-out",
        )
        run_cell("STAT-n10000-s1", config)

    return {"cells": cells, "total_wall_s": round(total_wall, 2)}


def _entry(label: str, scale: str, results: dict) -> dict:
    return {
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def append_entry(path: Path, entry: dict) -> None:
    """Append *entry* to the trajectory file at *path* (created if absent).

    Unreadable/foreign content is preserved by renaming, never silently
    overwritten.
    """
    payload = {"schema": BENCH_SCHEMA, "entries": []}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
                payload = existing
            else:
                path.rename(path.with_suffix(path.suffix + ".bak"))
        except (OSError, ValueError):
            path.rename(path.with_suffix(path.suffix + ".bak"))
    payload["schema"] = BENCH_SCHEMA
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_bench(
    which: str = "all",
    scale: str = "bench",
    out_dir: Optional[str] = None,
    label: str = "",
    scale_out: Optional[bool] = None,
    out=sys.stdout,
) -> dict:
    """Run the requested benches, append trajectory entries, return results."""
    root = Path(out_dir) if out_dir else Path.cwd()
    root.mkdir(parents=True, exist_ok=True)
    label = label or f"avmon-bench-{scale}"
    produced: Dict[str, dict] = {}
    if which in ("micro", "all"):
        micro = run_micro_bench(scale)
        append_entry(root / MICRO_FILENAME, _entry(label, scale, micro))
        produced["micro"] = micro
        print(f"bench: micro -> {root / MICRO_FILENAME}", file=out)
    if which in ("sweep", "all"):
        sweep_results = run_sweep_bench(scale, scale_out=scale_out)
        append_entry(root / SWEEP_FILENAME, _entry(label, scale, sweep_results))
        produced["sweep"] = sweep_results
        print(
            f"bench: sweep ({sweep_results['total_wall_s']}s serial) -> "
            f"{root / SWEEP_FILENAME}",
            file=out,
        )
    # The serving-load bench is deliberately NOT part of "all": the CI
    # perf-smoke determinism gate runs `bench all` twice and its contract
    # stays micro+sweep; serve has its own gate in the serve-smoke job.
    if which == "serve":
        from ..serve.bench import run_serve_bench

        serve_results = run_serve_bench(scale)
        append_entry(root / SERVE_FILENAME, _entry(label, scale, serve_results))
        produced["serve"] = serve_results
        print(
            f"bench: serve ({serve_results['requests_total']} requests, "
            f"{serve_results['total_wall_s']}s) -> {root / SERVE_FILENAME}",
            file=out,
        )
    return produced
