"""Result cache shared across figure computations.

Figures 3–10 all consume the same base runs (three churn models × the N
sweep); the cache keys runs by their full configuration so each distinct
simulation executes once per process, whether it is requested by the fig-3
module, the fig-9 module or a benchmark.

Two layers are cached:

* full :class:`SimulationResult` objects (:meth:`SimulationCache.get`) for
  figure code that inspects the live cluster, and
* flat :class:`~repro.experiments.summary.SimulationSummary` objects
  (:meth:`SimulationCache.get_summary`), which are what parallel sweeps
  produce — :meth:`SimulationCache.prime` fans missing runs out over a
  process pool through the orchestrator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .orchestrator import ProgressFn, run_configs
from .runner import SimulationConfig, SimulationResult, run_simulation
from .summary import SimulationSummary, summarize

__all__ = ["SimulationCache", "default_cache"]


class SimulationCache:
    """Memoises :func:`run_simulation` on a structural config key."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple, SimulationResult] = {}
        self._summaries: Dict[Tuple, SimulationSummary] = {}

    @staticmethod
    def _latency_key(latency) -> Optional[Tuple]:
        """Structural key for a pluggable latency model.

        Keyed on type plus full-precision attributes — reprs are for humans
        (LogNormalLatency rounds, arbitrary objects embed addresses) and
        would collide or never match.
        """
        if latency is None:
            return None
        try:
            attributes = tuple(sorted(vars(latency).items()))
        except TypeError:  # __slots__ or C types: fall back to repr
            attributes = (repr(latency),)
        return (type(latency).__name__, attributes)

    @staticmethod
    def key_of(config: SimulationConfig) -> Tuple:
        avmon = config.resolved_avmon()
        # The full content hash: shallow shapes like (len, duration) collide
        # for traces generated from different seeds or generators.
        trace_fingerprint = None
        if config.trace is not None:
            trace_fingerprint = config.trace.content_hash()
        return (
            config.model_key,
            config.n,
            config.duration,
            config.warmup,
            config.control_fraction,
            config.seed,
            config.churn_per_hour,
            config.birth_death_per_day,
            config.overreport_fraction,
            config.latency_low,
            config.latency_high,
            SimulationCache._latency_key(config.latency),
            config.sample_interval,
            trace_fingerprint,
            (
                avmon.n_expected,
                avmon.k,
                avmon.cvs,
                avmon.protocol_period,
                avmon.monitoring_period,
                avmon.forgetful_tau,
                avmon.forgetful_c,
                avmon.enable_forgetful,
                avmon.enable_pr2,
                avmon.ping_timeout,
                avmon.entry_bytes,
                avmon.hash_algorithm,
            ),
        )

    def get(self, config: SimulationConfig) -> SimulationResult:
        key = self.key_of(config)
        result = self._runs.get(key)
        if result is None:
            result = run_simulation(config)
            self._runs[key] = result
        return result

    def get_summary(self, config: SimulationConfig) -> SimulationSummary:
        """The flat summary for *config*, running the simulation if needed.

        Reuses a cached full result when one exists; a run executed here
        (serially) is kept as a full result too, so figure modules mixing
        summary and full-result access never simulate twice.
        """
        key = self.key_of(config)
        summary = self._summaries.get(key)
        if summary is None:
            summary = summarize(self.get(config))
            self._summaries[key] = summary
        return summary

    def prime(
        self,
        configs: Iterable[SimulationConfig],
        *,
        jobs: int = 1,
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Ensure summaries exist for every config; returns the number run.

        With ``jobs > 1`` the missing cells execute in a multiprocessing
        pool via the orchestrator (only summaries come back — worker-side
        full results cannot cross the process boundary).  ``jobs <= 1``
        runs serially in-process, which also retains the full results.
        """
        missing: List[SimulationConfig] = []
        seen = set()
        for config in configs:
            key = self.key_of(config)
            if key in self._summaries or key in seen:
                continue
            seen.add(key)
            missing.append(config)
        if not missing:
            return 0
        if jobs <= 1:
            for config in missing:
                self.get_summary(config)
        else:
            summaries = run_configs(missing, jobs=jobs, progress=progress)
            for config, summary in zip(missing, summaries):
                self._summaries[self.key_of(config)] = summary
        return len(missing)

    def __len__(self) -> int:
        return len(self._runs)

    def summary_count(self) -> int:
        return len(self._summaries)

    def clear(self) -> None:
        self._runs.clear()
        self._summaries.clear()


_DEFAULT: Optional[SimulationCache] = None


def default_cache() -> SimulationCache:
    """Process-wide cache used when callers do not supply one."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SimulationCache()
    return _DEFAULT
