"""Result cache shared across figure computations.

Figures 3–10 all consume the same base runs (three churn models × the N
sweep); the cache keys runs by their full configuration so each distinct
simulation executes once per process, whether it is requested by the fig-3
module, the fig-9 module or a benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .runner import SimulationConfig, SimulationResult, run_simulation

__all__ = ["SimulationCache", "default_cache"]


class SimulationCache:
    """Memoises :func:`run_simulation` on a structural config key."""

    def __init__(self) -> None:
        self._runs: Dict[Tuple, SimulationResult] = {}

    @staticmethod
    def key_of(config: SimulationConfig) -> Tuple:
        avmon = config.resolved_avmon()
        trace_fingerprint = None
        if config.trace is not None:
            trace_fingerprint = (
                len(config.trace),
                config.trace.duration,
                config.trace.born_before(config.trace.duration),
            )
        return (
            config.model_key,
            config.n,
            config.duration,
            config.warmup,
            config.control_fraction,
            config.seed,
            config.churn_per_hour,
            config.birth_death_per_day,
            config.overreport_fraction,
            config.latency_low,
            config.latency_high,
            config.sample_interval,
            trace_fingerprint,
            (
                avmon.n_expected,
                avmon.k,
                avmon.cvs,
                avmon.protocol_period,
                avmon.monitoring_period,
                avmon.forgetful_tau,
                avmon.forgetful_c,
                avmon.enable_forgetful,
                avmon.enable_pr2,
                avmon.ping_timeout,
                avmon.entry_bytes,
                avmon.hash_algorithm,
            ),
        )

    def get(self, config: SimulationConfig) -> SimulationResult:
        key = self.key_of(config)
        result = self._runs.get(key)
        if result is None:
            result = run_simulation(config)
            self._runs[key] = result
        return result

    def __len__(self) -> int:
        return len(self._runs)

    def clear(self) -> None:
        self._runs.clear()


_DEFAULT: Optional[SimulationCache] = None


def default_cache() -> SimulationCache:
    """Process-wide cache used when callers do not supply one."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SimulationCache()
    return _DEFAULT
