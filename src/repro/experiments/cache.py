"""Result cache shared across figure computations.

Figures 3–10 all consume the same base runs (three churn models × the N
sweep); the cache keys runs by their full configuration so each distinct
simulation executes once per process, whether it is requested by the fig-3
module, the fig-9 module or a benchmark.

Two layers are cached in memory:

* full :class:`SimulationResult` objects (:meth:`SimulationCache.get`) for
  callers that inspect the live cluster, and
* flat :class:`~repro.experiments.summary.SimulationSummary` objects
  (:meth:`SimulationCache.get_summary`), which are what the figures and
  parallel sweeps consume — :meth:`SimulationCache.prime` fans missing
  runs out over a process pool through the orchestrator.

A third, cross-process layer is optional: construct the cache with a
:class:`~repro.experiments.store.SummaryStore` and summaries are read from
and written to a content-addressed directory of JSON files, so a second
process (or a re-run after a crash) resumes instead of recomputing.  Full
results never reach the store — they own the live object graph and exist
only in the process that ran the simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from .backends import ExecutionBackend
from .orchestrator import ProgressFn, run_configs
from .runner import SimulationConfig, SimulationResult, run_simulation
from .store import SummaryStore, config_key, latency_key
from .summary import SimulationSummary, summarize

__all__ = ["SimulationCache", "default_cache"]


class SimulationCache:
    """Memoises :func:`run_simulation` on a structural config key.

    With *store*, summary lookups fall through to the disk store before
    simulating, and freshly computed summaries are written back — the
    cross-process resume layer the CLI exposes as ``--cache-dir``.
    """

    def __init__(
        self,
        store: Optional[SummaryStore] = None,
        *,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> None:
        self._runs: Dict[Tuple, SimulationResult] = {}
        self._summaries: Dict[Tuple, SimulationSummary] = {}
        self._store = store
        # Default execution backend for prime(); every figure runner that
        # fans out through this cache inherits it without new plumbing.
        self._backend = backend

    #: Structural key for a pluggable latency model (public attributes
    #: only — see :func:`repro.experiments.store.latency_key`).
    _latency_key = staticmethod(latency_key)

    #: Structural identity of one run; the store's content address derives
    #: from this key (see :func:`repro.experiments.store.config_key`).
    key_of = staticmethod(config_key)

    @property
    def store(self) -> Optional[SummaryStore]:
        return self._store

    @property
    def backend(self) -> Union[None, str, ExecutionBackend]:
        return self._backend

    def get(self, config: SimulationConfig) -> SimulationResult:
        key = self.key_of(config)
        result = self._runs.get(key)
        if result is None:
            result = run_simulation(config)
            self._runs[key] = result
        return result

    def get_summary(self, config: SimulationConfig) -> SimulationSummary:
        """The flat summary for *config*, running the simulation if needed.

        Lookup order: in-memory summaries, the disk store (when
        configured), then a serial in-process run.  A run executed here is
        kept as a full result too, so callers mixing summary and
        full-result access never simulate twice; its summary is written
        back to the store.
        """
        key = self.key_of(config)
        summary = self._summaries.get(key)
        if summary is not None:
            return summary
        if self._store is not None:
            summary = self._store.load(key)
            if summary is not None:
                self._summaries[key] = summary
                return summary
        summary = summarize(self.get(config))
        self._summaries[key] = summary
        if self._store is not None:
            self._store.save(key, summary)
        return summary

    def prime(
        self,
        configs: Iterable[SimulationConfig],
        *,
        jobs: int = 1,
        progress: Optional[ProgressFn] = None,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> int:
        """Ensure summaries exist for every config; returns the number
        actually simulated (store hits and memory hits count as zero).

        All missing cells execute through the orchestrator — serially
        in-process for ``jobs <= 1``, over a multiprocessing pool
        otherwise — and only flat summaries are retained either way.
        Priming never pins full :class:`SimulationResult` objects: they
        own the live cluster and network graph, and keeping one per cell
        made ``avmon run all`` grow without bound.
        """
        missing: List[SimulationConfig] = []
        seen = set()
        for config in configs:
            key = self.key_of(config)
            if key in self._summaries or key in seen:
                continue
            seen.add(key)
            missing.append(config)
        if not missing:
            return 0
        hits_before = self._store.hits if self._store is not None else 0
        summaries = run_configs(
            missing,
            jobs=jobs,
            progress=progress,
            store=self._store,
            backend=backend if backend is not None else self._backend,
        )
        for config, summary in zip(missing, summaries):
            self._summaries[self.key_of(config)] = summary
        resumed = (self._store.hits - hits_before) if self._store is not None else 0
        return len(missing) - resumed

    def __len__(self) -> int:
        return len(self._runs)

    def summary_count(self) -> int:
        return len(self._summaries)

    def clear(self) -> None:
        """Drop the in-memory layers (the disk store is left untouched)."""
        self._runs.clear()
        self._summaries.clear()


_DEFAULT: Optional[SimulationCache] = None


def default_cache() -> SimulationCache:
    """Process-wide cache used when callers do not supply one."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SimulationCache()
    return _DEFAULT
