"""Pluggable storage backends for the content-addressed summary store.

:class:`~repro.experiments.store.SummaryStore` owns the *addressing*
contract — which structural key maps to which object name, and how a
summary serialises — while a :class:`StoreBackend` owns the *bytes*:
where named objects live and how they are read, written, listed and
deleted.  Splitting the two lets every orchestration layer (sweeps, the
worker fleet, the serving tier) share one cache wherever it lives:

* :class:`FilesystemBackend` — the original layout: one
  ``<hash>.json`` file per entry under a local directory, atomic
  writes, corrupt files tolerated as misses.  The default, and what
  ``avmon store serve`` itself persists into.
* :class:`SharedStoreBackend` — a client for the small HTTP object
  protocol served by ``avmon store serve`` (see
  :mod:`repro.experiments.store_server`), so a fleet of sweep workers
  on many hosts — and multiple serve front ends — read-through and
  write-through one cache.

Error model (what :class:`SummaryStore` relies on):

* ``get`` returns the object's text, or ``None`` when the name is not
  stored; any other problem (unreadable file, unreachable store,
  non-2xx reply) raises :class:`OSError` — the store layer turns that
  into a warned miss, never a crashed sweep.
* ``put`` raises :class:`OSError` on failure; the store layer warns and
  carries on (the computed summary is already in hand).

Backends are cheap to construct and **picklable by spec**: ``spec()``
returns a plain string (a directory path or an ``http://`` URL) from
which :func:`backend_from_spec` — and therefore a worker process that
received only the string — reopens an equivalent backend.
"""

from __future__ import annotations

import abc
import http.client
import json
import os
import pathlib
import re
import time
import urllib.parse
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..ioutils import atomic_write_text

__all__ = [
    "StoreEntry",
    "StoreBackend",
    "FilesystemBackend",
    "SharedStoreBackend",
    "backend_from_spec",
    "is_url_spec",
    "valid_object_name",
]

#: Object names the protocol accepts: flat, extension-bearing, no path
#: tricks.  Both backends and the server enforce this, so a hostile name
#: can never escape the store directory.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def valid_object_name(name: str) -> bool:
    """Whether *name* is a legal flat object name (no separators/``..``)."""
    return bool(_NAME_RE.match(name)) and ".." not in name


def _check_name(name: str) -> str:
    if not valid_object_name(name):
        raise ValueError(f"illegal store object name: {name!r}")
    return name


@dataclass(frozen=True)
class StoreEntry:
    """One stored object: its flat name and size in bytes."""

    name: str
    size: int


class StoreBackend(abc.ABC):
    """Named-object storage underneath :class:`SummaryStore`."""

    @abc.abstractmethod
    def get(self, name: str) -> Optional[str]:
        """The stored text for *name*, or None when absent (OSError on error)."""

    @abc.abstractmethod
    def put(self, name: str, text: str) -> None:
        """Store *text* under *name* (OSError on failure)."""

    @abc.abstractmethod
    def delete(self, name: str) -> bool:
        """Remove *name*; True when an object was actually deleted."""

    @abc.abstractmethod
    def entries(self) -> Tuple[StoreEntry, ...]:
        """Every stored object, sorted by name."""

    @abc.abstractmethod
    def spec(self) -> str:
        """A plain string that reopens this backend (path or URL)."""

    def exists(self, name: str) -> bool:
        return self.get(name) is not None

    def location(self, name: str) -> Union[pathlib.Path, str]:
        """Where *name* lives, for humans (a path or a URL)."""
        return f"{self.spec()}/{name}"

    def describe(self) -> str:
        return self.spec()

    def clear(self) -> int:
        """Delete every object; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            if self.delete(entry.name):
                removed += 1
        return removed

    def stat(self) -> dict:
        """Totals for inspection tooling (``avmon cache stat`` / ``store stat``)."""
        entries = self.entries()
        return {
            "dir": self.describe(),
            "entries": len(entries),
            "total_bytes": sum(entry.size for entry in entries),
        }


class FilesystemBackend(StoreBackend):
    """The original store layout: one file per object under *root*."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def get(self, name: str) -> Optional[str]:
        try:
            return (self.root / _check_name(name)).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def compact(self, *, tmp_age: float = 60.0) -> dict:
        """Sweep the directory of write debris: stale ``*.tmp*`` scratch
        files (left by killed writers) and ``.json`` entries that no
        longer parse (torn by a crashed non-atomic writer; readers treat
        them as misses forever, so they are pure dead weight).

        *tmp_age* guards in-flight writes: scratch files younger than it
        are left alone.  Returns ``{"removed_tmp": n, "removed_corrupt": m}``.
        """
        removed_tmp = removed_corrupt = 0
        now = time.time()
        for path in self.root.iterdir():
            if not path.is_file():
                continue
            if ".tmp" in path.name:
                try:
                    if now - path.stat().st_mtime >= tmp_age:
                        path.unlink()
                        removed_tmp += 1
                except OSError:
                    continue
            elif path.suffix == ".json":
                try:
                    json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    try:
                        path.unlink()
                        removed_corrupt += 1
                    except OSError:
                        continue
        return {"removed_tmp": removed_tmp, "removed_corrupt": removed_corrupt}

    def put(self, name: str, text: str) -> None:
        atomic_write_text(self.root / _check_name(name), text)

    def delete(self, name: str) -> bool:
        path = self.root / _check_name(name)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def exists(self, name: str) -> bool:
        return (self.root / _check_name(name)).exists()

    def entries(self) -> Tuple[StoreEntry, ...]:
        found = []
        for path in self.root.glob("*.json"):
            if not path.is_file():
                continue
            try:
                size = path.stat().st_size
            except OSError:
                continue  # vanished under us (a concurrent clear)
            found.append(StoreEntry(path.name, size))
        return tuple(sorted(found, key=lambda entry: entry.name))

    def location(self, name: str) -> pathlib.Path:
        return self.root / name

    def spec(self) -> str:
        return str(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FilesystemBackend({str(self.root)!r})"


class SharedStoreBackend(StoreBackend):
    """Client for the ``avmon store serve`` HTTP object protocol.

    Speaks plain HTTP/1.1 via :mod:`http.client` (synchronous — worker
    processes call it from straight-line simulation code).  Object text
    travels as a JSON string field, so stored bytes round-trip exactly;
    the server persists them through a :class:`FilesystemBackend`, which
    keeps the on-disk layout identical to a local cache directory.

    One connection is kept alive per backend instance and transparently
    re-established (with bounded retries and backoff) when the daemon
    restarts or the connection drops — a shared cache briefly away is a
    cache miss, never a dead sweep.  Instances pickle cleanly: only the
    URL travels; the socket is per-process, lazily opened.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.2,
        auth_token: Optional[str] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http",) or not parsed.hostname:
            raise ValueError(
                f"shared store URL must be http://host:port, got {url!r}"
            )
        self.url = url.rstrip("/")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Bearer token for daemons started with ``--auth-token``; the
        #: env fallback keeps ``spec()`` a plain URL (workers re-open
        #: backends from the spec alone and still authenticate).
        self.auth_token = (
            auth_token
            if auth_token is not None
            else os.environ.get("AVMON_STORE_TOKEN") or None
        )
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_connection"] = None
        return state

    # -- transport ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _reset(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:  # noqa: BLE001 - best-effort socket teardown
                pass
            self._connection = None

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One round trip; reconnects and retries on transport failure."""
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        if self.auth_token:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        last_error: Optional[Exception] = None
        # Attempt 0 fires immediately; retry i (0-based) sleeps
        # backoff * 2**i first, pinning the schedule to
        # [backoff, 2*backoff, 4*backoff, ...] exactly.
        for retry_number in range(self.retries + 1):
            if retry_number:
                time.sleep(self.retry_backoff * (2 ** (retry_number - 1)))
            try:
                connection = self._connect()
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                self._reset()
                last_error = error
                continue
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError as error:
                self._reset()
                last_error = error
                continue
            if not isinstance(parsed, dict):
                parsed = {"value": parsed}
            return response.status, parsed
        raise OSError(
            f"shared store {self.url} unreachable after "
            f"{self.retries + 1} attempts ({last_error})"
        )

    # -- protocol ----------------------------------------------------------

    def get(self, name: str) -> Optional[str]:
        status, payload = self._request("GET", f"/objects/{_check_name(name)}")
        if status == 404:
            return None
        if status != 200 or not isinstance(payload.get("text"), str):
            raise OSError(
                f"shared store GET {name} failed: HTTP {status} {payload}"
            )
        return payload["text"]

    def put(self, name: str, text: str) -> None:
        status, payload = self._request(
            "PUT", f"/objects/{_check_name(name)}", {"text": text}
        )
        if status != 200:
            raise OSError(
                f"shared store PUT {name} failed: HTTP {status} {payload}"
            )

    def delete(self, name: str) -> bool:
        status, payload = self._request(
            "DELETE", f"/objects/{_check_name(name)}"
        )
        if status == 404:
            return False
        if status != 200:
            raise OSError(
                f"shared store DELETE {name} failed: HTTP {status} {payload}"
            )
        return bool(payload.get("deleted"))

    def entries(self) -> Tuple[StoreEntry, ...]:
        status, payload = self._request("GET", "/objects")
        if status != 200 or not isinstance(payload.get("entries"), list):
            raise OSError(f"shared store listing failed: HTTP {status}")
        return tuple(
            StoreEntry(entry["name"], int(entry["bytes"]))
            for entry in payload["entries"]
        )

    def stat(self) -> dict:
        status, payload = self._request("GET", "/stat")
        if status != 200:
            raise OSError(f"shared store stat failed: HTTP {status}")
        payload.setdefault("dir", self.url)
        return payload

    def call(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One JSON round trip to an arbitrary daemon endpoint.

        The coordination clients (task board, cell claims) speak through
        this so they inherit the keep-alive connection, retry schedule
        and bearer auth without re-growing a transport.
        """
        return self._request(method, path, payload)

    def compact(self, *, tmp_age: float = 60.0) -> dict:
        """Ask the daemon to compact its directory (auth-gated)."""
        status, payload = self._request(
            "POST", "/compact", {"tmp_age": tmp_age}
        )
        if status != 200:
            raise OSError(
                f"shared store compact failed: HTTP {status} {payload}"
            )
        return payload

    def location(self, name: str) -> str:
        return f"{self.url}/objects/{name}"

    def spec(self) -> str:
        return self.url

    def close(self) -> None:
        self._reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedStoreBackend({self.url!r})"


def is_url_spec(spec: Union[str, pathlib.Path]) -> bool:
    """Whether *spec* names a shared store (URL) rather than a directory."""
    return isinstance(spec, str) and spec.startswith(("http://", "https://"))


def backend_from_spec(spec: Union[str, pathlib.Path]) -> StoreBackend:
    """Reopen a backend from its :meth:`StoreBackend.spec` string.

    ``http://host:port`` becomes a :class:`SharedStoreBackend`; anything
    else is a filesystem directory.  This is how worker processes — which
    receive only the picklable spec — attach to the sweep's cache.
    """
    if is_url_spec(spec):
        return SharedStoreBackend(str(spec))
    return FilesystemBackend(spec)
