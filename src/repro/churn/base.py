"""Churn-model interface.

A churn model decides *when* nodes join, leave, are born and die; the
cluster (see :mod:`repro.experiments.runner`) decides *what happens* on each
transition (protocol actions, metric bookkeeping).  Models talk to the
cluster through the narrow :class:`ChurnDriver` interface so they can be
unit-tested against a fake driver.

The system model (Section 3): nodes may leave/fail and rejoin at any time;
births create brand-new nodes; deaths are silent and final.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

from ..core.hashing import NodeId
from ..sim.engine import Simulator

__all__ = ["ChurnDriver", "ChurnModel"]


class ChurnDriver(Protocol):
    """What a churn model may ask of the cluster."""

    sim: Simulator

    def request_leave(self, node: NodeId) -> None:
        """Take an alive node down (it may rejoin later)."""
        ...

    def request_rejoin(self, node: NodeId) -> None:
        """Bring a down (non-dead) node back up."""
        ...

    def request_birth(self) -> NodeId:
        """Create a brand-new node, joined immediately; returns its id."""
        ...

    def request_death(self, node: NodeId) -> None:
        """Silently and permanently remove a node."""
        ...

    def random_alive(self) -> Optional[NodeId]: ...

    def is_alive(self, node: NodeId) -> bool: ...

    def is_dead(self, node: NodeId) -> bool: ...


class ChurnModel:
    """Base class: a static system (the STAT model of Section 5).

    Subclasses override the hooks they need.  ``setup`` runs once at the
    start of the simulation; ``on_node_up``/``on_node_down`` are invoked by
    the cluster after every state change (including the initial joins and
    control-group joins) so the model can schedule that node's next
    transition; ``on_node_death`` lets the model cancel anything pending.
    """

    name = "STAT"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng if rng is not None else random.Random(0)
        self.driver: Optional[ChurnDriver] = None

    def bind(self, driver: ChurnDriver) -> None:
        self.driver = driver

    def setup(self) -> None:
        """Install global processes (birth/death streams); default: none."""

    def on_node_up(self, node: NodeId) -> None:
        """Called right after *node* came up; default: stays up forever."""

    def on_node_down(self, node: NodeId) -> None:
        """Called right after *node* went down; default: never rejoins."""

    def on_node_death(self, node: NodeId) -> None:
        """Called right after *node* died; default: nothing to cancel."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
