"""Trace-driven churn: replay an :class:`AvailabilityTrace` into the cluster.

The PL and OV experiments of Section 5 inject measured availability traces
"as such" into the simulation.  :class:`TraceReplayModel` schedules every
join and leave event of a trace; nodes are born (created in the cluster) at
their first join.  A node whose trace marks it dead simply never rejoins —
deaths are silent, exactly as in the system model.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..core.hashing import NodeId
from ..registry import register
from ..traces.format import AvailabilityTrace
from .base import ChurnModel

__all__ = ["TraceReplayModel"]


class TraceReplayModel(ChurnModel):
    """Replays a trace's join/leave schedule verbatim.

    One adjustment at the trace boundary: nodes whose first session starts
    at exactly t = 0 were already in the system when the measurement began,
    so their joins are jittered across *bootstrap_window* seconds instead
    of forming an instantaneous thundering herd into an empty overlay
    (which would charge the overlay's cold start against their discovery
    times — a transient the measured system did not have).
    """

    name = "TRACE"

    def __init__(
        self,
        trace: AvailabilityTrace,
        rng: Optional[random.Random] = None,
        *,
        name: Optional[str] = None,
        bootstrap_window: float = 300.0,
    ) -> None:
        super().__init__(rng)
        self.trace = trace
        if bootstrap_window < 0:
            raise ValueError(
                f"bootstrap_window must be non-negative, got {bootstrap_window}"
            )
        self.bootstrap_window = bootstrap_window
        if name is not None:
            self.name = name
        #: trace node id -> cluster node id (assigned at first join).
        self._cluster_ids: Dict[int, NodeId] = {}

    def setup(self) -> None:
        for event in self.trace.events():
            if event.kind == "join":
                time = event.time
                if time == 0.0 and self.bootstrap_window > 0.0:
                    session_end = self.trace.node(event.node_id).sessions[0].end
                    time = self.rng.uniform(
                        0.0, min(self.bootstrap_window, session_end / 2.0)
                    )
                self.driver.sim.schedule_call_at(time, self._join, event.node_id)
            elif event.time < self.trace.duration:
                # A session clamped at the trace's end means "still up when
                # the measurement stopped", not a departure.
                self.driver.sim.schedule_call_at(
                    event.time, self._leave, event.node_id
                )

    def _join(self, trace_node: int) -> None:
        cluster_id = self._cluster_ids.get(trace_node)
        if cluster_id is None:
            # First appearance: birth a brand-new cluster node.
            self._cluster_ids[trace_node] = self.driver.request_birth()
        elif not self.driver.is_alive(cluster_id):
            self.driver.request_rejoin(cluster_id)

    def _leave(self, trace_node: int) -> None:
        cluster_id = self._cluster_ids.get(trace_node)
        if cluster_id is not None and self.driver.is_alive(cluster_id):
            self.driver.request_leave(cluster_id)

    def cluster_id_of(self, trace_node: int) -> Optional[NodeId]:
        """The cluster id assigned to a trace node (None before first join)."""
        return self._cluster_ids.get(trace_node)


def _make_replay(model_key: str):
    def factory(
        n_stable: int,
        rng: Optional[random.Random] = None,
        *,
        trace: Optional[AvailabilityTrace] = None,
        bootstrap_window: float = 300.0,
        **_params,
    ) -> TraceReplayModel:
        if trace is None:
            raise ValueError(f"churn model {model_key!r} requires a trace")
        return TraceReplayModel(
            trace, rng, name=model_key, bootstrap_window=bootstrap_window
        )

    return factory


# The three trace-replay spellings the paper's experiments use: generic
# TRACE plus the PL / OV labels (which also select the trace generator).
for _key in ("TRACE", "PL", "OV"):
    register("churn", _key, _make_replay(_key))
del _key
