"""Synthetic churn models of Section 5: STAT, SYNTH, SYNTH-BD(2).

* **STAT** — a static network with no churn (the base
  :class:`~repro.churn.base.ChurnModel`).

* **SYNTH** — nodes join and leave according to exponential distributions
  (Poisson processes), no births or deaths.  The paper targets a 20 %
  per-hour churn rate, i.e. system-wide leave and rejoin rates
  ``λ_l = λ_r = 0.2·N/60`` per minute.  With ≈ N alive nodes this means a
  per-node leave rate of 0.2/h (mean session 5 h); symmetric down-times give
  a stationary alive count of N when the total population is 2 N, which is
  how the runner provisions SYNTH experiments.

* **SYNTH-BD** — SYNTH plus node births and deaths as Poisson processes at a
  20 % per-day rate: ``λ_b = λ_d = 0.2·N/1440`` per minute.  Births create
  brand-new nodes (which then follow SYNTH dynamics); deaths silently and
  permanently remove a random alive node.

* **SYNTH-BD2** — SYNTH-BD with the birth/death rate doubled (0.4·N/day),
  used by Figures 15–16 to stress very high churn.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..core.hashing import NodeId
from ..registry import register, resolve
from ..sim.engine import EventHandle
from .base import ChurnModel

__all__ = ["StatModel", "SynthModel", "SynthBdModel", "make_model"]


class StatModel(ChurnModel):
    """Static network: everyone stays up (paper's STAT)."""

    name = "STAT"


class SynthModel(ChurnModel):
    """Poisson join/leave churn (paper's SYNTH).

    *churn_per_hour* is the per-node leave rate as a fraction of the stable
    size per hour (0.2 reproduces the paper); mean session and mean downtime
    are both ``1 / rate``.
    """

    name = "SYNTH"

    #: Down nodes provisioned per alive node at t=0 (2N total population).
    initial_down_per_alive = 1.0

    def __init__(
        self,
        n_stable: int,
        churn_per_hour: float = 0.2,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(rng)
        if n_stable <= 0:
            raise ValueError(f"n_stable must be positive, got {n_stable}")
        if churn_per_hour <= 0:
            raise ValueError(f"churn_per_hour must be positive, got {churn_per_hour}")
        self.n_stable = n_stable
        self.churn_per_hour = churn_per_hour
        #: Mean up-session (and mean down-time) in seconds: 5 h at 20 %/h.
        self.mean_session = 3600.0 / churn_per_hour
        self._transitions: Dict[NodeId, EventHandle] = {}

    # -- per-node alternating renewal -------------------------------------

    def on_node_up(self, node: NodeId) -> None:
        self._schedule_transition(node, self._leave)

    def on_node_down(self, node: NodeId) -> None:
        self._schedule_transition(node, self._rejoin)

    def on_node_death(self, node: NodeId) -> None:
        handle = self._transitions.pop(node, None)
        if handle is not None:
            handle.cancel()

    def _schedule_transition(self, node: NodeId, action) -> None:
        previous = self._transitions.pop(node, None)
        if previous is not None:
            previous.cancel()
        delay = self.rng.expovariate(1.0 / self.mean_session)
        self._transitions[node] = self.driver.sim.schedule(
            delay, self._fire, node, action
        )

    def _fire(self, node: NodeId, action) -> None:
        self._transitions.pop(node, None)
        if self.driver.is_dead(node):
            return
        action(node)

    def _leave(self, node: NodeId) -> None:
        if self.driver.is_alive(node):
            self.driver.request_leave(node)

    def _rejoin(self, node: NodeId) -> None:
        if not self.driver.is_alive(node):
            self.driver.request_rejoin(node)


class SynthBdModel(SynthModel):
    """SYNTH plus Poisson births and silent deaths (paper's SYNTH-BD)."""

    name = "SYNTH-BD"

    def __init__(
        self,
        n_stable: int,
        churn_per_hour: float = 0.2,
        birth_death_per_day: float = 0.2,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(n_stable, churn_per_hour, rng)
        if birth_death_per_day <= 0:
            raise ValueError(
                f"birth_death_per_day must be positive, got {birth_death_per_day}"
            )
        self.birth_death_per_day = birth_death_per_day
        #: System-wide birth (= death) rate, events per second.
        self.event_rate = birth_death_per_day * n_stable / 86400.0
        if birth_death_per_day >= 0.4 - 1e-12:
            self.name = "SYNTH-BD2"

    def setup(self) -> None:
        self._schedule_birth()
        self._schedule_death()

    def _schedule_birth(self) -> None:
        delay = self.rng.expovariate(self.event_rate)
        self.driver.sim.schedule_call(delay, self._birth)

    def _schedule_death(self) -> None:
        delay = self.rng.expovariate(self.event_rate)
        self.driver.sim.schedule_call(delay, self._death)

    def _birth(self) -> None:
        self.driver.request_birth()
        self._schedule_birth()

    def _death(self) -> None:
        victim = self.driver.random_alive()
        if victim is not None:
            self.driver.request_death(victim)
        self._schedule_death()


# -- registry factories ----------------------------------------------------
#
# Every churn model registers under the "churn" kind with the uniform
# signature ``factory(n_stable, rng=None, **params)``; unknown params are
# ignored so one call site (the runner) can pass the full parameter set and
# let each model pick what it needs.  Third-party models plug in the same
# way — see :mod:`repro.registry`.


@register("churn", "STAT")
def _make_stat(n_stable: int, rng: Optional[random.Random] = None, **_params) -> ChurnModel:
    return StatModel(rng)


@register("churn", "SYNTH")
def _make_synth(
    n_stable: int,
    rng: Optional[random.Random] = None,
    *,
    churn_per_hour: float = 0.2,
    **_params,
) -> ChurnModel:
    return SynthModel(n_stable, churn_per_hour, rng)


@register("churn", "SYNTH-BD")
def _make_synth_bd(
    n_stable: int,
    rng: Optional[random.Random] = None,
    *,
    churn_per_hour: float = 0.2,
    birth_death_per_day: float = 0.2,
    **_params,
) -> ChurnModel:
    return SynthBdModel(n_stable, churn_per_hour, birth_death_per_day, rng)


@register("churn", "SYNTH-BD2")
def _make_synth_bd2(
    n_stable: int,
    rng: Optional[random.Random] = None,
    *,
    churn_per_hour: float = 0.2,
    birth_death_per_day: float = 0.2,
    **_params,
) -> ChurnModel:
    return SynthBdModel(n_stable, churn_per_hour, 2.0 * birth_death_per_day, rng)


def make_model(
    name: str,
    n_stable: int,
    rng: Optional[random.Random] = None,
    *,
    churn_per_hour: float = 0.2,
    birth_death_per_day: float = 0.2,
) -> ChurnModel:
    """Factory over churn model names, dispatched through the registry."""
    return resolve("churn", name)(
        n_stable,
        rng,
        churn_per_hour=churn_per_hour,
        birth_death_per_day=birth_death_per_day,
    )
