"""Churn substrates: synthetic models and trace replay."""

from .base import ChurnDriver, ChurnModel
from .models import StatModel, SynthBdModel, SynthModel, make_model
from .replay import TraceReplayModel

__all__ = [
    "ChurnDriver",
    "ChurnModel",
    "StatModel",
    "SynthBdModel",
    "SynthModel",
    "TraceReplayModel",
    "make_model",
]
