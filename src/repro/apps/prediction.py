"""Availability prediction from monitored histories.

The paper notes (Section 1, citing Mickens & Noble [9]) that per-node
availability histories "can even be used to predict availability of
individual nodes in the future".  This module provides the two classic
lightweight predictors from that line of work, operating directly on the
raw sample histories AVMON monitors collect:

* :class:`SaturatingCounterPredictor` — a per-node up/down saturating
  counter (the "RightNow"-style state predictor);
* :class:`PeriodicPredictor` — empirical P(up) per time-of-cycle bucket,
  capturing diurnal behaviour.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["SaturatingCounterPredictor", "PeriodicPredictor", "hit_rate"]


class SaturatingCounterPredictor:
    """K-state saturating counter over the up/down sample stream.

    The counter moves up on an up-sample and down on a down-sample,
    saturating at ``[0, 2^bits - 1]``; the prediction is "up" in the upper
    half of the range.  With bits=1 this degenerates to last-value
    prediction.
    """

    def __init__(self, bits: int = 2) -> None:
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.maximum = (1 << bits) - 1
        self.threshold = (self.maximum + 1) // 2
        self._counter = self.threshold  # start unbiased

    def observe(self, up: bool) -> None:
        if up:
            self._counter = min(self.maximum, self._counter + 1)
        else:
            self._counter = max(0, self._counter - 1)

    def predict(self) -> bool:
        """Will the node be up at the next sample?"""
        return self._counter >= self.threshold

    def train(self, samples: Sequence[bool]) -> None:
        for sample in samples:
            self.observe(sample)


class PeriodicPredictor:
    """Empirical P(up) per position within a recurring cycle.

    Classic diurnal model: bucket each timestamped sample by
    ``(time mod cycle) / bucket`` and predict up when the bucket's
    historical up-fraction exceeds 0.5.  Falls back to the global
    up-fraction for buckets never observed.
    """

    def __init__(self, cycle: float = 86400.0, buckets: int = 24) -> None:
        if cycle <= 0:
            raise ValueError(f"cycle must be positive, got {cycle}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.cycle = cycle
        self.buckets = buckets
        self._up = [0] * buckets
        self._total = [0] * buckets

    def _bucket(self, time: float) -> int:
        phase = (time % self.cycle) / self.cycle
        return min(self.buckets - 1, int(phase * self.buckets))

    def observe(self, time: float, up: bool) -> None:
        index = self._bucket(time)
        self._total[index] += 1
        if up:
            self._up[index] += 1

    def train(self, samples: Sequence[Tuple[float, bool]]) -> None:
        for time, up in samples:
            self.observe(time, up)

    def probability_up(self, time: float) -> float:
        index = self._bucket(time)
        if self._total[index] > 0:
            return self._up[index] / self._total[index]
        total = sum(self._total)
        return sum(self._up) / total if total else 0.5

    def predict(self, time: float) -> bool:
        return self.probability_up(time) >= 0.5


def hit_rate(predictions: Sequence[bool], actual: Sequence[bool]) -> float:
    """Fraction of correct predictions (0.0 for empty input)."""
    if len(predictions) != len(actual):
        raise ValueError(
            f"length mismatch: {len(predictions)} predictions vs "
            f"{len(actual)} actuals"
        )
    if not predictions:
        return 0.0
    correct = sum(1 for p, a in zip(predictions, actual) if p == a)
    return correct / len(predictions)
