"""Availability-aware replica selection on top of AVMON.

The paper motivates availability monitoring with availability-aware
strategies for replication (Godfrey et al. [7] and Total Recall [3]):
knowing each node's long-term availability enables "smart" replica
placement that outperforms availability-agnostic random placement.

This module implements both policies against audited AVMON availability
reports, plus an evaluator that scores a placement by the probability that
at least one replica is available (under independent availabilities) —
the metric replication systems care about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.hashing import NodeId

__all__ = [
    "ReplicaPlacement",
    "select_replicas_by_availability",
    "select_replicas_randomly",
    "placement_availability",
    "compare_policies",
]


@dataclass(frozen=True)
class ReplicaPlacement:
    """A chosen replica set with its availability score."""

    replicas: Tuple[NodeId, ...]
    #: Probability that at least one replica is up (independence assumed).
    availability: float
    policy: str


def placement_availability(
    replicas: Sequence[NodeId], availability: Dict[NodeId, float]
) -> float:
    """P(at least one replica up) = ``1 − Π(1 − a_i)``."""
    miss = 1.0
    for replica in replicas:
        a = availability.get(replica, 0.0)
        if not 0.0 <= a <= 1.0:
            raise ValueError(f"availability of {replica} out of range: {a}")
        miss *= 1.0 - a
    return 1.0 - miss


def select_replicas_by_availability(
    availability: Dict[NodeId, float], count: int
) -> ReplicaPlacement:
    """Godfrey-style greedy: pick the *count* highest-availability nodes."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    ranked = sorted(availability, key=lambda n: (-availability[n], n))
    chosen = tuple(ranked[:count])
    return ReplicaPlacement(
        replicas=chosen,
        availability=placement_availability(chosen, availability),
        policy="highest-availability",
    )


def select_replicas_randomly(
    availability: Dict[NodeId, float], count: int, rng: random.Random
) -> ReplicaPlacement:
    """Availability-agnostic baseline: uniform random replica set."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    population = sorted(availability)
    chosen = tuple(rng.sample(population, min(count, len(population))))
    return ReplicaPlacement(
        replicas=chosen,
        availability=placement_availability(chosen, availability),
        policy="random",
    )


def compare_policies(
    availability: Dict[NodeId, float],
    count: int,
    rng: random.Random,
    trials: int = 100,
) -> Tuple[ReplicaPlacement, float]:
    """Smart placement vs the mean score of random placements.

    Returns the availability-aware placement and the average availability
    of *trials* random placements — the comparison in [7] that motivates
    the monitoring service.
    """
    smart = select_replicas_by_availability(availability, count)
    if not availability:
        return smart, 0.0
    random_scores: List[float] = []
    for _ in range(trials):
        random_scores.append(
            select_replicas_randomly(availability, count, rng).availability
        )
    return smart, sum(random_scores) / len(random_scores)
