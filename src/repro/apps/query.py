"""Network-level availability queries (the full §3.3 protocol flow).

When a node ``y`` wants node ``x``'s availability it (1) asks ``x`` to
report at least ``l`` of its monitors, (2) verifies every reported monitor
against the consistency condition — so ``x`` cannot name colluders — and
(3) asks each verified monitor for its measured history, aggregating the
replies.  :class:`QueryClient` implements that exchange over the same
runtime interface protocol nodes use, so it runs under the simulator
attached to an ordinary host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..core.messages import (
    HistoryReply,
    HistoryRequest,
    Message,
    ReportReply,
    ReportRequest,
)
from ..core.node import NodeRuntime
from ..core.reporting import aggregate_availability, verify_monitor_report

__all__ = ["QueryResult", "QueryClient"]


@dataclass
class QueryResult:
    """Outcome of one availability query."""

    subject: NodeId
    #: Monitors that passed the consistency-condition check.
    verified_monitors: Tuple[NodeId, ...] = ()
    #: Monitors the subject reported that failed verification.
    rejected_monitors: Tuple[NodeId, ...] = ()
    #: Per-monitor availability reports received.
    reports: Dict[NodeId, float] = field(default_factory=dict)
    #: Aggregated availability over the received verified reports.
    availability: float = 0.0
    #: True iff every verified monitor answered before the deadline.
    complete: bool = False
    #: True iff the subject reported at least ``min_monitors`` that verified.
    policy_satisfied: bool = False


class QueryClient:
    """Queries subjects' availability through their verified monitors."""

    def __init__(
        self,
        client_id: NodeId,
        condition: ConsistencyCondition,
        runtime: NodeRuntime,
        *,
        min_monitors: int = 1,
        timeout: float = 10.0,
    ) -> None:
        if min_monitors < 1:
            raise ValueError(f"min_monitors must be >= 1, got {min_monitors}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.id = client_id
        self.condition = condition
        self.runtime = runtime
        self.min_monitors = min_monitors
        self.timeout = timeout
        self._pending: Dict[NodeId, dict] = {}

    # -- public API -----------------------------------------------------------

    def query(
        self, subject: NodeId, callback: Callable[[QueryResult], None]
    ) -> None:
        """Start a query for *subject*; *callback* fires exactly once."""
        if subject in self._pending:
            raise ValueError(f"query for {subject} already in flight")
        self._pending[subject] = {
            "callback": callback,
            "result": QueryResult(subject=subject),
            "awaiting": set(),
        }
        self.runtime.send(
            subject,
            ReportRequest(
                sender=self.id, subject=subject, min_monitors=self.min_monitors
            ),
        )
        self.runtime.schedule(self.timeout, lambda: self._finish(subject))

    def pending_subjects(self) -> Tuple[NodeId, ...]:
        return tuple(self._pending)

    # -- message handling ---------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if isinstance(message, ReportReply):
            self._on_report(message)
        elif isinstance(message, HistoryReply):
            self._on_history(message)

    def on_leave(self, now: float) -> None:  # runtime-compatibility hook
        for subject in list(self._pending):
            self._finish(subject)

    def _on_report(self, message: ReportReply) -> None:
        state = self._pending.get(message.subject)
        if state is None or state["awaiting"]:
            return
        verdict = verify_monitor_report(
            self.condition, message.subject, message.monitors, self.min_monitors
        )
        result: QueryResult = state["result"]
        result.verified_monitors = verdict.accepted
        result.rejected_monitors = verdict.rejected
        result.policy_satisfied = verdict.satisfied
        if not verdict.accepted:
            self._finish(message.subject)
            return
        awaiting: Set[NodeId] = set(verdict.accepted)
        state["awaiting"] = awaiting
        for monitor in verdict.accepted:
            self.runtime.send(
                monitor, HistoryRequest(sender=self.id, subject=message.subject)
            )

    def _on_history(self, message: HistoryReply) -> None:
        state = self._pending.get(message.subject)
        if state is None or message.sender not in state["awaiting"]:
            return
        state["awaiting"].discard(message.sender)
        result: QueryResult = state["result"]
        result.reports[message.sender] = message.availability
        if not state["awaiting"]:
            result.complete = True
            self._finish(message.subject)

    def _finish(self, subject: NodeId) -> None:
        state = self._pending.pop(subject, None)
        if state is None:
            return
        result: QueryResult = state["result"]
        result.availability = aggregate_availability(result.reports.values())
        state["callback"](result)
