"""Network-level availability queries (the full §3.3 protocol flow).

When a node ``y`` wants node ``x``'s availability it (1) asks ``x`` to
report at least ``l`` of its monitors, (2) verifies every reported monitor
against the consistency condition — so ``x`` cannot name colluders — and
(3) asks each verified monitor for its measured history, aggregating the
replies.  :class:`QueryClient` implements that exchange over the same
runtime interface protocol nodes use, so it runs under the simulator
attached to an ordinary host — or over a real network through
:class:`~repro.live.runtime.LiveRuntime` (the serving surface in
:mod:`repro.serve` does exactly that).

Every query carries its own deadline: a crashed subject or a crashed
monitor can only cost the caller that query's timeout, never a stalled
client.  The report phase is retried within the deadline (one lost
``ReportRequest`` datagram must not blank the whole query on a lossy
network), and a query that reaches its deadline mid-aggregation still
reports the partial result — ``monitors_answered`` of ``monitors_queried``
verified monitors replied, and the availability aggregates exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..core.messages import (
    HistoryReply,
    HistoryRequest,
    Message,
    ReportReply,
    ReportRequest,
)
from ..core.node import NodeRuntime
from ..core.reporting import aggregate_availability, verify_monitor_report

__all__ = ["QueryResult", "QueryClient"]


@dataclass
class QueryResult:
    """Outcome of one availability query."""

    subject: NodeId
    #: Monitors that passed the consistency-condition check.
    verified_monitors: Tuple[NodeId, ...] = ()
    #: Monitors the subject reported that failed verification.
    rejected_monitors: Tuple[NodeId, ...] = ()
    #: Per-monitor availability reports received.
    reports: Dict[NodeId, float] = field(default_factory=dict)
    #: Aggregated availability over the received verified reports.
    availability: float = 0.0
    #: True iff every verified monitor answered before the deadline.
    complete: bool = False
    #: True iff the subject reported at least ``min_monitors`` that verified.
    policy_satisfied: bool = False
    #: Verified monitors that were asked for history (``len(verified)``,
    #: or 0 when the subject never answered / reported nothing genuine).
    monitors_queried: int = 0
    #: Verified monitors whose history reply arrived before the deadline.
    monitors_answered: int = 0
    #: True iff the deadline fired with work still outstanding — either
    #: the subject's report or at least one monitor's history was missing.
    timed_out: bool = False


class QueryClient:
    """Queries subjects' availability through their verified monitors."""

    def __init__(
        self,
        client_id: NodeId,
        condition: ConsistencyCondition,
        runtime: NodeRuntime,
        *,
        min_monitors: int = 1,
        timeout: float = 10.0,
        report_retries: int = 2,
    ) -> None:
        if min_monitors < 1:
            raise ValueError(f"min_monitors must be >= 1, got {min_monitors}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if report_retries < 0:
            raise ValueError(
                f"report_retries must be >= 0, got {report_retries}"
            )
        self.id = client_id
        self.condition = condition
        self.runtime = runtime
        self.min_monitors = min_monitors
        self.timeout = timeout
        #: ``ReportRequest`` re-sends within the deadline (0 = single shot).
        self.report_retries = report_retries
        self._pending: Dict[NodeId, dict] = {}

    # -- public API -----------------------------------------------------------

    def query(
        self,
        subject: NodeId,
        callback: Callable[[QueryResult], None],
        *,
        min_monitors: Optional[int] = None,
        timeout: Optional[float] = None,
        history: bool = True,
    ) -> None:
        """Start a query for *subject*; *callback* fires exactly once.

        *min_monitors* (the paper's ``l``) and *timeout* override the
        client-wide defaults for this query only.  With ``history=False``
        the query stops after the report-verification phase — the result
        carries the verified/rejected monitor sets but no availability
        (a pure §3.3 monitor-set lookup).
        """
        if subject in self._pending:
            raise ValueError(f"query for {subject} already in flight")
        l = self.min_monitors if min_monitors is None else min_monitors
        if l < 1:
            raise ValueError(f"min_monitors must be >= 1, got {l}")
        deadline = self.timeout if timeout is None else timeout
        if deadline <= 0:
            raise ValueError(f"timeout must be positive, got {deadline}")
        self._pending[subject] = {
            "callback": callback,
            "result": QueryResult(subject=subject),
            "awaiting": set(),
            "min_monitors": l,
            "history": history,
            #: True until the subject's report has been received+verified.
            "reporting": True,
        }
        self._send_report_request(subject)
        # Retry the report phase inside the deadline: the request and the
        # reply are single unacked datagrams, so on a lossy fabric one lost
        # packet would otherwise blank the query for its full timeout.
        interval = deadline / (self.report_retries + 1)
        for attempt in range(1, self.report_retries + 1):
            self.runtime.schedule(
                interval * attempt, self._retry_report, subject
            )
        self.runtime.schedule(deadline, self._deadline, subject)

    def fetch_monitors(
        self,
        subject: NodeId,
        callback: Callable[[QueryResult], None],
        *,
        min_monitors: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Report-and-verify only: which monitors watch *subject*?"""
        self.query(
            subject,
            callback,
            min_monitors=min_monitors,
            timeout=timeout,
            history=False,
        )

    def pending_subjects(self) -> Tuple[NodeId, ...]:
        return tuple(self._pending)

    # -- message handling ---------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        if isinstance(message, ReportReply):
            self._on_report(message)
        elif isinstance(message, HistoryReply):
            self._on_history(message)

    def on_leave(self, now: float) -> None:  # runtime-compatibility hook
        for subject in list(self._pending):
            self._finish(subject, timed_out=True)

    def _send_report_request(self, subject: NodeId) -> None:
        state = self._pending.get(subject)
        if state is None:
            return
        self.runtime.send(
            subject,
            ReportRequest(
                sender=self.id,
                subject=subject,
                min_monitors=state["min_monitors"],
            ),
        )

    def _retry_report(self, subject: NodeId) -> None:
        state = self._pending.get(subject)
        if state is None or not state["reporting"]:
            return  # finished, or already past the report phase
        self._send_report_request(subject)

    def _on_report(self, message: ReportReply) -> None:
        state = self._pending.get(message.subject)
        if state is None or not state["reporting"]:
            return  # unknown / duplicate report (a retry raced the reply)
        state["reporting"] = False
        verdict = verify_monitor_report(
            self.condition,
            message.subject,
            message.monitors,
            state["min_monitors"],
        )
        result: QueryResult = state["result"]
        result.verified_monitors = verdict.accepted
        result.rejected_monitors = verdict.rejected
        result.policy_satisfied = verdict.satisfied
        if not verdict.accepted or not state["history"]:
            self._finish(message.subject)
            return
        awaiting: Set[NodeId] = set(verdict.accepted)
        state["awaiting"] = awaiting
        result.monitors_queried = len(awaiting)
        for monitor in verdict.accepted:
            self.runtime.send(
                monitor, HistoryRequest(sender=self.id, subject=message.subject)
            )

    def _on_history(self, message: HistoryReply) -> None:
        state = self._pending.get(message.subject)
        if state is None or message.sender not in state["awaiting"]:
            return
        state["awaiting"].discard(message.sender)
        result: QueryResult = state["result"]
        result.reports[message.sender] = message.availability
        if not state["awaiting"]:
            result.complete = True
            self._finish(message.subject)

    def _deadline(self, subject: NodeId) -> None:
        self._finish(subject, timed_out=True)

    def _finish(self, subject: NodeId, *, timed_out: bool = False) -> None:
        state = self._pending.pop(subject, None)
        if state is None:
            return
        result: QueryResult = state["result"]
        result.monitors_answered = len(result.reports)
        if timed_out and (state["reporting"] or state["awaiting"]):
            result.timed_out = True
        result.availability = aggregate_availability(result.reports.values())
        state["callback"](result)
