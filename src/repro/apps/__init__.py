"""Applications of the monitoring service (Section 1's motivations)."""

from .prediction import PeriodicPredictor, SaturatingCounterPredictor, hit_rate
from .query import QueryClient, QueryResult
from .replication import (
    ReplicaPlacement,
    compare_policies,
    placement_availability,
    select_replicas_by_availability,
    select_replicas_randomly,
)

__all__ = [
    "PeriodicPredictor",
    "QueryClient",
    "QueryResult",
    "ReplicaPlacement",
    "SaturatingCounterPredictor",
    "compare_policies",
    "hit_rate",
    "placement_availability",
    "select_replicas_by_availability",
    "select_replicas_randomly",
]
