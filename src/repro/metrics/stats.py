"""Small statistics helpers used by collectors, experiments and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "mean",
    "std",
    "percentile",
    "cdf_points",
    "fraction_below",
    "Summary",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence.

    Accurate summation (``math.fsum``) plus a clamp to ``[min, max]``: the
    true mean always lies within the data range, but naive float division
    can overshoot it by one ulp (e.g. ``sum([a, a, a]) / 3 < a``), which
    broke downstream range invariants.
    """
    if not values:
        return 0.0
    centre = math.fsum(values) / len(values)
    return min(max(centre, min(values)), max(values))


def std(values: Sequence[float]) -> float:
    """Population standard deviation (the paper plots ±1 σ error bars)."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    interpolated = ordered[low] * (1.0 - weight) + ordered[high] * weight
    # Clamp away float drift so the result stays between its bracketing
    # order statistics (p90 must never exceed the maximum).
    return min(max(interpolated, ordered[low]), ordered[high])


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, fraction <= value)`` pairs.

    The fractions are non-decreasing and end at 1.0 — the format every CDF
    figure in the paper uses.
    """
    ordered = sorted(values)
    total = len(ordered)
    if total == 0:
        return []
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold (reading a CDF at a point)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary used in experiment reports."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; zeros for an empty input."""
    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(values),
        mean=mean(values),
        std=std(values),
        minimum=min(values),
        median=percentile(values, 50.0),
        p90=percentile(values, 90.0),
        maximum=max(values),
    )
