"""Metric collectors for the Section-5 experiments.

The :class:`MetricsHub` implements the node-facing
:class:`~repro.core.node.MetricsSink` interface and fans events out to the
individual collectors.  Collection can be *armed* at the end of the warm-up
window, so rates (computations/s, bandwidth, useless pings) cover only the
measurement window — the paper measures after a one-hour warm-up.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set

from ..core.hashing import NodeId
from . import stats

__all__ = [
    "DiscoveryTimeCollector",
    "ComputationCollector",
    "PingActivityCollector",
    "MetricsHub",
]


class DiscoveryTimeCollector:
    """Times from a tracked node's join to its 1st..Lth monitor discovery."""

    def __init__(self) -> None:
        self._join_time: Dict[NodeId, float] = {}
        #: node -> {ps_size: discovery delay from join}
        self._nth_delay: Dict[NodeId, Dict[int, float]] = {}

    def track(self, node: NodeId, join_time: float) -> None:
        """Start tracking *node* (a control-group member) from *join_time*."""
        if node not in self._join_time:
            self._join_time[node] = join_time
            self._nth_delay[node] = {}

    def is_tracked(self, node: NodeId) -> bool:
        return node in self._join_time

    def tracked_count(self) -> int:
        return len(self._join_time)

    def on_monitor_discovered(self, node: NodeId, time: float, ps_size: int) -> None:
        joined = self._join_time.get(node)
        if joined is None:
            return
        delays = self._nth_delay[node]
        if ps_size not in delays:
            delays[ps_size] = max(0.0, time - joined)

    def first_monitor_delays(self) -> List[float]:
        """Delay to the first monitor for every tracked node that found one."""
        return self.nth_monitor_delays(1)

    def nth_monitor_delays(self, nth: int) -> List[float]:
        """Delays to the *nth* monitor across tracked nodes that reached it."""
        if nth < 1:
            raise ValueError(f"nth must be >= 1, got {nth}")
        out = []
        for delays in self._nth_delay.values():
            value = delays.get(nth)
            if value is not None:
                out.append(value)
        return out

    def delays_by_rank(self) -> Dict[int, List[float]]:
        """All delays grouped by monitor rank: ``{nth: [delay, ...]}``.

        Per-rank list order matches :meth:`nth_monitor_delays` (tracked-node
        insertion order), so summaries built from this are reproducible.
        """
        out: Dict[int, List[float]] = {}
        for delays in self._nth_delay.values():
            for rank, value in delays.items():
                out.setdefault(rank, []).append(value)
        return {rank: out[rank] for rank in sorted(out)}

    def undiscovered_count(self) -> int:
        """Tracked nodes that never discovered any monitor."""
        return sum(1 for delays in self._nth_delay.values() if 1 not in delays)

    def average_first_delay(self, *, drop_top: int = 0) -> float:
        """Mean first-monitor delay, optionally dropping the worst outliers.

        The paper's Figure 3 drops the single highest measurement per
        setting (their footnote 8); ``drop_top=1`` reproduces that.
        """
        delays = sorted(self.first_monitor_delays())
        if drop_top > 0 and len(delays) > drop_top:
            delays = delays[:-drop_top]
        return stats.mean(delays)


class ComputationCollector:
    """Per-node consistency-condition evaluation counts over the window."""

    def __init__(self) -> None:
        self._counts: Dict[NodeId, int] = defaultdict(int)

    def on_computations(self, node: NodeId, count: int) -> None:
        self._counts[node] += count

    def total(self, node: NodeId) -> int:
        return self._counts.get(node, 0)

    def rates_per_second(self, duration: float, nodes=None) -> List[float]:
        """Computations/second for each node (restricted to *nodes* if given)."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        selected = self._counts.keys() if nodes is None else nodes
        return [self._counts.get(node, 0) / duration for node in selected]


class PingActivityCollector:
    """Monitoring-ping activity: useless pings (sent to absent nodes)."""

    def __init__(self) -> None:
        self._useless: Dict[NodeId, int] = defaultdict(int)
        self._sent: Dict[NodeId, int] = defaultdict(int)

    def on_monitor_ping_sent(self, monitor: NodeId, useless: bool) -> None:
        self._sent[monitor] += 1
        if useless:
            self._useless[monitor] += 1

    def useless_per_minute(self, duration: float, nodes=None) -> List[float]:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        minutes = duration / 60.0
        selected = self._useless.keys() if nodes is None else nodes
        return [self._useless.get(node, 0) / minutes for node in selected]

    def sent_total(self, node: NodeId) -> int:
        return self._sent.get(node, 0)

    def useless_total(self, node: NodeId) -> int:
        return self._useless.get(node, 0)


class MetricsHub:
    """Fan-out sink wired into every node; armed after warm-up.

    Discovery tracking is always on (control nodes join exactly when the
    measurement starts), while *rate* metrics (computations, pings) only
    accumulate once :meth:`arm` has been called.
    """

    def __init__(self) -> None:
        self.discovery = DiscoveryTimeCollector()
        self.computation = ComputationCollector()
        self.pings = PingActivityCollector()
        self.armed = False
        self.armed_at: Optional[float] = None
        #: Monitor -> targets discovered (for end-of-run availability audits).
        self.monitor_targets: Dict[NodeId, Set[NodeId]] = defaultdict(set)

    def arm(self, now: float) -> None:
        """Begin accumulating rate metrics (call at warm-up end)."""
        self.armed = True
        self.armed_at = now

    # -- MetricsSink interface -------------------------------------------

    def on_monitor_discovered(
        self, target: NodeId, monitor: NodeId, time: float, ps_size: int
    ) -> None:
        self.discovery.on_monitor_discovered(target, time, ps_size)

    def on_target_discovered(self, monitor: NodeId, target: NodeId, time: float) -> None:
        self.monitor_targets[monitor].add(target)

    def on_computations(self, node: NodeId, count: int) -> None:
        if self.armed:
            self.computation.on_computations(node, count)

    def on_monitor_ping_sent(self, monitor: NodeId, target: NodeId, useless: bool) -> None:
        if self.armed:
            self.pings.on_monitor_ping_sent(monitor, useless)
