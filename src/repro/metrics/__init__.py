"""Metric collection and statistics for the evaluation harness."""

from .collectors import (
    ComputationCollector,
    DiscoveryTimeCollector,
    MetricsHub,
    PingActivityCollector,
)
from .stats import (
    Summary,
    cdf_points,
    fraction_below,
    mean,
    percentile,
    std,
    summarize,
)

__all__ = [
    "ComputationCollector",
    "DiscoveryTimeCollector",
    "MetricsHub",
    "PingActivityCollector",
    "Summary",
    "cdf_points",
    "fraction_below",
    "mean",
    "percentile",
    "std",
    "summarize",
]
