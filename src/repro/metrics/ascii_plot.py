"""Terminal plotting: render CDFs, series and histograms as ASCII art.

The evaluation harness is plotting-library-free by design (the repository
runs offline); these renderers give experiment reports a visual shape —
enough to eyeball a knee, a heavy tail or two overlapping CDFs — without
any dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["plot_cdf", "plot_series", "histogram"]

_BLOCKS = " .:-=+*#%@"


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map *value* in [low, high] to an integer cell in [0, size-1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(position * size)))


def plot_cdf(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 12,
    x_label: str = "value",
) -> str:
    """Plot one or more CDFs on shared axes.

    *series* maps a label to its ``(value, fraction)`` points; each series
    is drawn with its own marker character.
    """
    if not series:
        return "(no series)"
    markers = "ox+*#@"
    xs = [x for points in series.values() for x, _ in points]
    if not xs:
        return "(empty series)"
    x_low, x_high = min(xs), max(xs)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, fraction in points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(fraction, 0.0, 1.0, height)
            grid[row][column] = marker
    lines = ["1.0 |" + "".join(row_cells) for row_cells in grid[:1]]
    for row_cells in grid[1:-1]:
        lines.append("    |" + "".join(row_cells))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {x_low:<12.4g}{x_label:^{max(0, width - 24)}}{x_high:>12.4g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}" for i, label in enumerate(series)
    )
    lines.append("     " + legend)
    return "\n".join(lines)


def plot_series(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 10,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter-plot one (x, y) series."""
    if not points:
        return "(no points)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = "o"
    lines = [f"{y_high:>10.4g} |" + "".join(grid[0])]
    for row_cells in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row_cells))
    lines.append(f"{y_low:>10.4g} |" + "".join(grid[-1]))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_low:<12.4g}{x_label:^{max(0, width - 24)}}{x_high:>12.4g}"
    )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    *,
    bins: int = 10,
    width: int = 40,
) -> str:
    """Horizontal-bar histogram of *values*."""
    if not values:
        return "(no values)"
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    low, high = min(values), max(values)
    if high == low:
        return f"[{low:.4g}] {'#' * width} ({len(values)})"
    counts = [0] * bins
    for value in values:
        counts[_scale(value, low, high, bins)] += 1
    peak = max(counts)
    lines = []
    span = (high - low) / bins
    for index, count in enumerate(counts):
        bar = "#" * max(0, round(width * count / peak))
        left = low + index * span
        lines.append(f"[{left:>10.4g}, {left + span:>10.4g}) {bar} ({count})")
    return "\n".join(lines)
