"""Pluggable component registry: named factories for every swappable part.

The simulator is assembled from interchangeable components — churn models,
latency models, trace generators, baseline overlays, experiments, and
network fault plans (kind ``fault``, see :mod:`repro.live.faults`).  Each
kind is a namespace of named factories; registration happens at import time
via the :func:`register` decorator::

    from repro.registry import register

    @register("churn", "MY-MODEL")
    def _make(n_stable, rng=None, **params):
        return MyModel(n_stable, rng)

Downstream users can plug in their own components without touching the
runner: anything registered under ``"churn"`` is immediately usable as a
``Scenario.model`` / ``SimulationConfig.model`` value, and the CLI lists it.

Lookup is case-insensitive and treats ``_`` and ``-`` as equivalent
(``"synth_bd"`` resolves the component registered as ``"SYNTH-BD"``).
Unknown names raise :class:`UnknownComponentError` — a single error type,
also a :class:`ValueError`, whose message lists the registered alternatives.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "ComponentRegistry",
    "UnknownComponentError",
    "REGISTRY",
    "register",
    "resolve",
    "create",
    "component_names",
    "component_kinds",
    "is_registered",
]


def canonical_name(name: str) -> str:
    """Canonical lookup key: trimmed, upper-cased, ``_`` folded to ``-``."""
    return name.strip().upper().replace("_", "-")


class UnknownComponentError(LookupError, ValueError):
    """A component name that is not registered for its kind.

    Subclasses :class:`ValueError` too, so legacy call sites catching
    ``ValueError`` around factory lookups keep working.
    """

    def __init__(self, kind: str, name: str, available: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.available = tuple(available)
        listing = ", ".join(self.available) if self.available else "(none)"
        super().__init__(
            f"unknown {kind} component {name!r}; registered: {listing}"
        )

    def __str__(self) -> str:  # LookupError would repr() the args tuple
        return self.args[0]


class ComponentRegistry:
    """Named factories grouped by *kind* (``churn``, ``latency``, ...)."""

    def __init__(self) -> None:
        #: kind -> canonical name -> (display name, factory)
        self._components: Dict[str, Dict[str, Tuple[str, Callable]]] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        kind: str,
        name: str,
        factory: Optional[Callable] = None,
        *,
        replace: bool = False,
    ):
        """Register *factory* under ``(kind, name)``.

        Usable directly (``registry.register("churn", "X", make_x)``) or as
        a decorator (``@registry.register("churn", "X")``).  Re-registering
        an existing name raises unless ``replace=True``.
        """

        def _add(fn: Callable) -> Callable:
            entries = self._components.setdefault(kind, {})
            key = canonical_name(name)
            if key in entries and not replace:
                raise ValueError(
                    f"{kind} component {entries[key][0]!r} already registered; "
                    f"pass replace=True to override"
                )
            entries[key] = (name, fn)
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, kind: str, name: str) -> None:
        """Remove a component (primarily for tests plugging temporaries)."""
        entries = self._components.get(kind, {})
        entries.pop(canonical_name(name), None)

    # -- lookup ------------------------------------------------------------

    def resolve(self, kind: str, name: str) -> Callable:
        """The factory registered under ``(kind, name)``.

        Raises :class:`UnknownComponentError` listing the alternatives when
        the name (or the whole kind) is unknown.
        """
        entries = self._components.get(kind, {})
        entry = entries.get(canonical_name(name))
        if entry is None:
            raise UnknownComponentError(kind, name, self.names(kind))
        return entry[1]

    def create(self, kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve and call the factory in one step."""
        return self.resolve(kind, name)(*args, **kwargs)

    def is_registered(self, kind: str, name: str) -> bool:
        return canonical_name(name) in self._components.get(kind, {})

    def names(self, kind: str) -> Tuple[str, ...]:
        """Display names registered under *kind*, sorted."""
        entries = self._components.get(kind, {})
        return tuple(sorted(display for display, _ in entries.values()))

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._components))

    def catalog(self) -> Dict[str, Tuple[str, ...]]:
        """Every kind with its registered names (for ``avmon list --json``)."""
        return {kind: self.names(kind) for kind in self.kinds()}


#: Process-wide registry that built-in components register into on import.
REGISTRY = ComponentRegistry()

register = REGISTRY.register
resolve = REGISTRY.resolve
create = REGISTRY.create
component_names = REGISTRY.names
component_kinds = REGISTRY.kinds
is_registered = REGISTRY.is_registered
