"""Declarative scenario API: describe an experiment, run it anywhere.

A :class:`Scenario` names every moving part of a simulation by its
component-registry key (churn model, latency model, trace generator) plus
plain scalar parameters, and is therefore fully serialisable — it round
trips through :meth:`Scenario.to_dict` / JSON untouched, can live in a
config file, travel to a worker process, or be built programmatically::

    from repro.api import Scenario, run, sweep

    summary = run(Scenario(model="SYNTH", n=100, scale="test"))
    print(summary.average_discovery_time())

    results = sweep(
        Scenario(model="SYNTH", scale="test"),
        grid={"n": [60, 120, 240]},
        seeds=3,
        jobs=4,                      # multiprocessing fan-out
    )
    for (n,), group in results.group_by("n").items():
        print(n, group.mean(lambda s: s.average_discovery_time()))

:func:`sweep` expands a parameter grid × seed replications into cells,
executes them through the parallel orchestrator (deterministically: the
same sweep yields byte-identical results at any job count) and returns a
:class:`ResultSet` with grouping/aggregation helpers.

The legacy imperative path — build a
:class:`~repro.experiments.runner.SimulationConfig` by hand and call
:func:`~repro.experiments.runner.run_simulation` — remains fully
supported; :meth:`Scenario.to_config` is the bridge between the two.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .core.config import AvmonConfig
from .experiments.backends import ExecutionBackend
from .experiments.orchestrator import ProgressFn, run_configs
from .experiments.runner import SimulationConfig, run_simulation
from .experiments.scenarios import SCALES, scale_window, trace_for
from .experiments.store import SummaryStore
from .experiments.summary import SimulationSummary
from .metrics import stats
from .registry import canonical_name, create, resolve

__all__ = ["Scenario", "ResultSet", "SweepResult", "run", "sweep", "expand_grid"]

#: Trace-replay model keys whose trace generator defaults to the model name.
_TRACE_MODELS = ("TRACE", "PL", "OV")

#: A metric is a callable on a summary or the name of a zero-arg accessor.
Metric = Union[str, Callable[[SimulationSummary], float]]


@dataclass
class Scenario:
    """A fully declarative, serialisable experiment specification.

    Components are named by registry key (see :mod:`repro.registry`):
    ``model`` selects a ``"churn"`` component, ``latency`` a ``"latency"``
    component, and — for trace-replay models — ``trace_generator`` a
    ``"trace"`` component.  Everything else is a plain scalar, so
    ``Scenario(**json.loads(text))`` reconstructs the exact experiment.
    """

    #: Churn component key: STAT, SYNTH, SYNTH-BD(2), TRACE, PL, OV, or
    #: anything registered under the ``"churn"`` kind.
    model: str = "STAT"
    #: Stable system size; None -> 200 (synthetic) or derived from the
    #: generated trace (trace models), matching the paper's setups.
    n: Optional[int] = None
    #: Named parameter scale (paper/bench/test) supplying warmup/duration.
    scale: str = "bench"
    seed: int = 1
    #: Explicit timing overrides; None -> derived from *scale*.
    duration: Optional[float] = None
    warmup: Optional[float] = None
    control_fraction: float = 0.1
    churn_per_hour: float = 0.2
    #: None -> paper default scaled so total births match the paper's runs.
    birth_death_per_day: Optional[float] = None
    overreport_fraction: float = 0.0
    #: Latency component key plus its constructor parameters.
    latency: str = "UNIFORM"
    latency_params: Dict[str, float] = field(default_factory=dict)
    #: Trace generator key (trace models only); None -> the model key.
    trace_generator: Optional[str] = None
    trace_seed: int = 7
    #: Extra keyword arguments for the trace generator (n, duration, ...).
    trace_params: Dict[str, Any] = field(default_factory=dict)
    #: AvmonConfig overrides (k, cvs, enable_pr2, ...); {} -> paper defaults.
    avmon: Dict[str, Any] = field(default_factory=dict)
    #: Fault component key (registry kind ``fault``: NONE, LOSSY, WAN,
    #: FLAKY, ...); None -> a perfect network and the pre-fault cache key.
    fault: Optional[str] = None
    #: Overrides for the fault component's factory (e.g. ``loss=0.25``).
    fault_params: Dict[str, Any] = field(default_factory=dict)
    sample_interval: float = 120.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; expected one of {SCALES}"
            )
        if self.n is not None and self.n <= 1:
            raise ValueError(f"n must exceed 1, got {self.n}")

    # -- identity ----------------------------------------------------------

    @property
    def model_key(self) -> str:
        return canonical_name(self.model)

    @property
    def is_trace_model(self) -> bool:
        return self.model_key in _TRACE_MODELS or self.trace_generator is not None

    def with_params(self, **changes) -> "Scenario":
        """Functional update (the primitive :func:`sweep` expands with)."""
        return replace(self, **changes)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown Scenario fields: {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        return cls(**dict(payload))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    # -- resolution --------------------------------------------------------

    def _resolve_latency(self) -> dict:
        """Latency kwargs for SimulationConfig.

        The experiments' default (UNIFORM) maps onto the config's native
        ``latency_low``/``latency_high`` floats so cache keys and legacy
        behaviour stay identical; any other registered model is built
        through the registry and plugged in as an object.
        """
        resolve("latency", self.latency)  # validate early, list alternatives
        if canonical_name(self.latency) == "UNIFORM":
            params = dict(self.latency_params)
            kwargs = {
                "latency_low": params.pop("low", 0.02),
                "latency_high": params.pop("high", 0.1),
            }
            if params:
                raise ValueError(
                    f"unknown UNIFORM latency_params: {', '.join(sorted(params))}; "
                    f"expected low, high"
                )
            return kwargs
        return {"latency": create("latency", self.latency, **self.latency_params)}

    def _resolve_fault(self):
        """Build the named fault plan (None for a perfect network).

        The plan's decision-stream seed defaults to the scenario seed, so
        seed replications vary the injected faults along with everything
        else; a null plan collapses to None so fault-free scenarios keep
        the exact pre-fault cache key.
        """
        if self.fault is None:
            if self.fault_params:
                raise ValueError(
                    "fault_params given without a fault component name"
                )
            return None
        params = dict(self.fault_params)
        params.setdefault("seed", self.seed)
        plan = create("fault", self.fault, **params)
        return None if plan.is_null() else plan

    def _resolve_trace(self):
        """Generate the replay trace named by ``trace_generator``."""
        generator = self.trace_generator or self.model_key
        if canonical_name(self.model_key) == "TRACE" and self.trace_generator is None:
            raise ValueError(
                "model 'TRACE' needs an explicit trace_generator registry key"
            )
        resolve("trace", generator)
        if (
            canonical_name(generator) in ("PL", "OV")
            and not self.trace_params
            and self.n is None
            and self.duration is None
            and self.warmup is None
        ):
            # The stock PL/OV setups: go through trace_for, whose process
            # cache lets sweep cells varying only the simulation seed share
            # one generated trace.
            return trace_for(canonical_name(generator), self.scale, seed=self.trace_seed)
        params = dict(self.trace_params)
        params.setdefault("seed", self.trace_seed)
        if canonical_name(generator) == "PL":
            params.setdefault("duration", self._resolved_duration())
            if self.n is not None:
                params.setdefault("n", self.n)
            elif self.scale != "paper":
                params.setdefault("n", 120 if self.scale == "bench" else 40)
        elif canonical_name(generator) == "OV":
            params.setdefault("duration", self._resolved_duration())
            if self.scale != "paper":
                n_stable = self.n if self.n is not None else (
                    130 if self.scale == "bench" else 40
                )
                params.setdefault("n_stable", n_stable)
                # Preserve the full generator's birth-rate-to-size ratio.
                params.setdefault(
                    "births_per_hour", (4.6 / 550.0) * params["n_stable"]
                )
        return create("trace", generator, **params)

    def _resolved_warmup(self) -> float:
        if self.warmup is not None:
            return self.warmup
        return scale_window(self.scale)[0]

    def _resolved_duration(self) -> float:
        if self.duration is not None:
            return self.duration
        warmup, window = scale_window(self.scale)
        return (self.warmup if self.warmup is not None else warmup) + window

    def to_config(self) -> SimulationConfig:
        """Materialise the spec into a runnable :class:`SimulationConfig`.

        Raises :class:`~repro.registry.UnknownComponentError` (listing the
        registered alternatives) when any named component is unknown.
        """
        resolve("churn", self.model)  # single error type for bad model keys
        warmup = self._resolved_warmup()
        duration = self._resolved_duration()
        if self.is_trace_model:
            trace = self._resolve_trace()
            duration = min(duration, trace.duration)
            if self.n is not None:
                n = self.n
            elif canonical_name(self.trace_generator or self.model_key) == "OV":
                n = max(2, round(len(trace) / 2))
            else:
                n = max(2, len(trace))
            avmon: Optional[AvmonConfig] = AvmonConfig.paper_defaults(
                n, **self.avmon
            )
        else:
            trace = None
            n = self.n if self.n is not None else 200
            avmon = AvmonConfig.paper_defaults(n, **self.avmon) if self.avmon else None
        birth_death = self.birth_death_per_day
        if birth_death is None:
            if self.model_key in ("SYNTH-BD", "SYNTH-BD2"):
                # Scale the birth rate so cumulative births over the run
                # match the paper's 48-hour experiments (~0.4*N in total).
                birth_death = 0.4 / (duration / 86400.0)
            else:
                birth_death = 0.2
        return SimulationConfig(
            model=self.model_key,
            n=n,
            duration=duration,
            warmup=warmup,
            control_fraction=self.control_fraction,
            seed=self.seed,
            avmon=avmon,
            churn_per_hour=self.churn_per_hour,
            birth_death_per_day=birth_death,
            trace=trace,
            overreport_fraction=self.overreport_fraction,
            sample_interval=self.sample_interval,
            label=self.label or self.model_key,
            fault=self._resolve_fault(),
            **self._resolve_latency(),
        )


def run(scenario: Scenario) -> SimulationSummary:
    """Execute one scenario and return its flat summary."""
    return run_simulation(scenario.to_config()).summary()


# -- sweeps ----------------------------------------------------------------


@dataclass(frozen=True)
class SweepResult:
    """One sweep cell: the scenario that ran and the summary it produced."""

    scenario: Scenario
    summary: SimulationSummary


def expand_grid(
    base: Scenario,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    seeds: Union[int, Sequence[int]] = 1,
) -> List[Scenario]:
    """Expand ``grid`` (field -> values) × seed replications into scenarios.

    Grid keys must be :class:`Scenario` field names; an integer ``seeds``
    means replications with deterministic seeds ``base.seed + i``, while a
    sequence fixes the seed list explicitly.  Expansion order (grid-major,
    seed-minor, insertion-ordered keys) is deterministic, so cell indices —
    and therefore results — are stable across runs and job counts.
    """
    grid = dict(grid or {})
    known = {f.name for f in fields(Scenario)}
    unknown = sorted(set(grid) - known)
    if unknown:
        raise ValueError(
            f"unknown sweep parameters: {', '.join(unknown)}; "
            f"grid keys must be Scenario fields"
        )
    if "seed" in grid:
        raise ValueError("vary seeds via the seeds= argument, not the grid")
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {seeds}")
        seed_list = [base.seed + i for i in range(seeds)]
    else:
        seed_list = list(seeds)
        if not seed_list:
            raise ValueError("seeds sequence must be non-empty")
    cells = []
    keys = list(grid)
    for combo in itertools.product(*(grid[key] for key in keys)):
        params = dict(zip(keys, combo))
        for seed in seed_list:
            cells.append(base.with_params(seed=seed, **params))
    return cells


def sweep(
    base: Scenario,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    *,
    seeds: Union[int, Sequence[int]] = 1,
    jobs: int = 1,
    progress: Optional[ProgressFn] = None,
    store: Optional[SummaryStore] = None,
    backend: Union[None, str, ExecutionBackend] = None,
) -> "ResultSet":
    """Run a parameter grid × seed replications, optionally in parallel.

    Cells fan out over ``jobs`` worker processes through the orchestrator;
    results come back in deterministic cell order regardless of completion
    order, so ``jobs=1`` and ``jobs=N`` produce identical result sets.
    *backend* picks the execution strategy explicitly — an
    :class:`~repro.experiments.backends.ExecutionBackend` instance or a
    registered name (``"serial"``, ``"pool"``, ``"fleet"``); the default
    derives serial-vs-pool from ``jobs`` exactly as before the seam
    existed.  Every strategy funnels through the same cell function, so
    the result set is identical whichever executes it.

    With *store* (a :class:`~repro.experiments.store.SummaryStore`), cells
    already on disk are loaded instead of simulated and fresh results are
    persisted as they complete, making the sweep resumable across
    processes — an interrupted run re-invoked with the same arguments
    recomputes only the missing cells and returns an identical result set.
    """
    cells = expand_grid(base, grid, seeds=seeds)
    configs = [cell.to_config() for cell in cells]
    summaries = run_configs(
        configs, jobs=jobs, progress=progress, store=store, backend=backend
    )
    return ResultSet(
        [SweepResult(cell, summary) for cell, summary in zip(cells, summaries)]
    )


class ResultSet:
    """An ordered collection of sweep results with aggregation helpers."""

    def __init__(self, results: Optional[Iterable[SweepResult]] = None) -> None:
        self._results: List[SweepResult] = list(results or ())

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self):
        return iter(self._results)

    def __getitem__(self, index: int) -> SweepResult:
        return self._results[index]

    def append(self, result: SweepResult) -> None:
        self._results.append(result)

    @property
    def scenarios(self) -> List[Scenario]:
        return [entry.scenario for entry in self._results]

    @property
    def summaries(self) -> List[SimulationSummary]:
        return [entry.summary for entry in self._results]

    # -- selection and aggregation ----------------------------------------

    def filter(self, **params) -> "ResultSet":
        """Results whose scenario fields equal every given value."""
        return ResultSet(
            entry
            for entry in self._results
            if all(getattr(entry.scenario, key) == value for key, value in params.items())
        )

    def group_by(self, *names: str) -> Dict[Tuple, "ResultSet"]:
        """Group by scenario fields; keys are value tuples, in sweep order."""
        groups: Dict[Tuple, ResultSet] = {}
        for entry in self._results:
            key = tuple(getattr(entry.scenario, name) for name in names)
            groups.setdefault(key, ResultSet()).append(entry)
        return groups

    @staticmethod
    def _metric_value(summary: SimulationSummary, metric: Metric) -> float:
        if callable(metric):
            return metric(summary)
        attribute = getattr(summary, metric)
        return attribute() if callable(attribute) else attribute

    def values(self, metric: Metric) -> List[float]:
        return [self._metric_value(entry.summary, metric) for entry in self._results]

    def mean(self, metric: Metric) -> float:
        return stats.mean(self.values(metric))

    def aggregate(
        self,
        metric: Metric,
        *,
        by: Sequence[str] = (),
        reduce: Callable[[Sequence[float]], float] = stats.mean,
    ) -> Dict[Tuple, float]:
        """``reduce`` the metric within each ``by``-group (default: mean)."""
        if not by:
            return {(): reduce(self.values(metric))}
        return {
            key: reduce(group.values(metric))
            for key, group in self.group_by(*by).items()
        }

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "results": [
                {
                    "scenario": entry.scenario.to_dict(),
                    "summary": entry.summary.to_dict(),
                }
                for entry in self._results
            ]
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultSet":
        return cls(
            SweepResult(
                Scenario.from_dict(entry["scenario"]),
                SimulationSummary.from_dict(entry["summary"]),
            )
            for entry in payload["results"]
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({len(self._results)} results)"
