"""Deterministic in-process transport + virtual-clock overlay harness.

The live stack (codec, transport, introducer, :class:`LiveNode`, the
supervisor's scrape path) was only testable over real UDP sockets on real
clocks — slow, port-hungry and irreproducible.  This module supplies the
missing fabric:

* :class:`MemoryTransport` satisfies the same endpoint surface as
  :class:`~repro.live.transport.UdpTransport` (``create``/``send_to``/
  ``local_address``/``close``/``stats``, the shared
  :class:`~repro.live.transport.DatagramEndpoint` receive path), but
  datagrams travel through an in-process :class:`MemoryNetwork` hub —
  still as *bytes through the codec*, so malformed-datagram tolerance and
  wire-format bugs are exercised exactly as over UDP;
* :class:`MemoryNetwork` applies one
  :class:`~repro.live.faults.FaultInjector` centrally: loss, latency,
  jitter, duplication, reordering and timed partitions per the plan, every
  decision drawn from per-link seeded streams;
* :func:`install_virtual_clock` time-warps an asyncio event loop — when
  the loop would sleep, virtual time jumps instead — so ``loop.time()``,
  every timer and every ``asyncio.sleep`` are deterministic and a
  30-virtual-second overlay runs in well under a wall second;
* :class:`MemoryOverlay` composes it all: a real
  :class:`~repro.live.introducer.IntroducerGroup` (one replica by
  default, a replicated bootstrap quorum on request), N real
  :class:`~repro.live.runtime.LiveNode` instances, the supervisor's
  :class:`~repro.live.supervisor.StatusProber` scrape path and the shared
  report/summary builders — the **whole** live stack, in one process, no
  sockets, no subprocesses, byte-identical
  :class:`~repro.experiments.summary.SimulationSummary` output for a fixed
  seed.
"""

from __future__ import annotations

import asyncio
import pathlib
import random
import shutil
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional

from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..experiments.store import SummaryStore
from .codec import encode
from .faults import SUPERVISOR, FaultInjector, FaultPlan, Label, introducer_label
from .introducer import IntroducerGroup
from .runtime import LiveNode
from .supervisor import (
    LiveConfig,
    LiveReport,
    StatusProber,
    build_live_report,
    live_config_key,
)
from .transport import Address, DatagramEndpoint

__all__ = [
    "MEM_HOST",
    "VIRTUAL_EPOCH",
    "MemoryNetwork",
    "MemoryTransport",
    "MemoryOverlay",
    "install_virtual_clock",
    "run_memory_overlay",
    "run_virtual",
]

#: Host component of in-memory addresses (they never touch a resolver).
MEM_HOST = "mem"

#: Where virtual clocks start.  Deliberately positive: a ``LiveNodeSpec``
#: epoch of 0.0 means "adopt the introducer's", so the harness needs a
#: non-zero epoch that every node can share.
VIRTUAL_EPOCH = 1000.0


class _VirtualClock:
    """A clock that only moves when the event loop would otherwise sleep."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def time(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds


def install_virtual_clock(
    loop: asyncio.AbstractEventLoop, *, start: float = VIRTUAL_EPOCH
) -> _VirtualClock:
    """Time-warp *loop*: sleeps become instant virtual-time jumps.

    The selector's blocking ``select(timeout)`` is replaced by "advance the
    virtual clock by *timeout*, then poll" and ``loop.time`` by the virtual
    clock, so timer ordering, ``asyncio.sleep`` and ``wait_for`` all run on
    deterministic virtual time.  Only valid for loops that never wait on
    real I/O — which is the point: the memory fabric has none.
    """
    clock = _VirtualClock(start)
    selector = loop._selector  # type: ignore[attr-defined]
    original_select = selector.select

    def warped_select(timeout=None):
        if timeout is None:
            # No ready callbacks and no timers: nothing can ever wake this
            # loop again.  Failing loudly beats hanging the test run.
            raise RuntimeError(
                "virtual clock: the event loop would sleep forever "
                "(deadlock in the in-memory overlay?)"
            )
        if timeout > 0:
            clock.advance(timeout)
            timeout = 0
        return original_select(timeout)

    selector.select = warped_select
    loop.time = clock.time  # type: ignore[method-assign]
    return clock


def run_virtual(coro, *, start: float = VIRTUAL_EPOCH):
    """``asyncio.run`` on a fresh virtual-clock loop."""
    loop = asyncio.new_event_loop()
    install_virtual_clock(loop, start=start)
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class MemoryNetwork:
    """In-process datagram hub: binds endpoints, applies one fault plan.

    Unlike the UDP fabric (where each sender injects its own faults), the
    hub sees both endpoints of every datagram, so link rules and partition
    groups can name infrastructure (:data:`~repro.live.faults.SUPERVISOR`,
    :data:`~repro.live.faults.INTRODUCER`) as well as node ids.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.injector = FaultInjector(plan)
        #: Overlay-relative "now" for timed partitions; defaults to the
        #: running loop's clock.
        self._clock = clock
        self._endpoints: Dict[Address, "MemoryTransport"] = {}
        self._labels: Dict[Address, Optional[Label]] = {}
        self._next_port = 1
        #: Datagrams addressed to nobody (a closed or never-bound address).
        self.undeliverable = 0
        #: Copies actually scheduled for delivery.
        self.delivered = 0

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap the network-wide fault plan (e.g. heal a partition)."""
        self.injector.set_plan(plan)

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    # -- endpoint registry -------------------------------------------------

    def bind(
        self, endpoint: "MemoryTransport", label: Optional[Label] = None
    ) -> Address:
        address = (MEM_HOST, self._next_port)
        self._next_port += 1
        self._endpoints[address] = endpoint
        self._labels[address] = label
        return address

    def unbind(self, address: Address) -> None:
        self._endpoints.pop(address, None)
        self._labels.pop(address, None)

    def transport_factory(self, label: Optional[Label] = None):
        """An async ``(handler, host, port) -> MemoryTransport`` factory,
        signature-compatible with :meth:`UdpTransport.create` so it plugs
        straight into :class:`~repro.live.runtime.LiveNode` and
        :meth:`Introducer.start`."""

        async def factory(handler, _host: str = MEM_HOST, _port: int = 0):
            return MemoryTransport(self, handler, label=label)

        return factory

    # -- delivery ----------------------------------------------------------

    def deliver(self, src: Address, dst: Address, data: bytes) -> None:
        """Route one datagram through the fault plan to its destination."""
        if dst not in self._endpoints:
            self.undeliverable += 1
            return
        loop = asyncio.get_running_loop()
        deliveries = self.injector.plan_delivery(
            self._labels.get(src), self._labels.get(dst), self._now()
        )
        for delay in deliveries:
            self.delivered += 1
            if delay <= 0.0:
                loop.call_soon(self._push, dst, data, src)
            else:
                loop.call_later(delay, self._push, dst, data, src)

    def _push(self, dst: Address, data: bytes, src: Address) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is not None and not endpoint._closed:
            endpoint._on_datagram(data, src)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryNetwork(endpoints={len(self._endpoints)}, "
            f"delivered={self.delivered})"
        )


class MemoryTransport(DatagramEndpoint):
    """One in-process endpoint: same surface as ``UdpTransport``, no socket.

    Messages are *encoded to bytes* on send and decoded on receive, so the
    codec sits on the path exactly as it does over UDP.  Fault injection
    happens in the hub (which knows both endpoints' labels), so
    :meth:`set_fault_plan` — the handler for a pushed
    :class:`~repro.live.control.FaultUpdate` — forwards to the network.
    """

    def __init__(
        self,
        network: MemoryNetwork,
        handler: Callable[[Any, Address], None],
        *,
        label: Optional[Label] = None,
    ) -> None:
        super().__init__(handler)
        self._network = network
        self.label = label
        self._address = network.bind(self, label)

    @classmethod
    async def create(
        cls,
        handler: Callable[[Any, Address], None],
        host: str = MEM_HOST,
        port: int = 0,
        *,
        network: MemoryNetwork,
        label: Optional[Label] = None,
    ) -> "MemoryTransport":
        return cls(network, handler, label=label)

    @property
    def local_address(self) -> Address:
        return self._address

    def send_to(self, address: Address, message: Any) -> int:
        """Encode and route one message; returns the payload size."""
        if self._closed:
            return 0
        data = encode(message)
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(data)
        self._network.deliver(self._address, address, data)
        return len(data)

    def set_fault_plan(self, plan: FaultPlan) -> None:
        # The hub is the single fault-decision point on this fabric: a
        # per-endpoint injector here would compound with the network's.
        self._network.set_plan(plan)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._network.unbind(self._address)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"bound={self._address}"
        return f"MemoryTransport({state}, label={self.label!r})"


class MemoryOverlay:
    """A complete live overlay run, in one process, on a virtual clock.

    Mirrors :class:`~repro.live.supervisor.LiveSupervisor` — boot N nodes
    against a real introducer, optionally crash/respawn one, scrape over
    the control plane, audit with the shared consistency oracle — except
    nodes are in-process :class:`LiveNode` instances over a
    :class:`MemoryNetwork`, so a run is fast, socket-free and, for a fixed
    config + plan seed, byte-identical in its summary JSON.

    Churn components (which kill OS processes) are not driven here; the
    one-shot ``crash_after``/``crash_downtime`` chaos and arbitrary
    :class:`~repro.live.faults.FaultPlan` regimes are.
    """

    def __init__(
        self,
        config: LiveConfig,
        *,
        plan: Optional[FaultPlan] = None,
        store: Optional[SummaryStore] = None,
        workload: Optional[Callable[["MemoryOverlay"], Any]] = None,
        journal=None,
    ) -> None:
        self.config = config
        self.plan = plan if plan is not None else config.resolved_fault_plan()
        self.store = store
        #: Obs event journal; no-op unless the caller provides one.  Events
        #: are timestamped from the fabric's virtual clock (the journal's
        #: clock is rebound to the loop at :meth:`run`), so a seeded run's
        #: journal timestamps are themselves deterministic.
        if journal is None:
            from ..obs.journal import NULL_JOURNAL

            journal = NULL_JOURNAL
        self.journal = journal
        #: Optional async ``workload(overlay)`` started once every node is
        #: booted and awaited before the final scrape — how the serving
        #: surface (and its load bench) runs against this fabric: the hook
        #: can build a :func:`repro.serve.memory_backend`, drive requests
        #: on the virtual clock, and leave its findings in
        #: :attr:`workload_result`.
        self._workload = workload
        self.workload_result: Any = None
        self.condition = ConsistencyCondition(
            config.resolved_k(), config.nodes, config.hash_algorithm
        )
        self.network: Optional[MemoryNetwork] = None
        self.introducer: Optional[IntroducerGroup] = None
        self.nodes: Dict[NodeId, LiveNode] = {}
        self._rng = random.Random(config.seed * 7919 + 13)
        self._crash_victims: List[NodeId] = []
        self._join_times: Dict[NodeId, float] = {}
        self._up_since: Dict[NodeId, float] = {}
        self._last_life: Dict[NodeId, float] = {}
        self._memory_series: Dict[NodeId, List[float]] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._state_dir: Optional[pathlib.Path] = None
        self._own_state_dir = False

    # -- public API --------------------------------------------------------

    def run(self) -> LiveReport:
        """Execute the deployment on a fresh virtual-clock loop."""
        loop = asyncio.new_event_loop()
        install_virtual_clock(loop, start=VIRTUAL_EPOCH)
        self._loop = loop
        try:
            report = loop.run_until_complete(self._run())
        finally:
            self._loop = None
            loop.close()
        if self.store is not None:
            path = self.store.save(
                live_config_key(self.config, plan=self.plan), report.summary
            )
            report.store_path = str(path) if path is not None else None
        return report

    # -- internals ---------------------------------------------------------

    def _overlay_now(self) -> float:
        return self._loop.time() - VIRTUAL_EPOCH

    def _life_seconds(self, node: NodeId) -> float:
        up_since = self._up_since.get(node)
        if up_since is not None:
            return self._loop.time() - up_since
        return self._last_life.get(node, 0.0)

    async def _boot_node(self, node_id: NodeId, introducer_addr: Address) -> None:
        spec = self.config.node_spec(
            node_id,
            introducer_addr,
            epoch=VIRTUAL_EPOCH,
            state_file=str(self._state_dir / f"node-{node_id}.json"),
            introducers=self.introducer.addresses,
        )
        # Addresses on this fabric are ("mem", port): the host a node
        # announces in Hello must match, or every directory entry (and so
        # all peer traffic) would point at an unbound address.
        spec.host = MEM_HOST
        node = LiveNode(
            spec,
            transport_factory=self.network.transport_factory(node_id),
            clock=self._loop.time,
            journal=self.journal,
        )
        await node.start()
        self.nodes[node_id] = node
        self._join_times.setdefault(node_id, self._overlay_now())
        self._up_since[node_id] = self._loop.time()
        self.journal.emit("live.node_spawned", node=node_id)

    async def _kill_introducer(self) -> None:
        """HA chaos: hard-stop the primary bootstrap replica mid-run."""
        await asyncio.sleep(self.config.kill_introducer_after)
        self.introducer.kill_primary()

    async def _crash_and_respawn(self, introducer_addr: Address) -> None:
        config = self.config
        await asyncio.sleep(config.crash_after)
        candidates = sorted(
            node for node, since in self._up_since.items() if since is not None
        )
        if not candidates:
            return
        victim = candidates[self._rng.randrange(len(candidates))]
        self._crash_victims.append(victim)
        self.journal.emit(
            "live.node_crashed", node=victim, downtime_s=config.crash_downtime
        )
        self._last_life[victim] = self._loop.time() - self._up_since[victim]
        self._up_since[victim] = None
        node = self.nodes[victim]
        await node.stop(graceful=False)  # a crash: no goodbye, no snapshot
        self.introducer.drop(victim)
        await asyncio.sleep(config.crash_downtime)
        await self._boot_node(victim, introducer_addr)

    async def _scrape(self, prober, scraper, timeout: float, attempts: int = 3):
        return await prober.probe(
            scraper,
            self.introducer.alive_entries(),
            timeout=timeout,
            attempts=attempts,
        )

    async def _run(self) -> LiveReport:
        config = self.config
        loop = self._loop
        wall_start = time.perf_counter()
        self.network = MemoryNetwork(self.plan, clock=self._overlay_now)
        self.journal.bind_clock(loop.time)
        self.introducer = IntroducerGroup(
            config.introducers,
            ttl=config.introducer_ttl,
            epoch=VIRTUAL_EPOCH,
            clock=loop.time,
            journal=self.journal,
            sync_interval=config.introducer_sync_interval,
        )
        introducer_addr = await self.introducer.start(
            transport_factories=[
                self.network.transport_factory(introducer_label(index))
                for index in range(config.introducers)
            ]
        )
        prober = StatusProber()
        scraper = MemoryTransport(
            self.network, prober.on_reply, label=SUPERVISOR
        )
        self._state_dir = (
            pathlib.Path(config.state_dir)
            if config.state_dir
            else pathlib.Path(tempfile.mkdtemp(prefix="avmon-mem-"))
        )
        self._own_state_dir = not config.state_dir
        self._state_dir.mkdir(parents=True, exist_ok=True)
        chaos_task: Optional[asyncio.Task] = None
        kill_task: Optional[asyncio.Task] = None
        workload_task: Optional[asyncio.Task] = None
        try:
            for node_id in range(config.nodes):
                await self._boot_node(node_id, introducer_addr)
            if config.crash_after is not None:
                chaos_task = asyncio.create_task(
                    self._crash_and_respawn(introducer_addr)
                )
            if config.kill_introducer_after is not None:
                kill_task = asyncio.create_task(self._kill_introducer())
            if self._workload is not None:
                workload_task = asyncio.create_task(self._workload(self))
            deadline = loop.time() + config.duration
            next_sample = loop.time() + config.sample_interval
            scrape_timeout = max(0.5, config.ping_timeout * 4)
            while loop.time() < deadline:
                await asyncio.sleep(min(0.25, deadline - loop.time()))
                if loop.time() >= next_sample:
                    next_sample = loop.time() + config.sample_interval
                    statuses = await self._scrape(
                        prober, scraper, scrape_timeout
                    )
                    for node, status in statuses.items():
                        self._memory_series.setdefault(node, []).append(
                            float(status.memory_entries)
                        )
            if chaos_task is not None:
                # The crash schedule lies inside the run window; let a
                # respawn that is mid-boot finish so teardown is orderly.
                await chaos_task
                chaos_task = None
            if kill_task is not None:
                await kill_task  # scheduled inside the window: already done
                kill_task = None
            if workload_task is not None:
                # A workload still in flight at the deadline runs to
                # completion (virtual time: effectively free) — a half
                # -driven request schedule would be nondeterministic.
                self.workload_result = await workload_task
                workload_task = None
            # The final scrape feeds the audit: retry harder, so a lossy
            # regime degrades the *measured* discovery ratio, not the
            # measurement itself (6 probe losses in a row at 20% loss is
            # already < 0.1% per node).
            statuses = await self._scrape(
                prober, scraper, max(2.0, config.ping_timeout * 12), attempts=6
            )
            final_alive = self.introducer.alive_count()
        finally:
            for task in (chaos_task, kill_task, workload_task):
                if task is not None:
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
            for node in self.nodes.values():
                await node.stop(graceful=False)
            scraper.close()
            self.introducer.close()
            if self._own_state_dir and self._state_dir is not None:
                shutil.rmtree(self._state_dir, ignore_errors=True)
        return build_live_report(
            config,
            self.condition,
            statuses,
            crash_victims=self._crash_victims,
            final_alive=final_alive,
            elapsed=time.perf_counter() - wall_start,
            join_times=self._join_times,
            life_seconds=self._life_seconds,
            memory_series=self._memory_series,
            n_longterm=config.nodes,
        )


def run_memory_overlay(
    config: LiveConfig,
    *,
    plan: Optional[FaultPlan] = None,
    store: Optional[SummaryStore] = None,
) -> LiveReport:
    """Synchronous front door for the in-memory harness."""
    return MemoryOverlay(config, plan=plan, store=store).run()
