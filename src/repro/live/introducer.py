"""The introducer: bootstrap and aliveness oracle for a live overlay.

AVMON's protocols assume two environment services the simulator provided
for free: ``choose_bootstrap`` (a uniformly random currently-alive node)
and the alive-node oracle behind the useless-ping metric.  In a real
deployment both come from an *introducer* — a tiny, soft-state UDP service
every node registers with:

* :class:`Hello` announces a node and its UDP port; the introducer records
  the address and replies with the overlay epoch;
* :class:`Heartbeat` keeps the registration alive; silence past
  ``ttl`` seconds (a crashed or partitioned node) expires it;
* :class:`Goodbye` expires it immediately (graceful leave);
* :class:`DirectoryRequest` returns the currently-alive peers with their
  addresses, from which each node serves its own ``choose_bootstrap``
  locally — the introducer is on no protocol hot path, receives O(N)
  heartbeats per interval, and stores O(N) soft state, so it scales the
  way the paper's join protocol assumes a bootstrap service does.

The introducer is deliberately *not* a membership authority: AVMON's
coarse views gossip membership on their own.  Losing the introducer stops
new joins and staleness-tolerant metrics, nothing else.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..core.hashing import NodeId
from .control import (
    DirectoryReply,
    DirectoryRequest,
    Goodbye,
    Heartbeat,
    Hello,
    HelloAck,
)
from .transport import Address, UdpTransport

__all__ = ["Introducer"]


class Introducer:
    """Soft-state registration service over one UDP socket."""

    def __init__(
        self,
        *,
        ttl: float = 5.0,
        epoch: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        journal=None,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        #: Obs event journal (``repro.obs``); the no-op null journal by
        #: default so the datagram path pays nothing unobserved.
        if journal is None:
            from ..obs.journal import NULL_JOURNAL

            journal = NULL_JOURNAL
        self.journal = journal
        #: Overlay epoch (UNIX time); node clocks report relative to this.
        self.epoch = epoch if epoch is not None else time.time()
        #: TTL timebase; injectable so the in-memory harness can run the
        #: introducer on a virtual clock (default: the wall clock).
        self._clock = clock if clock is not None else time.monotonic
        self._transport: Optional[UdpTransport] = None
        self._addresses: Dict[NodeId, Address] = {}
        self._last_seen: Dict[NodeId, float] = {}
        #: node -> monotonic deadline before which heartbeats may not
        #: re-register it (set by :meth:`drop` for force-removed nodes).
        self._quarantine: Dict[NodeId, float] = {}
        self.registrations = 0

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        transport_factory=None,
    ) -> Address:
        """Bind the service; returns the actual listening address.

        *transport_factory* (an async ``(handler, host, port) -> endpoint``)
        swaps the fabric — the in-memory harness passes a
        :class:`~repro.live.memory_transport.MemoryTransport` factory.
        """
        if transport_factory is None:
            transport_factory = UdpTransport.create
        self._transport = await transport_factory(self._handle, host, port)
        return self._transport.local_address

    @property
    def address(self) -> Address:
        if self._transport is None:
            raise RuntimeError("introducer is not started")
        return self._transport.local_address

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- registry ----------------------------------------------------------

    def _expire(self, now: float) -> None:
        deadline = now - self.ttl
        for node, seen in list(self._last_seen.items()):
            if seen < deadline:
                del self._last_seen[node]
                self._addresses.pop(node, None)
                self.journal.emit(
                    "introducer.expired", node=node, silent_s=round(now - seen, 3)
                )

    def alive_entries(self) -> Tuple[Tuple[NodeId, str, int], ...]:
        """Current alive peers as ``(node, host, port)``, sorted by id."""
        self._expire(self._clock())
        return tuple(
            (node, self._addresses[node][0], self._addresses[node][1])
            for node in sorted(self._last_seen)
            if node in self._addresses
        )

    def alive_count(self) -> int:
        return len(self.alive_entries())

    def is_alive(self, node: NodeId) -> bool:
        self._expire(self._clock())
        return node in self._last_seen

    def drop(self, node: NodeId) -> None:
        """Forcibly expire one node (the supervisor just killed it).

        Unlike an organic TTL expiry, a forced drop quarantines the id for
        one TTL: a heartbeat already in flight from the freshly-killed
        process must not resurrect the corpse.  A real respawn announces
        itself with :class:`Hello`, which lifts the quarantine.
        """
        self._last_seen.pop(node, None)
        self._addresses.pop(node, None)
        self._quarantine[node] = self._clock() + self.ttl

    # -- message handling --------------------------------------------------

    def _handle(self, message, addr: Address) -> None:
        now = self._clock()
        if isinstance(message, Hello):
            host = message.host or addr[0]
            self._quarantine.pop(message.node, None)
            self._addresses[message.node] = (host, message.port)
            self._last_seen[message.node] = now
            self.registrations += 1
            self.journal.emit(
                "introducer.registered", node=message.node, port=message.port
            )
            self._transport.send_to(
                addr, HelloAck(epoch=self.epoch, alive=self.alive_count())
            )
        elif isinstance(message, Heartbeat):
            # A heartbeat re-registers even after a TTL expiry: nodes send
            # it from the same bound socket they announced in Hello, so the
            # datagram's source address IS the node's address.  Without
            # this, one heartbeat gap longer than the TTL (a GC stall, a
            # dropped burst) would exile a healthy node forever.  A node
            # under forced-drop quarantine (just SIGKILLed) is the one
            # exception — its stale in-flight heartbeats must not
            # resurrect it; its respawn will Hello.
            if now < self._quarantine.get(message.node, 0.0):
                return
            if message.node not in self._addresses:
                self._addresses[message.node] = addr
            self._last_seen[message.node] = now
        elif isinstance(message, Goodbye):
            self.journal.emit("introducer.goodbye", node=message.node)
            self.drop(message.node)
        elif isinstance(message, DirectoryRequest):
            self._transport.send_to(
                addr, DirectoryReply(entries=self.alive_entries())
            )
        # Anything else on this socket is ignored; the transport already
        # counted it.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Introducer(alive={self.alive_count()}, ttl={self.ttl})"
