"""The introducer: bootstrap and aliveness oracle for a live overlay.

AVMON's protocols assume two environment services the simulator provided
for free: ``choose_bootstrap`` (a uniformly random currently-alive node)
and the alive-node oracle behind the useless-ping metric.  In a real
deployment both come from an *introducer* — a tiny, soft-state UDP service
every node registers with:

* :class:`Hello` announces a node and its UDP port; the introducer records
  the address and replies with the overlay epoch;
* :class:`Heartbeat` keeps the registration alive; silence past
  ``ttl`` seconds (a crashed or partitioned node) expires it;
* :class:`Goodbye` expires it immediately (graceful leave);
* :class:`DirectoryRequest` returns the currently-alive peers with their
  addresses, from which each node serves its own ``choose_bootstrap``
  locally — the introducer is on no protocol hot path, receives O(N)
  heartbeats per interval, and stores O(N) soft state, so it scales the
  way the paper's join protocol assumes a bootstrap service does.

The introducer is deliberately *not* a membership authority: AVMON's
coarse views gossip membership on their own.  Losing the introducer stops
new joins and staleness-tolerant metrics, nothing else.

**High availability** (ROADMAP item 3): :class:`IntroducerGroup` runs N
replicas as a bootstrap quorum.  Each replica anti-entropy-syncs its
directory to its peers with :class:`~repro.live.control.IntroducerSync`
datagrams (entries travel with relative ages, the epoch converges to the
eldest), so killing the primary loses nothing a surviving replica has not
already merged — clients rotate to the next address and carry on.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.hashing import NodeId
from .control import (
    DirectoryReply,
    DirectoryRequest,
    Goodbye,
    Heartbeat,
    Hello,
    HelloAck,
    IntroducerSync,
)
from .faults import introducer_label
from .transport import Address, UdpTransport

__all__ = ["Introducer", "IntroducerGroup"]


class Introducer:
    """Soft-state registration service over one UDP socket."""

    def __init__(
        self,
        *,
        ttl: float = 5.0,
        epoch: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        journal=None,
        name: str = "introducer",
        sync_interval: float = 1.0,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.ttl = ttl
        #: Replica identity in journal events and chaos reports.
        self.name = name
        #: Seconds between anti-entropy pushes to :attr:`peers`.
        self.sync_interval = sync_interval
        #: Obs event journal (``repro.obs``); the no-op null journal by
        #: default so the datagram path pays nothing unobserved.
        if journal is None:
            from ..obs.journal import NULL_JOURNAL

            journal = NULL_JOURNAL
        self.journal = journal
        #: Overlay epoch (UNIX time); node clocks report relative to this.
        self.epoch = epoch if epoch is not None else time.time()
        #: TTL timebase; injectable so the in-memory harness can run the
        #: introducer on a virtual clock (default: the wall clock).
        self._clock = clock if clock is not None else time.monotonic
        self._transport: Optional[UdpTransport] = None
        self._addresses: Dict[NodeId, Address] = {}
        self._last_seen: Dict[NodeId, float] = {}
        #: node -> monotonic deadline before which heartbeats may not
        #: re-register it (set by :meth:`drop` for force-removed nodes).
        self._quarantine: Dict[NodeId, float] = {}
        self.registrations = 0
        #: Peer replica addresses this replica pushes sync datagrams to.
        self.peers: Tuple[Address, ...] = ()
        self._sync_task: Optional[asyncio.Task] = None
        #: Directory entries merged from peers (observability counter).
        self.synced_in = 0

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        transport_factory=None,
    ) -> Address:
        """Bind the service; returns the actual listening address.

        *transport_factory* (an async ``(handler, host, port) -> endpoint``)
        swaps the fabric — the in-memory harness passes a
        :class:`~repro.live.memory_transport.MemoryTransport` factory.
        """
        if transport_factory is None:
            transport_factory = UdpTransport.create
        self._transport = await transport_factory(self._handle, host, port)
        return self._transport.local_address

    @property
    def address(self) -> Address:
        if self._transport is None:
            raise RuntimeError("introducer is not started")
        return self._transport.local_address

    @property
    def running(self) -> bool:
        return self._transport is not None

    def close(self) -> None:
        if self._sync_task is not None:
            self._sync_task.cancel()
            self._sync_task = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- replication -------------------------------------------------------

    def set_peers(self, peers: Sequence[Address]) -> None:
        """Declare the other replicas of this replica's bootstrap quorum."""
        self.peers = tuple(
            (host, port) for host, port in peers if (host, port) != (
                self._transport.local_address if self._transport else None
            )
        )

    def start_sync(self) -> None:
        """Begin the periodic anti-entropy push (needs a running loop)."""
        if self._sync_task is None and self.peers and self.sync_interval > 0:
            self._sync_task = asyncio.get_running_loop().create_task(
                self._sync_loop()
            )

    async def _sync_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sync_interval)
            self.send_sync()

    def send_sync(self) -> None:
        """Push this replica's whole directory to every peer, once."""
        if self._transport is None or not self.peers:
            return
        now = self._clock()
        self._expire(now)
        entries = tuple(
            (
                node,
                self._addresses[node][0],
                self._addresses[node][1],
                round(now - self._last_seen[node], 6),
            )
            for node in sorted(self._last_seen)
            if node in self._addresses
        )
        sync = IntroducerSync(
            sender=self.name, epoch=self.epoch, entries=entries
        )
        for peer in self.peers:
            self._transport.send_to(peer, sync)

    def _merge_sync(self, sync: IntroducerSync, now: float) -> None:
        """Fold a peer's directory push into this replica's soft state."""
        if 0.0 < sync.epoch < self.epoch:
            # The eldest replica's epoch wins quorum-wide: node clocks are
            # epoch-relative, so all replicas must agree on one timebase.
            self.journal.emit(
                "introducer.epoch_adopted",
                name=self.name,
                peer=sync.sender,
                epoch=sync.epoch,
            )
            self.epoch = sync.epoch
        merged = 0
        for entry in sync.entries:
            if len(entry) != 4:
                continue
            node, host, port, age = entry
            seen = now - max(0.0, float(age))
            if seen <= now - self.ttl:
                continue  # already stale at arrival
            if now < self._quarantine.get(node, 0.0):
                continue  # a forced drop outlives a peer's older view
            if seen <= self._last_seen.get(node, -math.inf):
                continue  # this replica has heard from the node more recently
            if node not in self._last_seen:
                merged += 1
            self._last_seen[node] = seen
            self._addresses[node] = (host, port)
        if merged:
            self.synced_in += merged
            self.journal.emit(
                "introducer.sync",
                name=self.name,
                peer=sync.sender,
                learned=merged,
            )

    # -- registry ----------------------------------------------------------

    def _expire(self, now: float) -> None:
        deadline = now - self.ttl
        for node, seen in list(self._last_seen.items()):
            if seen < deadline:
                del self._last_seen[node]
                self._addresses.pop(node, None)
                self.journal.emit(
                    "introducer.expired", node=node, silent_s=round(now - seen, 3)
                )
        # Quarantines are just as soft as registrations: entries used to be
        # removed only by a Hello, so ids that never respawned leaked
        # forever under churn.  An expired quarantine has done its job (the
        # corpse's in-flight heartbeats are long gone) — drop it.
        for node, lifted_at in list(self._quarantine.items()):
            if now >= lifted_at:
                del self._quarantine[node]

    def alive_entries(self) -> Tuple[Tuple[NodeId, str, int], ...]:
        """Current alive peers as ``(node, host, port)``, sorted by id."""
        self._expire(self._clock())
        return tuple(
            (node, self._addresses[node][0], self._addresses[node][1])
            for node in sorted(self._last_seen)
            if node in self._addresses
        )

    def alive_count(self) -> int:
        return len(self.alive_entries())

    def is_alive(self, node: NodeId) -> bool:
        self._expire(self._clock())
        return node in self._last_seen

    def drop(self, node: NodeId) -> None:
        """Forcibly expire one node (the supervisor just killed it).

        Unlike an organic TTL expiry, a forced drop quarantines the id for
        one TTL: a heartbeat already in flight from the freshly-killed
        process must not resurrect the corpse.  A real respawn announces
        itself with :class:`Hello`, which lifts the quarantine.
        """
        self._last_seen.pop(node, None)
        self._addresses.pop(node, None)
        self._quarantine[node] = self._clock() + self.ttl

    # -- message handling --------------------------------------------------

    def _handle(self, message, addr: Address) -> None:
        now = self._clock()
        if isinstance(message, Hello):
            host = message.host or addr[0]
            self._quarantine.pop(message.node, None)
            self._expire(now)
            renewal = message.node in self._last_seen
            self._addresses[message.node] = (host, message.port)
            self._last_seen[message.node] = now
            self.registrations += 1
            self.journal.emit(
                "introducer.registered",
                name=self.name,
                node=message.node,
                port=message.port,
                renewal=renewal,
            )
            self._transport.send_to(
                addr, HelloAck(epoch=self.epoch, alive=self.alive_count())
            )
        elif isinstance(message, Heartbeat):
            # A heartbeat re-registers even after a TTL expiry: nodes send
            # it from the same bound socket they announced in Hello, so the
            # datagram's source address IS the node's address.  Without
            # this, one heartbeat gap longer than the TTL (a GC stall, a
            # dropped burst) would exile a healthy node forever.  A node
            # under forced-drop quarantine (just SIGKILLed) is the one
            # exception — its stale in-flight heartbeats must not
            # resurrect it; its respawn will Hello.
            if now < self._quarantine.get(message.node, 0.0):
                return
            if message.node not in self._addresses:
                self._addresses[message.node] = addr
            self._last_seen[message.node] = now
        elif isinstance(message, Goodbye):
            self.journal.emit("introducer.goodbye", node=message.node)
            self.drop(message.node)
        elif isinstance(message, DirectoryRequest):
            self._transport.send_to(
                addr, DirectoryReply(entries=self.alive_entries())
            )
        elif isinstance(message, IntroducerSync):
            self._merge_sync(message, now)
        # Anything else on this socket is ignored; the transport already
        # counted it.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Introducer(alive={self.alive_count()}, ttl={self.ttl})"


class IntroducerGroup:
    """N introducer replicas acting as one bootstrap quorum.

    The group mirrors the single-introducer surface the supervisor and
    the in-memory harness already use (``start``/``alive_entries``/
    ``drop``/``address``/``epoch``/``close``), so a one-replica group is a
    drop-in replacement.  All replicas share one epoch at construction;
    anti-entropy sync keeps their directories (and, defensively, the
    epoch) converged after that.
    """

    def __init__(
        self,
        count: int = 1,
        *,
        ttl: float = 5.0,
        epoch: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        journal=None,
        sync_interval: float = 1.0,
    ) -> None:
        if count < 1:
            raise ValueError(f"introducer count must be >= 1, got {count}")
        primary = Introducer(
            ttl=ttl,
            epoch=epoch,
            clock=clock,
            journal=journal,
            name=introducer_label(0),
            sync_interval=sync_interval,
        )
        self.replicas: List[Introducer] = [primary]
        for index in range(1, count):
            self.replicas.append(
                Introducer(
                    ttl=ttl,
                    # One timebase for the whole quorum: replicas created
                    # later must not mint their own (younger) epoch.
                    epoch=primary.epoch,
                    clock=clock,
                    journal=journal,
                    name=introducer_label(index),
                    sync_interval=sync_interval,
                )
            )
        self._addresses: Tuple[Address, ...] = ()

    def __len__(self) -> int:
        return len(self.replicas)

    # -- lifecycle ---------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        transport_factory=None,
        transport_factories: Optional[Sequence] = None,
    ) -> Address:
        """Bind every replica and wire the sync mesh; returns the primary's
        address.

        *transport_factories* supplies one factory per replica (the
        in-memory fabric labels each replica distinctly); a single
        *transport_factory* (or none, for UDP) is shared.  Only the
        primary binds *port*; further replicas always bind ephemerally.
        """
        addresses = []
        for index, replica in enumerate(self.replicas):
            factory = (
                transport_factories[index]
                if transport_factories is not None
                else transport_factory
            )
            addresses.append(
                await replica.start(
                    host, port if index == 0 else 0, transport_factory=factory
                )
            )
        self._addresses = tuple(addresses)
        for index, replica in enumerate(self.replicas):
            replica.set_peers(
                [a for j, a in enumerate(addresses) if j != index]
            )
            replica.start_sync()
        return addresses[0]

    @property
    def addresses(self) -> Tuple[Address, ...]:
        """Every replica's bound address, primary first (fixed at start)."""
        return self._addresses

    @property
    def address(self) -> Address:
        """The first *running* replica's address (primary while it lives)."""
        for replica in self.replicas:
            if replica.running:
                return replica.address
        raise RuntimeError("no introducer replica is running")

    @property
    def epoch(self) -> float:
        for replica in self.replicas:
            if replica.running:
                return replica.epoch
        return self.replicas[0].epoch

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()

    def kill_primary(self) -> Optional[str]:
        """Chaos: hard-stop the first running replica; returns its name.

        Refuses to kill the last survivor (returns ``None``): with zero
        replicas the drill stops measuring failover and starts measuring
        "no bootstrap service at all", which ``live down`` already covers.
        """
        running = [replica for replica in self.replicas if replica.running]
        if len(running) < 2:
            return None
        victim = running[0]
        victim.close()  # no goodbye, no handover — a SIGKILL, not a drain
        victim.journal.emit("introducer.killed", name=victim.name)
        return victim.name

    # -- single-introducer surface (delegating to the quorum) --------------

    def alive_entries(self) -> Tuple[Tuple[NodeId, str, int], ...]:
        """The union of every running replica's directory.

        Replicas converge through sync, so entries rarely disagree; when
        they do (a registration a sync has not carried yet), the first
        running replica's address wins — it heard the node directly.
        """
        merged: Dict[NodeId, Tuple[str, int]] = {}
        for replica in self.replicas:
            if not replica.running:
                continue
            for node, host, port in replica.alive_entries():
                merged.setdefault(node, (host, port))
        return tuple(
            (node, merged[node][0], merged[node][1])
            for node in sorted(merged)
        )

    def alive_count(self) -> int:
        return len(self.alive_entries())

    def is_alive(self, node: NodeId) -> bool:
        return any(
            replica.running and replica.is_alive(node)
            for replica in self.replicas
        )

    def drop(self, node: NodeId) -> None:
        """Forcibly expire *node* on every replica (supervisor kill path).

        The quarantine must land quorum-wide: one replica still holding
        the corpse would re-teach it to the others on the next sync.
        """
        for replica in self.replicas:
            replica.drop(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = sum(1 for replica in self.replicas if replica.running)
        return (
            f"IntroducerGroup(replicas={len(self.replicas)}, "
            f"running={running})"
        )
