"""Deterministic fault-injection plans for the live network stack.

A :class:`FaultPlan` declares, as plain data, how a network misbehaves:
per-datagram loss, a base one-way latency with uniform jitter,
duplication, reordering, per-link overrides and timed partitions.  Plans
are frozen dataclasses built from JSON primitives only, so they

* **round-trip through JSON** (``FaultPlan.from_json(plan.to_json()) ==
  plan``), travel inside a :class:`~repro.live.runtime.LiveNodeSpec` to
  node processes, and can live in config files;
* **participate in the stable cache key** — :meth:`FaultPlan.key` is a
  canonical tuple of scalars, hashable by
  :func:`repro.experiments.store.stable_key_hash` alongside the rest of a
  run's structural identity;
* are registered as a new ``fault`` component kind in
  :mod:`repro.registry`, so ``avmon live up --fault LOSSY`` and
  ``Scenario(fault="LOSSY")`` name the same plans.

A :class:`FaultInjector` executes one plan **deterministically**: every
``(src, dst)`` link gets its own :class:`random.Random` stream seeded from
a BLAKE2b digest of ``(plan.seed, src, dst)``, so the decision sequence
for a link depends only on the plan and the order of sends on that link —
never on interleaving across links, process ids or ``PYTHONHASHSEED``.
The same injector drives three fabrics: the in-process
:class:`~repro.live.memory_transport.MemoryNetwork` (applied in the hub),
the real :class:`~repro.live.transport.UdpTransport` (applied on the send
side), and the simulator's :class:`~repro.net.network.Network` (extra
delay/drops on top of the modelled latency).

Endpoint labels are node ids (ints) for overlay members and well-known
strings (``"introducer"``, ``"supervisor"``) for infrastructure; a ``None``
label means "unidentified" and matches only the global parameters, never a
link rule or partition group.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..registry import register

__all__ = [
    "Label",
    "LinkFault",
    "Partition",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "introducer_label",
    "is_introducer_label",
    "parse_partition_groups",
]

#: An endpoint identity a plan can refer to: a node id, a well-known
#: infrastructure name, or ``"*"`` (in link rules) for "any endpoint".
Label = Union[int, str]

#: Wildcard endpoint in link rules.
ANY = "*"

#: The supervisor's scrape/control endpoint label.
SUPERVISOR = "supervisor"

#: The introducer's endpoint label (the primary replica; further replicas
#: are labelled by :func:`introducer_label`).
INTRODUCER = "introducer"


def introducer_label(index: int) -> str:
    """The fault-injection label of introducer replica *index*.

    Replica 0 keeps the bare :data:`INTRODUCER` label so every existing
    plan (and stored cache key) that names ``"introducer"`` still hits the
    primary; replicas beyond it are ``introducer-1``, ``introducer-2``, …
    """
    if index < 0:
        raise ValueError(f"introducer index must be >= 0, got {index}")
    return INTRODUCER if index == 0 else f"{INTRODUCER}-{index}"


def is_introducer_label(label: "Label") -> bool:
    """True for the primary's label or any ``introducer-<i>`` replica."""
    if not isinstance(label, str):
        return False
    if label == INTRODUCER:
        return True
    prefix = f"{INTRODUCER}-"
    return label.startswith(prefix) and label[len(prefix):].isdigit()

#: The serving front end's observer-client endpoint label (see
#: :mod:`repro.serve`): partitioning it from the overlay exercises the
#: query path's timeout/partial-result handling without touching the
#: protocol traffic between nodes.
SERVE = "serve"


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class LinkFault:
    """Overrides for one directed link; ``None`` fields inherit the plan's.

    ``src``/``dst`` are endpoint labels or ``"*"``; the first rule matching
    a datagram's (source, destination) wins.
    """

    src: Label = ANY
    dst: Label = ANY
    loss: Optional[float] = None
    latency: Optional[float] = None
    jitter: Optional[float] = None
    duplicate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.loss is not None:
            _check_probability("link loss", self.loss)
        if self.duplicate is not None:
            _check_probability("link duplicate", self.duplicate)
        for name in ("latency", "jitter"):
            value = getattr(self, name)
            if value is not None:
                _check_non_negative(f"link {name}", value)

    def matches(self, src: Optional[Label], dst: Optional[Label]) -> bool:
        return (self.src == ANY or self.src == src) and (
            self.dst == ANY or self.dst == dst
        )


@dataclass(frozen=True)
class Partition:
    """A timed split of the overlay into non-communicating groups.

    Active while ``start <= now < end`` (``end < 0`` means "never heals").
    ``groups`` are tuples of endpoint labels; two *labelled* endpoints in
    different groups cannot exchange datagrams while the partition is
    active.  Endpoints in no group (including unlabelled control traffic)
    are unaffected.

    Infrastructure labels (:data:`SUPERVISOR`, :data:`INTRODUCER`) in a
    group cut those paths on the in-memory fabric, where the hub labels
    both endpoints of every datagram.  On the real UDP fabric faults run
    send-side in each node: nodes recognise the introducer's address (so
    :data:`INTRODUCER` groups work), but cannot identify the supervisor's
    scrape endpoint — :data:`SUPERVISOR` groups are a no-op there, and
    ``avmon live chaos`` warns when one is pushed.
    """

    groups: Tuple[Tuple[Label, ...], ...] = ()
    start: float = 0.0
    end: float = -1.0

    def __post_init__(self) -> None:
        _check_non_negative("partition start", self.start)
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end < 0.0 or now < self.end)

    def separates(self, src: Optional[Label], dst: Optional[Label]) -> bool:
        src_group = self._group_of(src)
        dst_group = self._group_of(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _group_of(self, label: Optional[Label]) -> Optional[int]:
        if label is None:
            return None
        for index, group in enumerate(self.groups):
            if label in group:
                return index
        return None


@dataclass(frozen=True)
class FaultPlan:
    """One network's misbehaviour, declaratively (JSON-portable)."""

    #: Per-datagram drop probability on every link.
    loss: float = 0.0
    #: Base one-way delay added to every delivered datagram, in seconds.
    latency: float = 0.0
    #: Uniform extra delay in ``[0, jitter)`` per datagram.
    jitter: float = 0.0
    #: Probability a datagram is delivered twice.
    duplicate: float = 0.0
    #: Probability a datagram is held back by ``reorder_window`` seconds —
    #: long enough to arrive after datagrams sent later.
    reorder: float = 0.0
    reorder_window: float = 0.05
    #: Per-link overrides; first match wins.
    links: Tuple[LinkFault, ...] = ()
    #: Timed partitions; any active one that separates a pair drops it.
    partitions: Tuple[Partition, ...] = ()
    #: Root of every link's deterministic decision stream.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            _check_probability(name, getattr(self, name))
        for name in ("latency", "jitter", "reorder_window"):
            _check_non_negative(name, getattr(self, name))
        object.__setattr__(
            self,
            "links",
            tuple(
                link if isinstance(link, LinkFault) else LinkFault(**link)
                for link in self.links
            ),
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(
                part if isinstance(part, Partition) else Partition(**part)
                for part in self.partitions
            ),
        )

    # -- interrogation -----------------------------------------------------

    def is_null(self) -> bool:
        """True when the plan perturbs nothing (a perfect network)."""
        return (
            self.loss == 0.0
            and self.latency == 0.0
            and self.jitter == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and not self.links
            and not self.partitions
        )

    def link_params(
        self, src: Optional[Label], dst: Optional[Label]
    ) -> Tuple[float, float, float, float]:
        """Effective ``(loss, latency, jitter, duplicate)`` for one link."""
        for link in self.links:
            if link.matches(src, dst):
                return (
                    self.loss if link.loss is None else link.loss,
                    self.latency if link.latency is None else link.latency,
                    self.jitter if link.jitter is None else link.jitter,
                    self.duplicate if link.duplicate is None else link.duplicate,
                )
        return (self.loss, self.latency, self.jitter, self.duplicate)

    def partitioned(
        self, src: Optional[Label], dst: Optional[Label], now: float
    ) -> bool:
        return any(
            part.active(now) and part.separates(src, dst)
            for part in self.partitions
        )

    # -- functional updates ------------------------------------------------

    def with_params(self, **changes: Any) -> "FaultPlan":
        return replace(self, **changes)

    # -- identity ----------------------------------------------------------

    def key(self) -> Tuple:
        """Canonical scalar tuple for the stable cache key.

        Built from declared values only (never ``repr``/``hash``), so it is
        digestible by :func:`repro.experiments.store.stable_key_hash` and
        identical in every process.
        """
        return (
            "FAULT",
            self.loss,
            self.latency,
            self.jitter,
            self.duplicate,
            self.reorder,
            self.reorder_window,
            tuple(
                (l.src, l.dst, l.loss, l.latency, l.jitter, l.duplicate)
                for l in self.links
            ),
            tuple((p.groups, p.start, p.end) for p in self.partitions),
            self.seed,
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {', '.join(unknown)}; "
                f"expected a subset of: {', '.join(sorted(known))}"
            )
        data = dict(payload)
        data["links"] = tuple(
            link if isinstance(link, LinkFault) else LinkFault(**link)
            for link in data.get("links", ())
        )
        data["partitions"] = tuple(
            part if isinstance(part, Partition) else Partition(**part)
            for part in data.get("partitions", ())
        )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(
                f"FaultPlan JSON must be an object, got {type(payload).__name__}"
            )
        return cls.from_dict(payload)


@dataclass
class FaultStats:
    """What one injector did to the traffic it saw."""

    passed: int = 0
    dropped: int = 0
    partitioned: int = 0
    duplicated: int = 0
    delayed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class FaultInjector:
    """Executes one :class:`FaultPlan` with per-link deterministic streams.

    :meth:`plan_delivery` is the single decision point every fabric calls:
    it returns the tuple of delivery delays for one datagram — empty means
    dropped, one entry is the normal case, two means a duplicate.  The
    stream for a link depends only on ``(plan.seed, src, dst)`` and the
    number of prior sends on that link, so identical runs make identical
    decisions whatever the global event interleaving.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.stats = FaultStats()
        self._rngs: Dict[Tuple[str, str], random.Random] = {}

    def set_plan(self, plan: FaultPlan) -> None:
        """Swap the plan at runtime (``avmon live chaos --loss ...``).

        Decision streams restart: a new plan is a new experiment.
        """
        self.plan = plan
        self._rngs.clear()

    def _rng(self, src: Optional[Label], dst: Optional[Label]) -> random.Random:
        key = (_label_token(src), _label_token(dst))
        rng = self._rngs.get(key)
        if rng is None:
            text = json.dumps(
                [self.plan.seed, key[0], key[1]], separators=(",", ":")
            )
            digest = hashlib.blake2b(
                text.encode("utf-8"), digest_size=8
            ).digest()
            rng = random.Random(int.from_bytes(digest, "big"))
            self._rngs[key] = rng
        return rng

    def plan_delivery(
        self,
        src: Optional[Label],
        dst: Optional[Label],
        now: float,
    ) -> Tuple[float, ...]:
        """Delivery delays for one datagram on ``src -> dst`` at ``now``.

        ``()`` means the datagram is lost (partition or random loss); each
        returned float is one copy's extra one-way delay in seconds.
        """
        plan = self.plan
        if plan.is_null():
            self.stats.passed += 1
            return (0.0,)
        if plan.partitioned(src, dst, now):
            self.stats.partitioned += 1
            return ()
        loss, latency, jitter, duplicate = plan.link_params(src, dst)
        rng = self._rng(src, dst)
        if loss > 0.0 and rng.random() < loss:
            self.stats.dropped += 1
            return ()
        copies = 1
        if duplicate > 0.0 and rng.random() < duplicate:
            copies = 2
            self.stats.duplicated += 1
        delays = []
        for _ in range(copies):
            delay = latency
            if jitter > 0.0:
                delay += rng.random() * jitter
            if plan.reorder > 0.0 and rng.random() < plan.reorder:
                delay += plan.reorder_window
            delays.append(delay)
        if any(delay > 0.0 for delay in delays):
            self.stats.delayed += 1
        self.stats.passed += 1
        return tuple(delays)


def _label_token(label: Optional[Label]) -> str:
    """A collision-free string form of a label for RNG-stream keying."""
    if label is None:
        return "?"
    if isinstance(label, bool) or not isinstance(label, int):
        return f"s:{label}"
    return f"i:{label}"


#: String labels a partition spec may name besides integer node ids.
_KNOWN_LABELS = (SUPERVISOR, INTRODUCER, SERVE)


def parse_partition_groups(text: str) -> Tuple[Tuple[Label, ...], ...]:
    """Parse the CLI's ``"0,1,2|3,4"`` partition syntax into groups.

    Tokens must be integer node ids, the known infrastructure labels
    (``supervisor``, ``introducer``, ``serve``) or a per-replica
    introducer label (``introducer-1``, ``introducer-2``, …).  Anything
    else is rejected — a typo'd id (``O`` for ``0``) silently matching
    nothing would leave the operator measuring a different topology than
    they asked for.
    """
    groups = []
    for part in text.split("|"):
        members = []
        for token in part.split(","):
            token = token.strip()
            if not token:
                continue
            if token.isdigit():  # non-negative: no node has a negative id
                members.append(int(token))
            elif token.lower() in _KNOWN_LABELS or is_introducer_label(
                token.lower()
            ):
                members.append(token.lower())
            else:
                raise ValueError(
                    f"unknown partition member {token!r}: expected a node "
                    f"id, one of {', '.join(_KNOWN_LABELS)}, or "
                    f"introducer-<i>"
                )
        if members:
            groups.append(tuple(members))
    if len(groups) < 2:
        raise ValueError(
            f"a partition needs at least two groups, got {text!r} "
            f"(syntax: '0,1,2|3,4[|...]')"
        )
    return tuple(groups)


# -- registered plans --------------------------------------------------------
#
# Every factory shares the signature ``factory(**params) -> FaultPlan`` and
# accepts overrides for its defaults, so ``avmon live up --fault LOSSY`` and
# ``create("fault", "LOSSY", loss=0.25)`` both work.


@register("fault", "NONE")
def _make_none(**params: Any) -> FaultPlan:
    """A perfect network (the default)."""
    return FaultPlan(**params)


@register("fault", "LOSSY")
def _make_lossy(**params: Any) -> FaultPlan:
    """10% independent per-datagram loss on every link."""
    params.setdefault("loss", 0.1)
    return FaultPlan(**params)


@register("fault", "WAN")
def _make_wan(**params: Any) -> FaultPlan:
    """Wide-area flavour: 30 ms base latency, 20 ms jitter, 1% loss."""
    params.setdefault("latency", 0.03)
    params.setdefault("jitter", 0.02)
    params.setdefault("loss", 0.01)
    return FaultPlan(**params)


@register("fault", "FLAKY")
def _make_flaky(**params: Any) -> FaultPlan:
    """Loss plus duplication plus reordering, all at once."""
    params.setdefault("loss", 0.05)
    params.setdefault("duplicate", 0.02)
    params.setdefault("reorder", 0.1)
    params.setdefault("jitter", 0.01)
    return FaultPlan(**params)
