"""Live runtime: real AVMON overlays over UDP on real clocks.

The discrete-event simulator exercises :class:`~repro.core.node.AvmonNode`
against virtual time and a modelled network.  This package is the second
:class:`~repro.core.node.NodeRuntime` implementation — the production-shaped
one: every node is an asyncio process with a UDP socket, timers run on the
wall clock, datagrams really traverse the loopback (or, by config, a LAN),
and churn is injected by killing and restarting OS processes.

Layers, bottom up:

* :mod:`repro.live.codec` — versioned, deterministic wire encoding for
  every protocol message in :data:`repro.core.messages.MESSAGE_TYPES`;
* :mod:`repro.live.control` — the control-plane message set (introducer
  registration, directories, status scraping, chaos/shutdown);
* :mod:`repro.live.transport` — an asyncio UDP endpoint that decodes,
  counts and dispatches datagrams (malformed input is dropped, never fatal);
* :mod:`repro.live.introducer` — the bootstrap service: registration,
  heartbeat-based aliveness and the peer directory;
* :mod:`repro.live.runtime` — :class:`LiveRuntime` (the ``NodeRuntime``
  over UDP + wall clock) and :class:`LiveNode` (one full protocol node:
  transport, timers, periodic ticks, persistent state, status reporting);
* :mod:`repro.live.node_main` — ``python -m repro.live.node_main``, the
  entry point the supervisor spawns one OS process per node from;
* :mod:`repro.live.supervisor` — boots an overlay, injects churn through
  any registered ``churn`` component, scrapes per-node metrics into the
  standard :class:`~repro.experiments.summary.SimulationSummary`, and
  persists it to a :class:`~repro.experiments.store.SummaryStore`.

* :mod:`repro.live.faults` — declarative, seeded
  :class:`~repro.live.faults.FaultPlan` fault injection (loss, latency,
  jitter, duplication, reordering, timed partitions) shared by every
  fabric;
* :mod:`repro.live.memory_transport` — a deterministic in-process
  transport and virtual-clock overlay harness, so the whole stack runs in
  pytest without sockets or subprocesses.

The CLI front end is ``avmon live up|status|chaos|down``.
"""

import importlib

# Exports resolve lazily (PEP 562): the simulation layer imports
# ``repro.live.faults`` at module scope, and an eager supervisor import
# here would close a cycle back through ``repro.experiments``.
_EXPORTS = {
    "CodecError": "codec",
    "WIRE_VERSION": "codec",
    "decode": "codec",
    "encode": "codec",
    "wire_types": "codec",
    "FaultInjector": "faults",
    "FaultPlan": "faults",
    "LiveNode": "runtime",
    "LiveRuntime": "runtime",
    "MemoryNetwork": "memory_transport",
    "MemoryTransport": "memory_transport",
    "run_memory_overlay": "memory_transport",
    "LiveConfig": "supervisor",
    "LiveReport": "supervisor",
    "live_config_key": "supervisor",
    "run_live": "supervisor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: resolve each export once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
