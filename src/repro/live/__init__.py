"""Live runtime: real AVMON overlays over UDP on real clocks.

The discrete-event simulator exercises :class:`~repro.core.node.AvmonNode`
against virtual time and a modelled network.  This package is the second
:class:`~repro.core.node.NodeRuntime` implementation — the production-shaped
one: every node is an asyncio process with a UDP socket, timers run on the
wall clock, datagrams really traverse the loopback (or, by config, a LAN),
and churn is injected by killing and restarting OS processes.

Layers, bottom up:

* :mod:`repro.live.codec` — versioned, deterministic wire encoding for
  every protocol message in :data:`repro.core.messages.MESSAGE_TYPES`;
* :mod:`repro.live.control` — the control-plane message set (introducer
  registration, directories, status scraping, chaos/shutdown);
* :mod:`repro.live.transport` — an asyncio UDP endpoint that decodes,
  counts and dispatches datagrams (malformed input is dropped, never fatal);
* :mod:`repro.live.introducer` — the bootstrap service: registration,
  heartbeat-based aliveness and the peer directory;
* :mod:`repro.live.runtime` — :class:`LiveRuntime` (the ``NodeRuntime``
  over UDP + wall clock) and :class:`LiveNode` (one full protocol node:
  transport, timers, periodic ticks, persistent state, status reporting);
* :mod:`repro.live.node_main` — ``python -m repro.live.node_main``, the
  entry point the supervisor spawns one OS process per node from;
* :mod:`repro.live.supervisor` — boots an overlay, injects churn through
  any registered ``churn`` component, scrapes per-node metrics into the
  standard :class:`~repro.experiments.summary.SimulationSummary`, and
  persists it to a :class:`~repro.experiments.store.SummaryStore`.

The CLI front end is ``avmon live up|status|chaos|down``.
"""

from .codec import CodecError, WIRE_VERSION, decode, encode, wire_types
from .runtime import LiveNode, LiveRuntime
from .supervisor import LiveConfig, LiveReport, live_config_key, run_live

__all__ = [
    "CodecError",
    "LiveConfig",
    "LiveNode",
    "LiveReport",
    "LiveRuntime",
    "WIRE_VERSION",
    "decode",
    "encode",
    "live_config_key",
    "run_live",
    "wire_types",
]
