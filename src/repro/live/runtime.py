"""The live ``NodeRuntime``: AVMON on wall clocks and UDP datagrams.

:class:`LiveRuntime` satisfies :class:`repro.core.node.NodeRuntime` with
production ingredients — ``now()`` is the wall clock (overlay-epoch
relative), ``send()`` routes through a :class:`~repro.live.transport
.UdpTransport` via the peer table, ``schedule()`` is ``loop.call_later``,
and ``choose_bootstrap``/``target_in_system`` are served from the latest
introducer directory — so :class:`~repro.core.node.AvmonNode` runs
**unmodified** over a real network.

:class:`LiveNode` is one complete participant: it owns the transport, the
runtime, the protocol node and its periodic ticks, keeps the peer table
fresh (directory refreshes plus passive address learning), persists
protocol state to disk across restarts (the paper's "persistent storage"
assumption), heartbeats the introducer, and answers the supervisor's
status probes.  It can run in-process (the conformance tests boot several
on one loop) or as a standalone OS process via
:mod:`repro.live.node_main`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import pathlib
import random
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..core.condition import ConsistencyCondition
from ..core.config import AvmonConfig
from ..core.hashing import NodeId
from ..core.messages import HistoryRequest, Join, Message, ReportRequest
from ..core.node import AvmonNode, MetricsSink, TimerHandle
from ..core.relation import MonitorRelation
from ..ioutils import atomic_write_text
from .control import (
    DirectoryReply,
    DirectoryRequest,
    FaultUpdate,
    Goodbye,
    Heartbeat,
    Hello,
    HelloAck,
    StatusReply,
    StatusRequest,
)
from .faults import FaultInjector, FaultPlan, Label, introducer_label
from .transport import Address, PeerTable, UdpTransport

__all__ = ["LiveNodeSpec", "LiveRuntime", "LiveNode", "referenced_ids"]

logger = logging.getLogger(__name__)

#: On-disk node-state schema (see :meth:`LiveNode._save_state`).
STATE_VERSION = 1


def referenced_ids(message: Any) -> Tuple[NodeId, ...]:
    """Every node id a protocol message mentions.

    The live relation index learns the id universe from traffic (the
    simulator learned it from the cluster); this walks the known id-bearing
    fields so :class:`~repro.core.relation.MonitorRelation` is never asked
    about an id it has not seen.
    """
    ids: List[NodeId] = []
    for name in ("sender", "origin", "monitor", "target", "subject"):
        value = getattr(message, name, None)
        if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
            ids.append(value)
    for name in ("view", "monitors"):
        value = getattr(message, name, None)
        if isinstance(value, tuple):
            ids.extend(
                v
                for v in value
                if isinstance(v, int) and not isinstance(v, bool) and v >= 0
            )
    return tuple(ids)


@dataclass
class LiveNodeSpec:
    """Everything one live node process needs to boot (JSON-portable)."""

    node: NodeId
    introducer_host: str
    introducer_port: int
    #: Consistent parameters; every node in one overlay must agree on them.
    n_expected: int
    k: int
    cvs: int
    protocol_period: float = 1.0
    monitoring_period: float = 1.0
    ping_timeout: float = 0.25
    forgetful_tau: float = 2.0
    forgetful_c: float = 1.0
    enable_forgetful: bool = True
    enable_pr2: bool = False
    hash_algorithm: str = "md5"
    entry_bytes: int = 8
    seed: int = 1
    host: str = "127.0.0.1"
    #: Overlay epoch (UNIX seconds); 0.0 -> adopt the introducer's.
    epoch: float = 0.0
    heartbeat_interval: float = 0.5
    directory_interval: float = 1.0
    #: Periodic state-snapshot cadence; 0 disables persistence entirely.
    snapshot_interval: float = 1.0
    #: Path of this node's persistent store; empty disables persistence.
    state_file: str = ""
    #: JSON-encoded :class:`~repro.live.faults.FaultPlan` applied to this
    #: node's outgoing datagrams; empty means a perfect network.
    fault: str = ""
    #: Every introducer replica as ``(host, port)``, primary first; empty
    #: means the single ``introducer_host``/``introducer_port`` service.
    #: Hello/Heartbeat/DirectoryRequest rotate across these on silence.
    introducers: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists; normalise so address equality
        # (the peer-label lookup, the failover rotation) works either way.
        self.introducers = tuple(
            (str(host), int(port)) for host, port in self.introducers
        )

    def introducer_addresses(self) -> Tuple[Tuple[str, int], ...]:
        """The bootstrap quorum this node rotates across, primary first."""
        primary = (self.introducer_host, self.introducer_port)
        addresses = [primary]
        for address in self.introducers:
            if address not in addresses:
                addresses.append(address)
        return tuple(addresses)

    def avmon_config(self) -> AvmonConfig:
        return AvmonConfig(
            n_expected=self.n_expected,
            k=self.k,
            cvs=self.cvs,
            protocol_period=self.protocol_period,
            monitoring_period=self.monitoring_period,
            forgetful_tau=self.forgetful_tau,
            forgetful_c=self.forgetful_c,
            enable_forgetful=self.enable_forgetful,
            enable_pr2=self.enable_pr2,
            ping_timeout=self.ping_timeout,
            entry_bytes=self.entry_bytes,
            hash_algorithm=self.hash_algorithm,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LiveNodeSpec":
        return cls(**json.loads(text))


class LiveRuntime:
    """Wall-clock, UDP-backed implementation of ``NodeRuntime``.

    Satisfies the :class:`~repro.core.node.NodeRuntime` protocol
    structurally; must be constructed inside a running asyncio loop.
    """

    def __init__(
        self,
        node_id: NodeId,
        transport: UdpTransport,
        peers: PeerTable,
        rng: random.Random,
        *,
        epoch: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.id = node_id
        self.rng = rng
        self._transport = transport
        self._peers = peers
        self._epoch = epoch
        #: Absolute timebase ``now()`` subtracts the epoch from; the wall
        #: clock in production, the virtual loop clock in the in-memory
        #: harness.
        self._clock = clock if clock is not None else time.time
        self._loop = asyncio.get_running_loop()

    # -- clock -------------------------------------------------------------

    @property
    def epoch(self) -> float:
        return self._epoch

    def rebase_epoch(self, epoch: float) -> None:
        """Adopt the overlay-wide epoch announced by the introducer."""
        self._epoch = epoch

    def now(self) -> float:
        return self._clock() - self._epoch

    # -- transport ---------------------------------------------------------

    def send(self, dst: NodeId, message: Message) -> None:
        address = self._peers.address_of(dst)
        if address is None:
            self._transport.stats.unroutable += 1
            return
        self._transport.send_to(address, message)

    def schedule(self, delay: float, callback, *args) -> TimerHandle:
        return self._loop.call_later(max(0.0, delay), callback, *args)

    def schedule_call(self, delay: float, callback, *args) -> None:
        """Fire-and-forget timer (see NodeRuntime); the handle is dropped."""
        self._loop.call_later(max(0.0, delay), callback, *args)

    # -- environment oracles -----------------------------------------------

    def choose_bootstrap(self, exclude: NodeId) -> Optional[NodeId]:
        candidates = [n for n in self._peers.alive_ids() if n != exclude]
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]

    def target_in_system(self, node: NodeId) -> bool:
        return self._peers.is_alive(node)


class LiveNode:
    """One live AVMON participant: transport + runtime + protocol + loops."""

    def __init__(
        self,
        spec: LiveNodeSpec,
        metrics: Optional[MetricsSink] = None,
        *,
        transport_factory=None,
        clock: Optional[Callable[[], float]] = None,
        journal=None,
    ) -> None:
        self.spec = spec
        #: Obs event journal; the no-op null journal by default, the
        #: harness's shared journal on the in-memory fabric (failover and
        #: re-seed events land on the virtual clock, deterministically).
        if journal is None:
            from ..obs.journal import NULL_JOURNAL

            journal = NULL_JOURNAL
        self.journal = journal
        #: Async ``(handler, host, port) -> endpoint``; None -> real UDP.
        self._transport_factory = (
            transport_factory
            if transport_factory is not None
            else UdpTransport.create
        )
        self._clock = clock
        self.id = spec.node
        self.config = spec.avmon_config()
        self.condition = ConsistencyCondition(
            spec.k, spec.n_expected, spec.hash_algorithm
        )
        self.relation = MonitorRelation(self.condition)
        self.relation.add_node(self.id)
        self.peers = PeerTable()
        self.rng = random.Random(spec.seed * 1_000_003 + spec.node)
        self._metrics = metrics
        self.transport: Optional[UdpTransport] = None
        self.runtime: Optional[LiveRuntime] = None
        self.node: Optional[AvmonNode] = None
        self.started_at: float = 0.0
        #: The bootstrap quorum, primary first; `_introducer` is the
        #: replica currently spoken to, rotated on silence.
        self._introducers: Tuple[Address, ...] = spec.introducer_addresses()
        self._introducer_index = 0
        self._introducer: Address = self._introducers[0]
        self._introducer_labels: dict = {
            address: introducer_label(index)
            for index, address in enumerate(self._introducers)
        }
        #: Loop time of the last datagram heard *from* an introducer
        #: (HelloAck or DirectoryReply); silence past the failover limit
        #: rotates to the next replica.
        self._introducer_last_reply = 0.0
        #: Rotations to another bootstrap replica (silence or boot retry).
        self.introducer_failovers = 0
        #: Directory-driven coarse-view re-seeds (island merging): peers
        #: the directory knows but the CV does not, injected at most once
        #: per re-seed interval.
        self.cv_reseeds = 0
        self._next_reseed = 0.0
        self._reseed_interval = 2.0 * spec.directory_interval
        self._tasks: List[asyncio.Task] = []
        self._joined = False
        self._hello_acked = asyncio.Event()
        self._directory_seen = asyncio.Event()
        self._stopped = False
        #: Periodic ticks that raised (contained, logged, counted).
        self.tick_errors = 0
        #: JOIN datagrams dropped by the per-origin admission budget.
        self.joins_throttled = 0
        #: Bootstrap joins re-sent because the first attempt left the node
        #: blind (its Join/CvFetch datagrams were lost or partitioned away).
        self.join_retries = 0
        #: §3.3 query traffic served: monitor-set reports about *this*
        #: node, and availability histories this node reported about its
        #: pinging targets (the serving surface's demand, seen node-side).
        self.reports_served = 0
        self.histories_served = 0
        #: JSON of the fault plan currently applied ("" = perfect network).
        self._fault_plan_json = ""
        self._join_window_start = 0.0
        self._join_counts: dict = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind, register with the introducer, restore state, join, tick."""
        self.transport = await self._transport_factory(
            self._handle, self.spec.host, 0
        )
        clock = self._clock if self._clock is not None else time.time
        self.runtime = LiveRuntime(
            self.id,
            self.transport,
            self.peers,
            self.rng,
            epoch=self.spec.epoch or clock(),
            clock=clock,
        )
        # Identity/clock wiring happens unconditionally so a FaultUpdate
        # pushed later finds a fully-configured send path; the injector
        # itself exists only when a plan does.
        self.transport.configure_faults(
            FaultInjector(FaultPlan.from_json(self.spec.fault))
            if self.spec.fault
            else None,
            label=self.id,
            resolve=self._peer_label,
            clock=self.runtime.now,
        )
        self._fault_plan_json = self.spec.fault
        self.node = AvmonNode(
            self.id, self.config, self.relation, self.runtime, self._metrics
        )
        self._restore_state()
        await self._register()
        self.started_at = self.runtime.now()
        self._tasks = [
            asyncio.create_task(self._membership_loop()),
            asyncio.create_task(self._periodic_loop(
                self.config.protocol_period, self._protocol_tick
            )),
            asyncio.create_task(self._periodic_loop(
                self.config.monitoring_period, self._monitoring_tick
            )),
        ]
        if self.spec.state_file and self.spec.snapshot_interval > 0:
            self._tasks.append(asyncio.create_task(self._snapshot_loop()))

    async def _register(self) -> None:
        """Hello the introducer until acknowledged, then fetch a directory.

        With a replicated bootstrap quorum, every unacknowledged attempt
        rotates to the next replica — a node booting *during* a primary
        outage registers via whichever replica answers first.
        """
        hello = Hello(
            node=self.id, port=self.transport.local_address[1], host=self.spec.host
        )
        for attempt in range(50):
            self.transport.send_to(self._introducer, hello)
            try:
                await asyncio.wait_for(
                    self._hello_acked.wait(), timeout=0.2 * (attempt + 1)
                )
                break
            except asyncio.TimeoutError:
                self._rotate_introducer("register")
                continue
        else:
            raise RuntimeError(
                f"node {self.id}: introducer at {self._introducer} unreachable"
            )
        self.transport.send_to(self._introducer, DirectoryRequest(node=self.id))
        try:
            await asyncio.wait_for(self._directory_seen.wait(), timeout=1.0)
        except asyncio.TimeoutError:
            pass  # first node in an empty overlay: join with no bootstrap

    async def stop(self, *, graceful: bool = True) -> None:
        """Leave the overlay; with *graceful*, persist state and say goodbye."""
        if self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks = []
        if graceful and self.transport is not None:
            if self.node is not None:
                self.node.on_leave(self.runtime.now())
            self._save_state()
            self.transport.send_to(self._introducer, Goodbye(node=self.id))
            # Give the goodbye datagram one loop turn to hit the socket.
            await asyncio.sleep(0)
        if self.transport is not None:
            self.transport.close()

    # -- periodic work -----------------------------------------------------

    async def _periodic_loop(self, period: float, tick) -> None:
        # Random initial phase, as the simulator's PeriodicProcess does.
        await asyncio.sleep(self.rng.uniform(0.0, period))
        while True:
            try:
                tick()
            except Exception:  # noqa: BLE001 — same stance as the transport:
                # one bad tick must not leave a zombie that heartbeats (so
                # the directory advertises it) but never pings or discovers.
                self.tick_errors += 1
                logger.exception("node %s: periodic tick failed", self.id)
            await asyncio.sleep(period)

    def _protocol_tick(self) -> None:
        if self._joined:
            self.node.protocol_tick()

    def _monitoring_tick(self) -> None:
        if self._joined:
            self.node.monitoring_tick()

    def _peer_label(self, address: Address) -> Optional[Label]:
        """The fault-injection identity of a destination address."""
        label = self._introducer_labels.get(address)
        if label is not None:
            return label
        return self.peers.id_at(address)

    def _rotate_introducer(self, reason: str) -> None:
        """Fail over to the next bootstrap replica (round-robin).

        A no-op with a single introducer, so the pre-HA deployments keep
        their exact behaviour (and their summary bytes).
        """
        if len(self._introducers) < 2:
            return
        self._introducer_index = (self._introducer_index + 1) % len(
            self._introducers
        )
        self._introducer = self._introducers[self._introducer_index]
        self.introducer_failovers += 1
        self.journal.emit(
            "introducer.failover",
            node=self.id,
            to=self._introducer_labels[self._introducer],
            reason=reason,
        )

    async def _membership_loop(self) -> None:
        """Heartbeat the introducer and refresh the peer directory.

        Every directory request is answered by a live introducer, so a
        silent one is a dead (or partitioned-away) one: once nothing has
        been heard back for the failover limit, rotate to the next replica
        and re-``Hello`` there so it can register us before our TTL at the
        quorum lapses.
        """
        loop = asyncio.get_running_loop()
        next_directory = loop.time()
        self._introducer_last_reply = loop.time()
        silence_limit = max(
            2.5 * self.spec.directory_interval,
            3.0 * self.spec.heartbeat_interval,
        )
        while True:
            self.transport.send_to(self._introducer, Heartbeat(node=self.id))
            now = loop.time()
            if now >= next_directory:
                self.transport.send_to(
                    self._introducer, DirectoryRequest(node=self.id)
                )
                next_directory = now + self.spec.directory_interval
            if (
                len(self._introducers) > 1
                and now - self._introducer_last_reply > silence_limit
            ):
                self._rotate_introducer("silence")
                self._introducer_last_reply = now  # restart the window
                self.transport.send_to(
                    self._introducer,
                    Hello(
                        node=self.id,
                        port=self.transport.local_address[1],
                        host=self.spec.host,
                    ),
                )
            await asyncio.sleep(self.spec.heartbeat_interval)

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.spec.snapshot_interval)
            self._save_state()

    # -- message handling --------------------------------------------------

    def _join_budget(self) -> int:
        """JOIN datagrams admitted per origin per protocol period.

        Figure 1's weight rule only decrements when the recipient *adds*
        the origin, so once an origin sits in every coarse view a residual
        JOIN forwards hop-to-hop forever.  The simulator bounds that loop
        with modelled per-hop latency; localhost UDP is effectively
        zero-latency, so an un-throttled rejoin into a converged overlay
        live-locks every process (measured: >100k JOIN datagrams in 3 s on
        6 nodes).  An honest join tree bounces around small early views,
        so the budget scales with cvs — generous for legitimate spreading,
        still three orders of magnitude below the storm.
        """
        return max(8, 3 * self.config.cvs)

    def _admit_join(self, origin: NodeId) -> bool:
        now = self.runtime.now()
        if now - self._join_window_start >= self.config.protocol_period:
            self._join_window_start = now
            self._join_counts.clear()
        seen = self._join_counts.get(origin, 0)
        if seen >= self._join_budget():
            self.joins_throttled += 1
            return False
        self._join_counts[origin] = seen + 1
        return True

    def _handle(self, message: Any, addr: Address) -> None:
        if isinstance(message, Message):
            if isinstance(message, Join) and not self._admit_join(message.origin):
                return
            if isinstance(message, ReportRequest):
                self.reports_served += 1
            elif isinstance(message, HistoryRequest):
                self.histories_served += 1
            for node_id in referenced_ids(message):
                self.relation.add_node(node_id)
            # Passive address learning: the peer is reachable where the
            # datagram came from, whatever the directory currently says.
            sender = getattr(message, "sender", None)
            if isinstance(sender, int) and sender != self.id:
                self.peers.learn(sender, addr)
            self.node.handle_message(message)
        elif isinstance(message, DirectoryReply):
            self._mark_introducer_heard(addr)
            self._on_directory(message)
        elif isinstance(message, HelloAck):
            self._mark_introducer_heard(addr)
            if message.epoch > 0.0:
                self.runtime.rebase_epoch(message.epoch)
            self._hello_acked.set()
        elif isinstance(message, StatusRequest):
            self.transport.send_to(addr, self.status_reply(message.probe))
        elif isinstance(message, FaultUpdate):
            if message.plan == self._fault_plan_json:
                # Already running this exact plan.  The supervisor
                # re-broadcasts with every scrape so nodes whose
                # registration lapsed still converge; an idempotent skip
                # keeps those re-sends from resetting decision streams.
                return
            try:
                plan = (
                    FaultPlan.from_json(message.plan)
                    if message.plan
                    else FaultPlan()
                )
            except (ValueError, TypeError):
                return  # a bad plan must not take the node down
            self.transport.set_fault_plan(plan)
            self._fault_plan_json = message.plan
        # Unknown control traffic is ignored.

    def _mark_introducer_heard(self, addr: Address) -> None:
        """Reset the failover silence window: some replica answered."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:  # direct-drive unit tests, no loop
            return
        self._introducer_last_reply = loop.time()

    def _on_directory(self, reply: DirectoryReply) -> None:
        alive = []
        for entry in reply.entries:
            if len(entry) != 3:
                continue
            node_id, host, port = entry
            if node_id == self.id:
                alive.append(node_id)
                continue
            self.relation.add_node(node_id)
            self.peers.learn(node_id, (host, port))
            alive.append(node_id)
        self.peers.set_alive(alive)
        self._directory_seen.set()
        self._maybe_reseed_cv(alive)
        if not self._joined:
            self._joined = True
            self.node.begin_join()
            # Figure 1 fires Join + CvFetch at one random bootstrap and
            # the core's fetch timeout deliberately does nothing — in the
            # simulator a lost join is just one unlucky node, but a live
            # joiner whose only datagrams fell into a partition stays
            # blind *forever*.  A retry loop (below) re-runs begin_join
            # with backoff until the node has any overlay state at all.
            self._tasks.append(asyncio.create_task(self._join_retry_loop()))

    def _maybe_reseed_cv(self, alive: List[NodeId]) -> None:
        """Island merging (ROADMAP item 5): re-seed the CV from directories.

        CV gossip only refreshes through already-seeded views, so two
        partition-separated islands that each converged internally never
        rediscover each other after a heal — no coarse view on either side
        holds a peer from the other.  The introducer directory *does* span
        islands (heartbeats are tiny and island-blind), so whenever a
        directory reply names an alive peer absent from our coarse view,
        inject one — uniformly at random, through the CV's own eviction
        rule, so the view stays a bounded uniform sample.  A wrongly
        injected dead peer is repaired by the existing CvPing pruning.

        Gated on the node already holding *some* overlay state — the exact
        complement of the blind-join retry loop, which owns recovery until
        any state exists (a node can end up with PS/TS but an empty CV
        when healed peers discovered *it* first) — and throttled to one
        entry per two directory intervals so merging is gentle, not a view
        takeover.
        """
        node = self.node
        if not self._joined or node is None:
            return
        if not (len(node.cv) or node.ps or node.ts):
            return  # fully blind: the join-retry loop owns bootstrap
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # direct-drive unit tests, no loop
            return
        if now < self._next_reseed:
            return
        current = set(self.node.cv.entries())
        absent = [
            node_id
            for node_id in alive
            if node_id != self.id and node_id not in current
        ]
        if not absent:
            return
        pick = absent[self.rng.randrange(len(absent))]
        self.node.cv.add(pick, self.rng)
        self.cv_reseeds += 1
        self._next_reseed = now + self._reseed_interval
        self.journal.emit("node.cv_reseed", node=self.id, peer=pick)

    async def _join_retry_loop(self) -> None:
        """Re-send the bootstrap join while the node is fully blind.

        Retries stop the moment the node holds *any* overlay state (a
        coarse-view entry, a ping set, a target set): past that point the
        normal protocol ticks take over and extra JOINs would only burn
        the per-origin admission budget at the receivers.  Each retry is
        a fresh ``begin_join`` — a new random bootstrap, so a retry also
        escapes a single dead or partitioned bootstrap choice.  Backoff
        doubles from two protocol periods up to eight, keeping the blind
        phase's datagram rate below one join per period per node.
        """
        delay = 2.0 * self.config.protocol_period
        cap = 8.0 * self.config.protocol_period
        while True:
            await asyncio.sleep(delay)
            node = self.node
            if node is None or self._stopped:
                return
            if len(node.cv) or node.ps or node.ts:
                return  # settled into the overlay
            self.join_retries += 1
            node.begin_join()
            delay = min(2.0 * delay, cap)

    # -- persistent storage (system model, Section 3) ----------------------

    def _restore_state(self) -> None:
        """Reload CV/PS/TS and ping counters saved by a previous life."""
        if not self.spec.state_file:
            return
        path = pathlib.Path(self.spec.state_file)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(payload, dict) or payload.get("version") != STATE_VERSION:
            return
        if self.spec.epoch and payload.get("epoch") != self.spec.epoch:
            # A state file from a *different* overlay run (the supervisor
            # stamps every run's specs with its introducer epoch): restoring
            # it would preload PS/TS from the old run and fake discovery.
            # Within one run, crash-respawned specs share the epoch, so
            # genuine rejoins still restore.  Hand-run nodes (epoch 0.0)
            # manage their own state directories and skip the check.
            return
        node = self.node
        node._joined_before = bool(payload.get("joined_before", True))
        saved_at = payload.get("saved_at")
        if isinstance(saved_at, (int, float)):
            node.last_leave_time = float(saved_at)
        for entry in payload.get("cv", ()):
            if isinstance(entry, int):
                self.relation.add_node(entry)
                node.cv.add(entry, self.rng)
        for pair in payload.get("ps", ()):
            if isinstance(pair, list) and len(pair) == 2:
                monitor, discovered = pair
                if isinstance(monitor, int):
                    self.relation.add_node(monitor)
                    node.ps[monitor] = float(discovered)
        for target in payload.get("ts", ()):
            if isinstance(target, int):
                self.relation.add_node(target)
                node.ts.add(target)
                node.store.record_for(target)
        for key, counts in payload.get("records", {}).items():
            try:
                target = int(key)
            except ValueError:
                continue
            if isinstance(counts, list) and len(counts) == 2:
                record = node.store.record_for(target)
                record.pings_sent = int(counts[0])
                record.pings_answered = int(counts[1])

    def _save_state(self) -> None:
        if not self.spec.state_file or self.node is None:
            return
        node = self.node
        payload = {
            "version": STATE_VERSION,
            "node": self.id,
            "epoch": self.spec.epoch,
            "saved_at": self.runtime.now(),
            "joined_before": node._joined_before,
            "cv": sorted(node.cv.entries()),
            "ps": sorted([m, t] for m, t in node.ps.items()),
            "ts": sorted(node.ts),
            "records": {
                str(record.target): [record.pings_sent, record.pings_answered]
                for record in node.store.records()
            },
        }
        try:
            atomic_write_text(
                self.spec.state_file, json.dumps(payload, sort_keys=True)
            )
        except OSError:
            # A failed snapshot costs at most one period of state; the
            # node keeps running and the next snapshot retries.
            pass

    # -- introspection -----------------------------------------------------

    def status_reply(self, probe: int = 0) -> StatusReply:
        stats = self.transport.stats
        return StatusReply(
            node=self.id,
            probe=probe,
            now=self.runtime.now(),
            started_at=self.started_at,
            ps=tuple(sorted((m, t) for m, t in self.node.ps.items())),
            ts=tuple(sorted(self.node.ts)),
            cv=tuple(sorted(self.node.cv.entries())),
            computations=self.node.computations,
            memory_entries=self.node.memory_entries(),
            useless_pings=self.node.store.useless_pings,
            bytes_sent=stats.bytes_sent,
            datagrams_sent=stats.datagrams_sent,
            datagrams_received=stats.datagrams_received,
            datagrams_malformed=stats.malformed,
            tick_errors=self.tick_errors,
            handler_errors=stats.handler_errors,
            joins_throttled=self.joins_throttled,
            reports_served=self.reports_served,
            histories_served=self.histories_served,
            introducer_failovers=self.introducer_failovers,
            cv_reseeds=self.cv_reseeds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        joined = "joined" if self._joined else "booting"
        return f"LiveNode(id={self.id}, {joined}, peers={len(self.peers)})"
