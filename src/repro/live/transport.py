"""Asyncio UDP endpoint speaking the live wire codec.

:class:`UdpTransport` binds one datagram socket, decodes every incoming
payload through :mod:`repro.live.codec`, and hands well-formed messages to
a handler callback together with the sender's address.  Malformed or
unknown datagrams are counted and dropped — a live transport is attack
surface, so nothing a peer can put on the wire may crash the process.
Handler exceptions are likewise contained and counted: a bug triggered by
one datagram must not take the node down with it.

:class:`PeerTable` is the id -> UDP address map a node routes by.  It is
fed from two directions: introducer directory refreshes (authoritative)
and passive learning from incoming datagrams (a peer that can reach us is
reachable at its source address), which keeps replies flowing even while a
directory refresh is in flight.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.hashing import NodeId
from .codec import CodecError, decode, encode

__all__ = ["Address", "WireStats", "PeerTable", "UdpTransport"]

#: A UDP endpoint address.
Address = Tuple[str, int]

logger = logging.getLogger(__name__)


@dataclass
class WireStats:
    """Datagram-level counters one transport accumulates over its life."""

    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    malformed: int = 0
    handler_errors: int = 0
    unroutable: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class PeerTable:
    """Mutable id -> address map with alive-set bookkeeping."""

    _addresses: Dict[NodeId, Address] = field(default_factory=dict)
    _alive: set = field(default_factory=set)

    def learn(self, node: NodeId, address: Address) -> None:
        self._addresses[node] = address

    def forget(self, node: NodeId) -> None:
        self._addresses.pop(node, None)
        self._alive.discard(node)

    def address_of(self, node: NodeId) -> Optional[Address]:
        return self._addresses.get(node)

    def set_alive(self, nodes) -> None:
        """Replace the alive set (one directory refresh)."""
        self._alive = set(nodes)

    def alive_ids(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._alive))

    def is_alive(self, node: NodeId) -> bool:
        return node in self._alive

    def __len__(self) -> int:
        return len(self._addresses)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._addresses


class _Protocol(asyncio.DatagramProtocol):
    """Glue between the asyncio datagram API and :class:`UdpTransport`."""

    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable for a departed peer: expected under churn.
        logger.debug("transport error: %s", exc)


class UdpTransport:
    """One bound UDP socket sending and receiving codec messages.

    Build with :meth:`create`; the *handler* receives
    ``(message, source_address)`` for every well-formed datagram.
    """

    def __init__(
        self,
        transport: asyncio.DatagramTransport,
        handler: Callable[[Any, Address], None],
    ) -> None:
        self._transport = transport
        self._handler = handler
        self.stats = WireStats()
        self._closed = False

    @classmethod
    async def create(
        cls,
        handler: Callable[[Any, Address], None],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "UdpTransport":
        loop = asyncio.get_running_loop()
        # Two-phase wiring: the protocol needs the UdpTransport, which needs
        # the asyncio transport returned by create_datagram_endpoint.  No
        # datagram can be dispatched before __init__ runs — the loop only
        # reads the socket on its next iteration.
        instance = cls.__new__(cls)
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _Protocol(instance), local_addr=(host, port)
        )
        instance.__init__(transport, handler)  # type: ignore[misc]
        return instance

    @property
    def local_address(self) -> Address:
        host, port = self._transport.get_extra_info("sockname")[:2]
        return (host, port)

    def send_to(self, address: Address, message: Any) -> int:
        """Encode and transmit one message; returns the payload size."""
        if self._closed:
            return 0
        data = encode(message)
        self._transport.sendto(data, address)
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(data)
        return len(data)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport.close()

    # -- receive path ------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        self.stats.datagrams_received += 1
        self.stats.bytes_received += len(data)
        try:
            message = decode(data)
        except CodecError as error:
            self.stats.malformed += 1
            logger.debug("dropped malformed datagram from %s: %s", addr, error)
            return
        try:
            self._handler(message, addr)
        except Exception:  # noqa: BLE001 — one bad datagram must not kill us
            self.stats.handler_errors += 1
            logger.exception("handler failed for %s from %s", type(message).__name__, addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"bound={self.local_address}"
        return f"UdpTransport({state}, sent={self.stats.datagrams_sent})"
