"""Asyncio UDP endpoint speaking the live wire codec.

:class:`UdpTransport` binds one datagram socket, decodes every incoming
payload through :mod:`repro.live.codec`, and hands well-formed messages to
a handler callback together with the sender's address.  Malformed or
unknown datagrams are counted and dropped — a live transport is attack
surface, so nothing a peer can put on the wire may crash the process.
Handler exceptions are likewise contained and counted: a bug triggered by
one datagram must not take the node down with it.

The receive path lives in :class:`DatagramEndpoint`, which the in-process
:class:`~repro.live.memory_transport.MemoryTransport` shares — one codec,
one tolerance policy, two fabrics.  The send path optionally routes
through a :class:`~repro.live.faults.FaultInjector` (see
:meth:`DatagramEndpoint.configure_faults`): dropped datagrams still count
as sent (the node transmitted; the network lost them) plus a
``fault_dropped`` tally, delayed copies go out via ``loop.call_later``.

:class:`PeerTable` is the id -> UDP address map a node routes by.  It is
fed from two directions: introducer directory refreshes (authoritative)
and passive learning from incoming datagrams (a peer that can reach us is
reachable at its source address), which keeps replies flowing even while a
directory refresh is in flight.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.hashing import NodeId
from .codec import CodecError, decode, encode
from .faults import FaultInjector, FaultPlan, Label

__all__ = [
    "Address",
    "WireStats",
    "PeerTable",
    "DatagramEndpoint",
    "UdpTransport",
]

#: A UDP endpoint address.
Address = Tuple[str, int]

logger = logging.getLogger(__name__)


@dataclass
class WireStats:
    """Datagram-level counters one transport accumulates over its life."""

    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    malformed: int = 0
    handler_errors: int = 0
    unroutable: int = 0
    #: Datagrams the configured fault injector decided to lose.
    fault_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class PeerTable:
    """Mutable id -> address map with alive-set bookkeeping."""

    _addresses: Dict[NodeId, Address] = field(default_factory=dict)
    _by_address: Dict[Address, NodeId] = field(default_factory=dict)
    _alive: set = field(default_factory=set)

    def learn(self, node: NodeId, address: Address) -> None:
        previous = self._addresses.get(node)
        if previous is not None and previous != address:
            self._by_address.pop(previous, None)
        self._addresses[node] = address
        self._by_address[address] = node

    def forget(self, node: NodeId) -> None:
        address = self._addresses.pop(node, None)
        if address is not None and self._by_address.get(address) == node:
            self._by_address.pop(address, None)
        self._alive.discard(node)

    def address_of(self, node: NodeId) -> Optional[Address]:
        return self._addresses.get(node)

    def id_at(self, address: Address) -> Optional[NodeId]:
        """Reverse lookup: the node known to live at *address* (or None)."""
        return self._by_address.get(address)

    def set_alive(self, nodes) -> None:
        """Replace the alive set (one directory refresh)."""
        self._alive = set(nodes)

    def alive_ids(self) -> Tuple[NodeId, ...]:
        return tuple(sorted(self._alive))

    def is_alive(self, node: NodeId) -> bool:
        return node in self._alive

    def __len__(self) -> int:
        return len(self._addresses)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._addresses


class DatagramEndpoint:
    """Codec-speaking endpoint: shared receive path + fault-injection hooks.

    Subclasses implement the actual fabric (:class:`UdpTransport` over a
    socket, :class:`~repro.live.memory_transport.MemoryTransport` over an
    in-process hub) and call :meth:`_on_datagram` for every arriving
    payload.
    """

    def __init__(self, handler: Callable[[Any, Address], None]) -> None:
        self._handler = handler
        self.stats = WireStats()
        self._closed = False
        #: Send-side fault injection; None means a perfect network.
        self.fault: Optional[FaultInjector] = None
        self._fault_label: Optional[Label] = None
        self._fault_resolve: Optional[Callable[[Address], Optional[Label]]] = None
        self._fault_clock: Optional[Callable[[], float]] = None

    # -- fault injection ---------------------------------------------------

    def configure_faults(
        self,
        fault: Optional[FaultInjector],
        *,
        label: Optional[Label] = None,
        resolve: Optional[Callable[[Address], Optional[Label]]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Attach (or detach, with ``None``) a send-side fault injector.

        *label* identifies this endpoint in link rules and partition
        groups; *resolve* maps a destination address to its label (an
        unresolvable address matches only the plan's global parameters);
        *clock* supplies "now" for timed partitions (defaults to the
        running loop's clock).
        """
        self.fault = fault
        self._fault_label = label
        self._fault_resolve = resolve
        self._fault_clock = clock

    def set_fault_plan(self, plan: FaultPlan) -> None:
        """Swap the active plan (creating an injector if none is attached)."""
        if self.fault is None:
            self.fault = FaultInjector(plan)
        else:
            self.fault.set_plan(plan)

    def _fault_now(self) -> float:
        if self._fault_clock is not None:
            return self._fault_clock()
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            return 0.0

    def _plan_deliveries(self, address: Address) -> Tuple[float, ...]:
        """The fault injector's verdict for one outgoing datagram."""
        if self.fault is None:
            return (0.0,)
        destination = (
            self._fault_resolve(address)
            if self._fault_resolve is not None
            else None
        )
        return self.fault.plan_delivery(
            self._fault_label, destination, self._fault_now()
        )

    # -- receive path ------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        self.stats.datagrams_received += 1
        self.stats.bytes_received += len(data)
        try:
            message = decode(data)
        except CodecError as error:
            self.stats.malformed += 1
            logger.debug("dropped malformed datagram from %s: %s", addr, error)
            return
        try:
            self._handler(message, addr)
        except Exception:  # noqa: BLE001 — one bad datagram must not kill us
            self.stats.handler_errors += 1
            logger.exception("handler failed for %s from %s", type(message).__name__, addr)


class _Protocol(asyncio.DatagramProtocol):
    """Glue between the asyncio datagram API and :class:`UdpTransport`."""

    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        # ICMP port-unreachable for a departed peer: expected under churn.
        logger.debug("transport error: %s", exc)


class UdpTransport(DatagramEndpoint):
    """One bound UDP socket sending and receiving codec messages.

    Build with :meth:`create`; the *handler* receives
    ``(message, source_address)`` for every well-formed datagram.
    """

    def __init__(
        self,
        transport: asyncio.DatagramTransport,
        handler: Callable[[Any, Address], None],
    ) -> None:
        super().__init__(handler)
        self._transport = transport
        self._loop = asyncio.get_running_loop()

    @classmethod
    async def create(
        cls,
        handler: Callable[[Any, Address], None],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> "UdpTransport":
        loop = asyncio.get_running_loop()
        # Two-phase wiring: the protocol needs the UdpTransport, which needs
        # the asyncio transport returned by create_datagram_endpoint.  No
        # datagram can be dispatched before __init__ runs — the loop only
        # reads the socket on its next iteration.
        instance = cls.__new__(cls)
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _Protocol(instance), local_addr=(host, port)
        )
        instance.__init__(transport, handler)  # type: ignore[misc]
        return instance

    @property
    def local_address(self) -> Address:
        host, port = self._transport.get_extra_info("sockname")[:2]
        return (host, port)

    def send_to(self, address: Address, message: Any) -> int:
        """Encode and transmit one message; returns the payload size.

        With a fault injector attached the datagram may be lost (counted
        in ``stats.fault_dropped``), delayed or duplicated — but it always
        counts as sent: loss happens *after* the node paid to transmit.
        """
        if self._closed:
            return 0
        data = encode(message)
        self.stats.datagrams_sent += 1
        self.stats.bytes_sent += len(data)
        deliveries = self._plan_deliveries(address)
        if not deliveries:
            self.stats.fault_dropped += 1
            return len(data)
        for delay in deliveries:
            if delay <= 0.0:
                self._transport.sendto(data, address)
            else:
                self._loop.call_later(delay, self._sendto_later, data, address)
        return len(data)

    def _sendto_later(self, data: bytes, address: Address) -> None:
        if not self._closed:
            self._transport.sendto(data, address)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"bound={self.local_address}"
        return f"UdpTransport({state}, sent={self.stats.datagrams_sent})"
