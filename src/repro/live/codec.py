"""Versioned, deterministic wire codec for live AVMON datagrams.

One protocol message (or control message) maps to one UDP datagram whose
payload is canonical JSON: ``{"t": <type name>, "v": <wire version>,
<field>: <value>, ...}`` with sorted keys and minimal separators, encoded
as UTF-8.  The encoding is

* **round-trippable** — ``decode(encode(m)) == m`` for every registered
  message type (tuples are rendered as JSON arrays and restored as tuples,
  recursively), which the property suite verifies exhaustively;
* **deterministic** — the same message always yields the same bytes, in
  every process (sorted keys, no whitespace, ``repr``-faithful floats);
* **versioned** — payloads carry :data:`WIRE_VERSION`; a datagram stamped
  with an unknown version, an unknown type, missing/extra fields or
  mistyped values raises :class:`CodecError`, which transports treat as a
  counted drop, never a crash.

All concrete protocol messages (:data:`repro.core.messages.MESSAGE_TYPES`)
are registered at import time; the control plane registers its own types
the same way via :func:`register_wire_type`, so third-party extensions can
put new dataclasses on the wire without touching this module.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from typing import Any, Dict, Tuple, Type

from ..core.messages import MESSAGE_TYPES

__all__ = [
    "CodecError",
    "WIRE_VERSION",
    "MAX_DATAGRAM_BYTES",
    "register_wire_type",
    "wire_types",
    "encode",
    "decode",
]

#: Wire format version; bump when a registered type's fields change shape.
WIRE_VERSION = 1

#: Defensive ceiling on accepted datagram payloads (a full coarse view of a
#: million-node overlay is ~40 entries, far below this).
MAX_DATAGRAM_BYTES = 64 * 1024

_SCALARS = (str, int, float, bool)


class CodecError(ValueError):
    """A payload that cannot be decoded (or a value that cannot be encoded)."""


def _field_checker(annotation: Any):
    """A loose runtime validator derived from one dataclass field annotation.

    Wire safety needs only coarse shape checks: ints where the protocol
    expects node ids/sequence numbers, numbers where it expects floats,
    tuples where it expects sequences.  Anything unresolvable is accepted
    (the constructor remains the last line of defence).
    """
    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        checkers = [_field_checker(arg) for arg in typing.get_args(annotation)]
        return lambda value: any(check(value) for check in checkers)
    if annotation is type(None):
        return lambda value: value is None
    if annotation is bool:
        return lambda value: isinstance(value, bool)
    if annotation is int:
        return lambda value: isinstance(value, int) and not isinstance(value, bool)
    if annotation is float:
        return lambda value: (
            isinstance(value, (int, float)) and not isinstance(value, bool)
        )
    if annotation is str:
        return lambda value: isinstance(value, str)
    if origin is tuple or annotation is tuple:
        return lambda value: isinstance(value, tuple)
    return lambda value: True


class _WireSpec:
    """Field names and validators for one registered dataclass."""

    __slots__ = ("cls", "fields", "checkers")

    def __init__(self, cls: Type) -> None:
        self.cls = cls
        try:
            hints = typing.get_type_hints(cls)
        except Exception:  # unresolvable forward refs: skip validation
            hints = {}
        self.fields = tuple(f.name for f in dataclasses.fields(cls))
        self.checkers = {
            name: _field_checker(hints.get(name, Any)) for name in self.fields
        }


_REGISTRY: Dict[str, _WireSpec] = {}


def register_wire_type(cls: Type) -> Type:
    """Register a dataclass for wire transport (usable as a decorator).

    The type name is the wire tag, so names must be unique across every
    registered namespace (protocol and control planes share one wire).
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"wire types must be dataclasses, got {cls!r}")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing.cls is not cls:
        raise ValueError(f"wire type name {name!r} already registered")
    clashes = {f.name for f in dataclasses.fields(cls)} & {"t", "v"}
    if clashes:
        # A field named 't' or 'v' would overwrite the envelope's type tag
        # or version, producing datagrams that can never decode.
        raise ValueError(
            f"wire type {name!r} has reserved field name(s): "
            f"{', '.join(sorted(clashes))}"
        )
    _REGISTRY[name] = _WireSpec(cls)
    return cls


def wire_types() -> Tuple[Type, ...]:
    """Every registered wire type, sorted by tag name."""
    return tuple(_REGISTRY[name].cls for name in sorted(_REGISTRY))


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, bool) or value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, (tuple, list)):
        return [_to_jsonable(item) for item in value]
    raise CodecError(
        f"cannot encode value of type {type(value).__name__} on the wire: "
        f"{value!r}"
    )


def _to_native(value: Any) -> Any:
    """JSON arrays come back as tuples so decoded messages compare equal."""
    if isinstance(value, list):
        return tuple(_to_native(item) for item in value)
    return value


def encode(message: Any) -> bytes:
    """One registered message -> one canonical-JSON datagram payload."""
    spec = _REGISTRY.get(type(message).__name__)
    if spec is None or spec.cls is not type(message):
        raise CodecError(
            f"{type(message).__name__} is not a registered wire type"
        )
    payload = {"t": type(message).__name__, "v": WIRE_VERSION}
    for name in spec.fields:
        payload[name] = _to_jsonable(getattr(message, name))
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode(data: bytes) -> Any:
    """One datagram payload -> the message it encodes.

    Raises :class:`CodecError` on anything that is not a well-formed,
    current-version payload of a registered type with exactly the declared
    fields, each of a plausible shape.  Decoding never raises anything
    else, so transports can treat ``CodecError`` as the single "drop this
    datagram" signal.
    """
    try:
        return _decode(data)
    except RecursionError:
        # A few KB of b"[[[[..." exhausts the parser's stack; that must be
        # a counted drop like any other hostile payload, not a loop error.
        raise CodecError("datagram nesting too deep") from None


def _decode(data: bytes) -> Any:
    if len(data) > MAX_DATAGRAM_BYTES:
        raise CodecError(f"datagram too large ({len(data)} bytes)")
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"not a JSON datagram: {error}") from None
    if not isinstance(payload, dict):
        raise CodecError(f"payload must be an object, got {type(payload).__name__}")
    version = payload.pop("v", None)
    if version != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {version!r}")
    tag = payload.pop("t", None)
    spec = _REGISTRY.get(tag) if isinstance(tag, str) else None
    if spec is None:
        raise CodecError(f"unknown wire type {tag!r}")
    expected = set(spec.fields)
    present = set(payload)
    if present != expected:
        missing = ", ".join(sorted(expected - present)) or "-"
        extra = ", ".join(sorted(present - expected)) or "-"
        raise CodecError(
            f"{tag}: field mismatch (missing: {missing}; unexpected: {extra})"
        )
    kwargs = {}
    for name in spec.fields:
        value = _to_native(payload[name])
        if not spec.checkers[name](value):
            raise CodecError(
                f"{tag}.{name}: implausible value {value!r}"
            )
        kwargs[name] = value
    try:
        return spec.cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise CodecError(f"{tag}: {error}") from None


for _message_type in MESSAGE_TYPES:
    register_wire_type(_message_type)
del _message_type
