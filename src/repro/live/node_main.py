"""Entry point for one live AVMON node process.

The supervisor spawns ``python -m repro.live.node_main --spec '<json>'``
once per overlay member.  The process boots a :class:`~repro.live.runtime
.LiveNode`, runs until SIGTERM/SIGINT (graceful: persist state, send
``Goodbye``) or SIGKILL (a crash: state survives only up to the last
periodic snapshot — exactly the failure model the paper assumes), and
exits 0 on a clean shutdown.

It is equally usable by hand for ad-hoc multi-host experiments::

    python -m repro.live.node_main --spec "$(cat node7.json)"
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional

from .runtime import LiveNode, LiveNodeSpec

__all__ = ["main", "run_node"]


async def run_node(spec: LiveNodeSpec) -> None:
    """Boot one node and serve until the process is told to stop."""
    node = LiveNode(spec)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # non-UNIX loops
            pass
    await node.start()
    try:
        await stop.wait()
    finally:
        await node.stop(graceful=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.live.node_main", description="Run one live AVMON node."
    )
    parser.add_argument(
        "--spec",
        required=True,
        help="JSON-encoded LiveNodeSpec (see repro.live.runtime)",
    )
    args = parser.parse_args(argv)
    try:
        spec = LiveNodeSpec.from_json(args.spec)
    except (ValueError, TypeError) as error:
        print(f"error: bad --spec: {error}", file=sys.stderr)
        return 2
    try:
        asyncio.run(run_node(spec))
    except KeyboardInterrupt:
        pass
    except RuntimeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
