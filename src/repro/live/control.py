"""Control-plane messages for the live overlay.

The data plane is the AVMON protocol itself
(:data:`repro.core.messages.MESSAGE_TYPES`); this module is everything the
deployment around it needs: introducer registration and directories, the
supervisor's per-node status scraping, and the operator commands behind
``avmon live status|chaos|down``.  All types travel through the same
:mod:`repro.live.codec` as protocol messages — one wire, one property
suite.

Directory entries are flat ``(node, host, port)`` tuples; node state
travels as tuples-of-tuples (e.g. ``ps`` as ``(monitor, discovery_time)``
pairs) so every control message stays codec-round-trippable by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .codec import register_wire_type

__all__ = [
    "Hello",
    "HelloAck",
    "Heartbeat",
    "Goodbye",
    "IntroducerSync",
    "DirectoryRequest",
    "DirectoryReply",
    "StatusRequest",
    "StatusReply",
    "OverlayStatusRequest",
    "OverlayStatusReply",
    "ChaosRequest",
    "ChaosReply",
    "FaultRequest",
    "FaultReply",
    "FaultUpdate",
    "DownRequest",
    "DownAck",
    "OverlayInfoRequest",
    "OverlayInfoReply",
    "ServeStatusRequest",
    "ServeStatusReply",
    "CONTROL_TYPES",
]


@dataclass(frozen=True)
class Hello:
    """A node announcing itself (and its UDP port) to the introducer."""

    node: int
    port: int
    #: Bind host; empty means "use the datagram's source address".
    host: str = ""


@dataclass(frozen=True)
class HelloAck:
    """Introducer's reply: the overlay epoch and current alive count."""

    epoch: float = 0.0
    alive: int = 0


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon; silence past the TTL means departed."""

    node: int


@dataclass(frozen=True)
class Goodbye:
    """Graceful leave: drop the sender from the alive set immediately."""

    node: int


@dataclass(frozen=True)
class IntroducerSync:
    """Introducer -> introducer anti-entropy (the bootstrap quorum).

    Each replica periodically pushes its whole soft-state directory to its
    peers.  Entries travel as ``(node, host, port, age)`` where ``age`` is
    seconds-since-last-heard *at the sender* — relative ages survive
    replicas running on different monotonic clocks, absolute timestamps
    would not.  The receiver merges any entry fresher than its own and
    adopts the *eldest* (smallest) epoch it hears, so every replica
    converges on one overlay timebase.
    """

    sender: str = ""
    epoch: float = 0.0
    entries: Tuple[Tuple[int, str, int, float], ...] = ()


@dataclass(frozen=True)
class DirectoryRequest:
    """Ask the introducer for the current peer directory."""

    node: int = -1


@dataclass(frozen=True)
class DirectoryReply:
    """Alive peers as ``(node, host, port)`` triples."""

    entries: Tuple[Tuple[int, str, int], ...] = ()


@dataclass(frozen=True)
class StatusRequest:
    """Supervisor probe of one node's protocol state."""

    probe: int = 0


@dataclass(frozen=True)
class StatusReply:
    """One node's scraped protocol state.

    ``ps`` carries ``(monitor, discovery_time)`` pairs straight out of
    :attr:`repro.core.node.AvmonNode.ps`; times are overlay-epoch-relative
    seconds, so the supervisor can rank and difference them across nodes.
    """

    node: int = -1
    probe: int = 0
    now: float = 0.0
    started_at: float = 0.0
    ps: Tuple[Tuple[int, float], ...] = ()
    ts: Tuple[int, ...] = ()
    cv: Tuple[int, ...] = ()
    computations: int = 0
    memory_entries: int = 0
    useless_pings: int = 0
    bytes_sent: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    datagrams_malformed: int = 0
    #: Contained failures, surfaced so a sick node is diagnosable from
    #: outside its process: ticks that raised, handler exceptions, and
    #: JOINs dropped by the admission budget.
    tick_errors: int = 0
    handler_errors: int = 0
    joins_throttled: int = 0
    #: §3.3 query traffic this node served (see the serving surface in
    #: :mod:`repro.serve`): monitor-set reports about itself, and
    #: availability histories about its pinging targets.
    reports_served: int = 0
    histories_served: int = 0
    #: Introducer HA counters: how many times this node rotated to
    #: another bootstrap replica on silence, and how many directory-driven
    #: coarse-view re-seeds it performed (partition island merging).
    introducer_failovers: int = 0
    cv_reseeds: int = 0


@dataclass(frozen=True)
class OverlayStatusRequest:
    """Operator probe of the whole overlay (``avmon live status``)."""

    probe: int = 0


@dataclass(frozen=True)
class OverlayStatusReply:
    """Supervisor's overlay-level answer."""

    probe: int = 0
    nodes: int = 0
    alive: int = 0
    elapsed: float = 0.0
    discovered_pairs: int = 0
    expected_pairs: int = 0
    crashes: int = 0


@dataclass(frozen=True)
class ChaosRequest:
    """Operator chaos injection: crash *kill* random nodes, then restart
    each after *downtime* seconds (``avmon live chaos``).

    ``kill_introducers`` additionally kills that many introducer replicas
    (primary first, never the last surviving one) — the failover drill
    behind ``avmon live chaos --kill-introducer``.
    """

    kill: int = 1
    downtime: float = 2.0
    kill_introducers: int = 0


@dataclass(frozen=True)
class ChaosReply:
    """The node ids that were crashed (and any introducers killed)."""

    victims: Tuple[int, ...] = ()
    introducers_killed: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FaultRequest:
    """Operator network-fault injection (``avmon live chaos --loss ...``).

    ``plan`` is a JSON-encoded :class:`~repro.live.faults.FaultPlan` (or,
    with ``merge``, a sparse dict of plan fields); the supervisor pushes
    the result to every known node as a :class:`FaultUpdate`.

    With ``merge`` the given fields are laid over the overlay's *current*
    plan — ``--partition`` on an overlay booted ``--fault WAN`` keeps the
    WAN latency/loss.  Without it, the plan replaces everything (an empty
    ``plan`` heals the network completely).
    """

    probe: int = 0
    plan: str = ""
    merge: bool = False


@dataclass(frozen=True)
class FaultReply:
    """How many nodes the new fault plan was pushed to."""

    probe: int = 0
    applied: int = 0


@dataclass(frozen=True)
class FaultUpdate:
    """Supervisor -> node: replace the transport's active fault plan."""

    plan: str = ""


@dataclass(frozen=True)
class OverlayInfoRequest:
    """Client discovery: ask the supervisor how to join as an observer.

    ``avmon live query`` and ``avmon serve`` need the introducer address
    plus the overlay's consistency parameters to run verified queries;
    this fetches them from the control port instead of making the
    operator repeat ``--nodes/--k/--cvs`` on every invocation.
    """

    probe: int = 0


@dataclass(frozen=True)
class OverlayInfoReply:
    """Everything an observer client needs to query the overlay."""

    probe: int = 0
    nodes: int = 0
    k: int = 0
    cvs: int = 0
    hash_algorithm: str = "sha1"
    introducer_host: str = ""
    introducer_port: int = 0
    epoch: float = 0.0


@dataclass(frozen=True)
class ServeStatusRequest:
    """Operator probe of an attached serving front end."""

    probe: int = 0


@dataclass(frozen=True)
class ServeStatusReply:
    """Serving-surface counters, scraped over the control plane.

    A flat projection of the service's ``/metrics`` totals — enough for
    ``avmon live status`` to show whether the front end is healthy and
    shedding correctly without speaking HTTP.
    """

    probe: int = 0
    requests: int = 0
    ok: int = 0
    client_errors: int = 0
    server_errors: int = 0
    rate_limited: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    monitors_verified: int = 0
    monitors_rejected: int = 0
    queries_timed_out: int = 0


@dataclass(frozen=True)
class DownRequest:
    """Operator teardown (``avmon live down``)."""

    probe: int = 0


@dataclass(frozen=True)
class DownAck:
    """Supervisor acknowledgement that teardown has begun."""

    probe: int = 0


#: Every control message, registered on the shared wire at import time.
CONTROL_TYPES = (
    Hello,
    HelloAck,
    Heartbeat,
    Goodbye,
    IntroducerSync,
    DirectoryRequest,
    DirectoryReply,
    StatusRequest,
    StatusReply,
    OverlayStatusRequest,
    OverlayStatusReply,
    ChaosRequest,
    ChaosReply,
    FaultRequest,
    FaultReply,
    FaultUpdate,
    OverlayInfoRequest,
    OverlayInfoReply,
    ServeStatusRequest,
    ServeStatusReply,
    DownRequest,
    DownAck,
)

for _control_type in CONTROL_TYPES:
    register_wire_type(_control_type)
del _control_type
