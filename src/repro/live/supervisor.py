"""Boot, churn, scrape and summarise a live AVMON overlay.

:class:`LiveSupervisor` is the deployment harness: it starts the
introducer, spawns one OS process per node (:mod:`repro.live.node_main`),
waits for the overlay to assemble, and then

* **injects churn** through any component registered under the ``churn``
  kind — the supervisor implements the same
  :class:`~repro.churn.base.ChurnDriver` interface the simulator's cluster
  does, except ``request_leave`` sends SIGTERM (graceful leave: the node
  persists state and says goodbye), ``request_death`` sends SIGKILL, and
  ``request_rejoin`` respawns the process against its persistent state
  file, so SYNTH and friends drive real process churn unmodified;
* **injects one-shot crashes** (``crash_after``/``chaos``): SIGKILL now,
  respawn after a configurable downtime — the failure the consistency
  condition exists to survive;
* **scrapes per-node metrics** over UDP status probes on a sampling
  cadence, and at teardown folds them into the standard
  :class:`~repro.experiments.summary.SimulationSummary`, optionally
  persisting it to a :class:`~repro.experiments.store.SummaryStore` under
  :func:`live_config_key` — so live runs flow through exactly the same
  report/figure machinery as simulated ones.

The quality bar is the paper's consistency condition: the report carries
``discovery_ratio`` — discovered ÷ expected monitor relationships over the
final alive population — and a violation count (reported PS/TS entries
that fail the condition; always 0 unless a node misbehaves).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..churn import models as _churn_models  # noqa: F401 — registers STAT/SYNTH*
from ..core import optimal
from ..core.condition import ConsistencyCondition
from ..core.hashing import NodeId
from ..experiments.store import SummaryStore, stable_key_hash
from ..experiments.summary import SimulationSummary
from ..metrics import stats
from ..registry import canonical_name, create, resolve
from .control import (
    ChaosReply,
    ChaosRequest,
    DownAck,
    DownRequest,
    FaultReply,
    FaultRequest,
    FaultUpdate,
    OverlayInfoReply,
    OverlayInfoRequest,
    OverlayStatusReply,
    OverlayStatusRequest,
    ServeStatusRequest,
    StatusReply,
    StatusRequest,
)
from .faults import FaultPlan
from .introducer import Introducer, IntroducerGroup  # noqa: F401 — re-export
from .runtime import LiveNodeSpec
from .transport import Address, UdpTransport

__all__ = [
    "LiveConfig",
    "LiveReport",
    "LiveSupervisor",
    "StatusProber",
    "build_live_report",
    "control_call",
    "live_config_key",
    "live_store_filename",
    "pair_coverage",
    "run_live",
    "summarize_statuses",
    "victim_recovery_ratio",
]


@dataclass
class LiveConfig:
    """One live deployment, declaratively (JSON-portable)."""

    nodes: int = 8
    duration: float = 20.0
    seed: int = 1
    #: Consistent parameters; None -> the paper's defaults for ``nodes``.
    k: Optional[int] = None
    cvs: Optional[int] = None
    #: Live runs compress the paper's 60 s periods to wall-clock seconds.
    protocol_period: float = 1.0
    monitoring_period: float = 1.0
    ping_timeout: float = 0.25
    forgetful_tau: float = 2.0
    forgetful_c: float = 1.0
    enable_forgetful: bool = True
    #: PR2 (Section 5.4) defaults ON for live deployments: a node whose
    #: boot-time join tree under-seeded its in-degree (or whose CV entries
    #: all churned away) refreshes itself back into its neighbours' views —
    #: the paper's own remedy for exactly the decay real clocks and real
    #: packet loss produce.
    enable_pr2: bool = True
    hash_algorithm: str = "md5"
    #: Churn component key (the PR-1 registry) driving process churn.
    churn: str = "STAT"
    churn_per_hour: float = 0.2
    birth_death_per_day: float = 0.2
    #: One-shot chaos: SIGKILL a random node this many seconds in.
    crash_after: Optional[float] = None
    crash_downtime: float = 3.0
    host: str = "127.0.0.1"
    #: Operator control endpoint; 0 binds an ephemeral port, -1 disables.
    control_port: int = 0
    #: HTTP availability-serving port; 0 binds an ephemeral port, None
    #: (the default) runs the overlay without a serving front end.
    serve_port: Optional[int] = None
    sample_interval: float = 2.0
    heartbeat_interval: float = 0.5
    introducer_ttl: float = 2.5
    #: Bootstrap quorum size: introducer replicas to spawn.  Nodes learn
    #: every replica's address and fail over on silence; replicas
    #: anti-entropy-sync their directories (``IntroducerSync``).
    introducers: int = 1
    #: Replica-to-replica directory sync period, seconds.
    introducer_sync_interval: float = 1.0
    #: One-shot HA chaos: kill the primary introducer this many seconds
    #: in (requires ``introducers`` >= 2; never kills the last replica).
    kill_introducer_after: Optional[float] = None
    #: Node state files live here; empty -> a run-scoped temp directory.
    state_dir: str = ""
    #: Fault component key (registry kind ``fault``) shaping the network.
    fault: str = "NONE"
    #: Overrides for the fault component's factory (e.g. ``loss=0.25``).
    fault_params: Dict[str, Any] = field(default_factory=dict)
    label: str = "LIVE"

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError(f"nodes must be >= 2, got {self.nodes}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.crash_after is not None and not (
            0.0 < self.crash_after < self.duration
        ):
            raise ValueError(
                f"crash_after must fall inside the run "
                f"(0, {self.duration}), got {self.crash_after}"
            )
        if self.introducers < 1:
            raise ValueError(
                f"introducers must be >= 1, got {self.introducers}"
            )
        if self.kill_introducer_after is not None:
            if self.introducers < 2:
                raise ValueError(
                    "kill_introducer_after needs a bootstrap quorum "
                    f"(introducers >= 2), got {self.introducers}"
                )
            if not 0.0 < self.kill_introducer_after < self.duration:
                raise ValueError(
                    f"kill_introducer_after must fall inside the run "
                    f"(0, {self.duration}), got {self.kill_introducer_after}"
                )

    def resolved_k(self) -> int:
        return self.k if self.k is not None else max(
            1, round(math.log2(self.nodes))
        )

    def resolved_cvs(self) -> int:
        return (
            self.cvs
            if self.cvs is not None
            else optimal.cvs_paper_default(self.nodes)
        )

    def resolved_fault_plan(self) -> FaultPlan:
        """The :class:`~repro.live.faults.FaultPlan` this deployment runs
        under, built through the ``fault`` component registry."""
        params = dict(self.fault_params)
        params.setdefault("seed", self.seed)
        return create("fault", self.fault, **params)

    def node_spec(
        self,
        node: NodeId,
        introducer: Address,
        *,
        epoch: float,
        state_file: str,
        fault: str = "",
        introducers: Sequence[Address] = (),
    ) -> LiveNodeSpec:
        return LiveNodeSpec(
            node=node,
            introducer_host=introducer[0],
            introducer_port=introducer[1],
            n_expected=self.nodes,
            k=self.resolved_k(),
            cvs=self.resolved_cvs(),
            protocol_period=self.protocol_period,
            monitoring_period=self.monitoring_period,
            ping_timeout=self.ping_timeout,
            forgetful_tau=self.forgetful_tau,
            forgetful_c=self.forgetful_c,
            enable_forgetful=self.enable_forgetful,
            enable_pr2=self.enable_pr2,
            hash_algorithm=self.hash_algorithm,
            seed=self.seed,
            host=self.host,
            epoch=epoch,
            heartbeat_interval=self.heartbeat_interval,
            directory_interval=max(
                self.heartbeat_interval, self.protocol_period / 2.0
            ),
            snapshot_interval=self.protocol_period,
            state_file=state_file,
            fault=fault,
            introducers=tuple(introducers),
        )

    def to_dict(self) -> dict:
        return asdict(self)


def live_config_key(
    config: LiveConfig, *, plan: Optional[FaultPlan] = None
) -> Tuple:
    """The structural identity of a live deployment, store-addressable.

    Unlike simulation keys this does not promise byte-identical summaries
    — wall clocks and real packet loss are not replayable — so the store
    holds the *latest* run of each distinct deployment (re-running a
    deployment overwrites its cell, exactly what a monitoring dashboard
    wants).

    *plan* overrides the config's own fault component — the in-memory
    harness accepts an explicit :class:`FaultPlan`, and a faulty run must
    never land in (and clobber) the fault-free deployment's cell.
    """
    key = (
        "LIVE-RUN",
        config.nodes,
        config.duration,
        config.seed,
        config.resolved_k(),
        config.resolved_cvs(),
        config.protocol_period,
        config.monitoring_period,
        config.ping_timeout,
        config.forgetful_tau,
        config.forgetful_c,
        config.enable_forgetful,
        config.enable_pr2,
        config.hash_algorithm,
        canonical_name(config.churn),
        config.churn_per_hour,
        config.birth_death_per_day,
        config.crash_after,
        config.crash_downtime,
    )
    if plan is None:
        plan = config.resolved_fault_plan()
    if not plan.is_null():
        # Appended only for faulty deployments, so every pre-fault store
        # cell keeps its address.
        key = key + (plan.key(),)
    if config.introducers != 1 or config.kill_introducer_after is not None:
        # Same append-only-when-non-default rule: single-introducer
        # deployments (everything that existed before HA) keep their
        # store addresses bit-for-bit.
        key = key + (
            "INTRODUCERS",
            config.introducers,
            config.kill_introducer_after,
        )
    return key


@dataclass
class _NodeHandle:
    """Supervisor-side bookkeeping for one overlay member."""

    node: NodeId
    spec: LiveNodeSpec
    process: Optional[subprocess.Popen] = None
    first_spawn: float = 0.0
    alive: bool = False
    dead: bool = False
    crashes: int = 0
    up_since: Optional[float] = None
    #: Length of the most recently *closed* process life, in seconds.
    last_life_seconds: float = 0.0


class _WallSim:
    """The ``sim`` facade churn models schedule against, on the wall clock."""

    def __init__(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = time.monotonic()
        self._handles: List[asyncio.TimerHandle] = []

    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def schedule(self, delay: float, callback, *args) -> asyncio.TimerHandle:
        handle = self._loop.call_later(max(0.0, delay), callback, *args)
        self._handles.append(handle)
        if len(self._handles) > 256:
            # Drop fired/cancelled handles so a churny overlay (thousands
            # of transitions per hour) does not grow this list unboundedly.
            now = self._loop.time()
            self._handles = [
                h for h in self._handles if not h.cancelled() and h.when() > now
            ]
        return handle

    def schedule_at(self, when: float, callback, *args) -> asyncio.TimerHandle:
        return self.schedule(when - self.now, callback, *args)

    # Fire-and-forget variants matching the engine's fast lane; churn
    # models schedule births/deaths and trace replays through these.
    def schedule_call(self, delay: float, callback, *args) -> None:
        self.schedule(delay, callback, *args)

    def schedule_call_at(self, when: float, callback, *args) -> None:
        self.schedule_at(when, callback, *args)

    def cancel_all(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


class StatusProber:
    """Per-node status probing with per-attempt timeouts and retries.

    The old scrape sent one probe per node and waited a single blanket
    timeout: one partitioned or dead node stalled the whole scrape for the
    full timeout, and a single lost datagram (10 % loss is a *configured*
    regime now) silently blanked that node's sample.  Here every node is
    probed concurrently on its own retry schedule — ``attempts`` probes,
    each waiting ``timeout / attempts`` — so responsive nodes resolve on
    their first reply, lossy paths get retried, and an unreachable node
    costs only its own bounded budget, never anyone else's.
    """

    def __init__(self) -> None:
        self._waiters: Dict[Tuple[NodeId, int], asyncio.Future] = {}
        self._seq = 0

    def on_reply(self, message: Any, _addr: Address) -> None:
        """Transport handler: resolve the waiter a reply belongs to."""
        if not isinstance(message, StatusReply):
            return
        waiter = self._waiters.pop((message.node, message.probe), None)
        if waiter is not None and not waiter.done():
            waiter.set_result(message)

    async def probe(
        self,
        transport,
        entries: Sequence[Tuple[NodeId, str, int]],
        *,
        timeout: float = 1.0,
        attempts: int = 3,
    ) -> Dict[NodeId, StatusReply]:
        """One status sweep of *entries*; missing nodes are simply absent."""
        if not entries:
            return {}
        attempts = max(1, attempts)
        per_attempt = max(timeout / attempts, 1e-3)
        loop = asyncio.get_running_loop()

        async def probe_one(node: NodeId, host: str, port: int):
            # One shared future across every attempt: a retry adds another
            # outstanding probe id, it never abandons the earlier ones, so
            # a reply that takes longer than one attempt window (a
            # high-latency fault plan, a loaded host) still resolves the
            # node — the retries only add datagrams, never shrink the
            # listening window below the full timeout.
            future: asyncio.Future = loop.create_future()
            probe_ids = []
            try:
                for _ in range(attempts):
                    self._seq += 1
                    probe_id = self._seq
                    probe_ids.append(probe_id)
                    self._waiters[(node, probe_id)] = future
                    transport.send_to(
                        (host, port), StatusRequest(probe=probe_id)
                    )
                    try:
                        # shield: wait_for must not cancel the shared
                        # future on a per-attempt timeout.
                        return node, await asyncio.wait_for(
                            asyncio.shield(future), per_attempt
                        )
                    except asyncio.TimeoutError:
                        continue
                return node, None
            finally:
                for probe_id in probe_ids:
                    self._waiters.pop((node, probe_id), None)

        results = await asyncio.gather(
            *(probe_one(node, host, port) for node, host, port in entries)
        )
        return {node: reply for node, reply in results if reply is not None}


# ----------------------------------------------------------------------
# Shared oracle + summary construction (used by the process supervisor and
# the in-memory harness alike — one audit, two fabrics)
# ----------------------------------------------------------------------


def pair_coverage(
    condition: ConsistencyCondition, statuses: Mapping[NodeId, StatusReply]
) -> Tuple[int, int, int]:
    """(discovered, expected, violations) over the scraped population.

    Expected: every ordered pair ``(monitor, target)`` of *scraped* nodes
    satisfying the consistency condition.  Discovered: the pair's target
    reports the monitor in its PS.  Violations: reported PS/TS entries
    that fail the condition — the scheme's verifiability means any party
    can run this audit.
    """
    population = sorted(statuses)
    expected = 0
    discovered = 0
    violations = 0
    holds = condition.holds
    for target in population:
        reported = {m for m, _t in statuses[target].ps}
        for monitor in population:
            if monitor == target:
                continue
            if holds(monitor, target):
                expected += 1
                if monitor in reported:
                    discovered += 1
        violations += sum(1 for m in reported if not holds(m, target))
        violations += sum(
            1 for t in statuses[target].ts if not holds(target, t)
        )
    return discovered, expected, violations


def victim_recovery_ratio(
    condition: ConsistencyCondition,
    statuses: Mapping[NodeId, StatusReply],
    victims,
) -> Optional[float]:
    """Coverage of pairs involving crash victims, post-recovery."""
    victims = set(victims)
    if not victims:
        return None
    holds = condition.holds
    expected = 0
    discovered = 0
    for target, status in statuses.items():
        reported = {m for m, _t in status.ps}
        for monitor in statuses:
            if monitor == target:
                continue
            if not (monitor in victims or target in victims):
                continue
            if holds(monitor, target):
                expected += 1
                if monitor in reported:
                    discovered += 1
    if expected == 0:
        return None
    return discovered / expected


def summarize_statuses(
    config: LiveConfig,
    statuses: Mapping[NodeId, StatusReply],
    *,
    join_times: Mapping[NodeId, float],
    life_seconds: Callable[[NodeId], float],
    memory_series: Mapping[NodeId, List[float]],
    n_longterm: int,
    final_alive: int,
) -> SimulationSummary:
    """Fold scraped node states into the standard summary shape.

    Nodes absent from *join_times* are skipped: they answered a probe but
    were not deployed by this harness (an operator hand-ran them), so
    there is no spawn/uptime bookkeeping to rate their counters with.
    """
    monitor_delays: Dict[int, List[float]] = {}
    undiscovered = 0
    comp_rates: List[float] = []
    memory: List[float] = []
    bandwidth: List[float] = []
    useless: List[float] = []
    datagrams = 0
    for node in sorted(statuses):
        status = statuses[node]
        if node not in join_times:
            continue
        join_time = join_times[node]
        delays = sorted(max(0.0, t - join_time) for _m, t in status.ps)
        if not delays:
            undiscovered += 1
        for rank, delay in enumerate(delays, start=1):
            monitor_delays.setdefault(rank, []).append(delay)
        life_s = max(life_seconds(node), 1e-9)
        comp_rates.append(status.computations / life_s)
        series = memory_series.get(node, [])
        memory.append(
            stats.mean(series) if series else float(status.memory_entries)
        )
        bandwidth.append(status.bytes_sent / life_s)
        useless.append(status.useless_pings / (life_s / 60.0))
        datagrams += status.datagrams_received
    return SimulationSummary(
        model="LIVE",
        n=config.nodes,
        seed=config.seed,
        label=config.label,
        params={
            "duration": config.duration,
            "warmup": 0.0,
            "control_fraction": 1.0,
            "churn_per_hour": config.churn_per_hour,
            "birth_death_per_day": config.birth_death_per_day,
            "overreport_fraction": 0.0,
            "sample_interval": config.sample_interval,
        },
        avmon={
            "n_expected": float(config.nodes),
            "k": float(config.resolved_k()),
            "cvs": float(config.resolved_cvs()),
            "protocol_period": config.protocol_period,
            "monitoring_period": config.monitoring_period,
            "expected_memory_entries": (
                config.resolved_cvs() + 2.0 * config.resolved_k()
            ),
            "enable_forgetful": config.enable_forgetful,
            "enable_pr2": config.enable_pr2,
        },
        monitor_delays=monitor_delays,
        control_count=len(memory),
        undiscovered_count=undiscovered,
        computation_rates_control=comp_rates,
        computation_rates_all=list(comp_rates),
        memory_control=memory,
        memory_all=list(memory),
        bandwidth=bandwidth,
        useless_pings=useless,
        n_longterm=n_longterm,
        final_alive=final_alive,
        events_processed=datagrams,
        window_seconds=config.duration,
    )


@dataclass
class LiveReport:
    """Everything one live run measured, plus the persisted summary."""

    config: LiveConfig
    summary: SimulationSummary
    #: Discovered ÷ expected monitor relationships over the final overlay.
    discovery_ratio: float
    discovered_pairs: int
    expected_pairs: int
    #: Reported PS/TS entries failing the consistency condition (should be 0).
    violations: int
    crashes: int
    crash_victims: Tuple[NodeId, ...]
    #: Discovered ÷ expected relationships involving crash victims.
    victim_recovery: Optional[float]
    final_alive: int
    elapsed: float
    store_path: Optional[str] = None
    statuses: Dict[NodeId, StatusReply] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "summary": self.summary.to_dict(),
            "discovery_ratio": self.discovery_ratio,
            "discovered_pairs": self.discovered_pairs,
            "expected_pairs": self.expected_pairs,
            "violations": self.violations,
            "crashes": self.crashes,
            "crash_victims": list(self.crash_victims),
            "victim_recovery": self.victim_recovery,
            "final_alive": self.final_alive,
            "elapsed": self.elapsed,
            "store_path": self.store_path,
        }


def build_live_report(
    config: LiveConfig,
    condition: ConsistencyCondition,
    statuses: Mapping[NodeId, StatusReply],
    *,
    crash_victims: Sequence[NodeId],
    final_alive: int,
    elapsed: float,
    join_times: Mapping[NodeId, float],
    life_seconds: Callable[[NodeId], float],
    memory_series: Mapping[NodeId, List[float]],
    n_longterm: int,
) -> LiveReport:
    """Audit + summarise one overlay run (any fabric) into a report."""
    discovered, expected, violations = pair_coverage(condition, statuses)
    if expected:
        ratio = discovered / expected
    elif len(statuses) >= 2:
        # A real scraped population that genuinely has no expected
        # pairs (tiny N/K can hash that way): vacuously complete.
        ratio = 1.0
    else:
        # Nothing (or one node) answered the final scrape: report zero,
        # not a vacuous 100% — the --expect-discovery gate exists to
        # catch exactly this kind of dead overlay.
        ratio = 0.0
    summary = summarize_statuses(
        config,
        statuses,
        join_times=join_times,
        life_seconds=life_seconds,
        memory_series=memory_series,
        n_longterm=n_longterm,
        final_alive=final_alive,
    )
    return LiveReport(
        config=config,
        summary=summary,
        discovery_ratio=ratio,
        discovered_pairs=discovered,
        expected_pairs=expected,
        violations=violations,
        crashes=len(crash_victims),
        crash_victims=tuple(crash_victims),
        victim_recovery=victim_recovery_ratio(condition, statuses, crash_victims),
        final_alive=final_alive,
        elapsed=elapsed,
        statuses=dict(statuses),
    )


class LiveSupervisor:
    """Owns one overlay's lifecycle; also the live ``ChurnDriver``."""

    #: Seconds granted for the overlay to fully register before failing.
    BOOT_TIMEOUT_BASE = 15.0

    def __init__(
        self,
        config: LiveConfig,
        *,
        store: Optional[SummaryStore] = None,
        journal=None,
    ) -> None:
        self.config = config
        self.store = store
        self.rng = random.Random(config.seed)
        self.condition = ConsistencyCondition(
            config.resolved_k(), config.nodes, config.hash_algorithm
        )
        # Lifecycle event journal (``repro.obs``): in-memory by default,
        # sunk to a JSONL file when $AVMON_JOURNAL (or the caller) says so.
        if journal is None:
            from ..obs.journal import journal_from_env

            journal = journal_from_env()
        self.journal = journal
        self.introducer = IntroducerGroup(
            config.introducers,
            ttl=config.introducer_ttl,
            journal=journal,
            sync_interval=config.introducer_sync_interval,
        )
        self.sim: Optional[_WallSim] = None
        self._handles: Dict[NodeId, _NodeHandle] = {}
        self._next_id = 0
        self._model = None
        self._running = False
        self._stop_early = asyncio.Event()
        self._state_dir: Optional[pathlib.Path] = None
        self._own_state_dir = False
        self._scraper: Optional[UdpTransport] = None
        self._control: Optional[UdpTransport] = None
        self._prober = StatusProber()
        plan = config.resolved_fault_plan()
        #: JSON fault plan every (re)spawned node boots with; "" = perfect.
        self._fault_json = "" if plan.is_null() else plan.to_json()
        #: True once an operator replaced the plan at runtime (enables the
        #: per-scrape re-broadcast that converges nodes that missed it).
        self._fault_pushed = False
        #: Last known address of every node ever registered: a plan that
        #: severs node->introducer traffic empties the directory, and the
        #: heal must still reach those nodes.
        self._known_addresses: Dict[NodeId, Address] = {}
        self._crash_victims: List[NodeId] = []
        self._memory_series: Dict[NodeId, List[float]] = {}
        self._last_statuses: Dict[NodeId, StatusReply] = {}
        #: Attached serving front end (``--serve``): the HTTP server, its
        #: service (for control-plane status projection) and its backend.
        self._serve_server = None
        self._serve_service = None
        self._serve_backend = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> LiveReport:
        """Boot the overlay, run it for the configured duration, report."""
        started = time.monotonic()
        config = self.config
        introducer_addr = await self.introducer.start(config.host, 0)
        self.journal.emit(
            "live.run.start",
            nodes=config.nodes,
            seed=config.seed,
            duration=config.duration,
            label=config.label,
        )
        self.sim = _WallSim()
        try:
            self._state_dir = (
                pathlib.Path(config.state_dir)
                if config.state_dir
                else pathlib.Path(tempfile.mkdtemp(prefix="avmon-live-"))
            )
            self._own_state_dir = not config.state_dir
            try:
                self._state_dir.mkdir(parents=True, exist_ok=True)
            except OSError as error:
                raise RuntimeError(
                    f"cannot use state dir {self._state_dir}: {error}"
                ) from error
            self._scraper = await UdpTransport.create(
                self._prober.on_reply, host=config.host, port=0
            )
            if config.control_port >= 0:
                try:
                    self._control = await UdpTransport.create(
                        self._on_control,
                        host=config.host,
                        port=config.control_port,
                    )
                except OSError:
                    # Port taken (another overlay up?): fall back to
                    # ephemeral so the run proceeds — and say so, or the
                    # operator's status/chaos/down commands would target
                    # the *other* overlay.
                    self._control = await UdpTransport.create(
                        self._on_control, host=config.host, port=0
                    )
                    print(
                        f"live: control port {config.control_port} in use; "
                        f"this overlay's control is "
                        f"{config.host}:{self._control.local_address[1]}",
                        file=sys.stderr,
                    )
            self._running = True
            for _ in range(config.nodes):
                self._spawn_new(introducer_addr)
            await self._await_boot()
            if config.serve_port is not None and config.serve_port >= 0:
                await self._start_serve(introducer_addr)
            self._bind_churn()
            if config.crash_after is not None:
                self.sim.schedule(config.crash_after, self._inject_crash)
            if config.kill_introducer_after is not None:
                self.sim.schedule(
                    config.kill_introducer_after,
                    self.introducer.kill_primary,
                )
            await self._measurement_window()
            statuses = await self.scrape(timeout=max(1.0, config.ping_timeout * 8))
            self._last_statuses = statuses
            final_alive = self.introducer.alive_count()
        finally:
            await self._teardown()
        elapsed = time.monotonic() - started
        self.journal.emit(
            "live.run.end",
            alive=final_alive,
            elapsed_s=round(elapsed, 3),
        )
        report = self._build_report(statuses, final_alive, elapsed)
        if self.store is not None:
            path = self.store.save(live_config_key(config), report.summary)
            report.store_path = str(path) if path is not None else None
        return report

    async def _await_boot(self) -> None:
        deadline = time.monotonic() + (
            self.BOOT_TIMEOUT_BASE + 0.25 * self.config.nodes
        )
        while time.monotonic() < deadline:
            if self.introducer.alive_count() >= self.config.nodes:
                return
            dead = [
                h.node
                for h in self._handles.values()
                if h.process is not None and h.process.poll() is not None
            ]
            if dead:
                raise RuntimeError(
                    f"node process(es) {sorted(dead)} exited during boot"
                )
            await asyncio.sleep(0.1)
        raise RuntimeError(
            f"overlay failed to assemble: "
            f"{self.introducer.alive_count()}/{self.config.nodes} registered"
        )

    def _bind_churn(self) -> None:
        factory = resolve("churn", self.config.churn)
        self._model = factory(
            self.config.nodes,
            random.Random(self.config.seed + 7919),
            churn_per_hour=self.config.churn_per_hour,
            birth_death_per_day=self.config.birth_death_per_day,
        )
        self._model.bind(self)
        self._model.setup()
        for handle in self._handles.values():
            if handle.alive:
                self._model.on_node_up(handle.node)

    async def _measurement_window(self) -> None:
        deadline = time.monotonic() + self.config.duration
        next_sample = time.monotonic() + self.config.sample_interval
        while time.monotonic() < deadline and not self._stop_early.is_set():
            remaining = deadline - time.monotonic()
            wait = min(0.25, max(0.0, remaining))
            try:
                await asyncio.wait_for(self._stop_early.wait(), timeout=wait)
                break
            except asyncio.TimeoutError:
                pass
            if time.monotonic() >= next_sample:
                next_sample = time.monotonic() + self.config.sample_interval
                self._rebroadcast_fault_plan()
                statuses = await self.scrape(
                    timeout=max(0.5, self.config.ping_timeout * 4)
                )
                self._last_statuses = statuses
                self.journal.emit(
                    "live.scrape",
                    answered=len(statuses),
                    alive=self.introducer.alive_count(),
                )
                for node, status in statuses.items():
                    self._memory_series.setdefault(node, []).append(
                        float(status.memory_entries)
                    )

    async def _start_serve(self, introducer_addr: Address) -> None:
        """Attach the HTTP availability front end to this overlay.

        Imported lazily: the supervisor must stay importable (and the
        overlay bootable) even if the serve layer is absent or broken.
        """
        from ..serve.backend import OverlayBackend
        from ..serve.http import serve_http
        from ..serve.service import AvailabilityService, ServeConfig

        backend = OverlayBackend(
            self.condition,
            introducer_addr,
            host=self.config.host,
            query_timeout=max(2.0, self.config.ping_timeout * 8),
        )
        await backend.start()
        service = AvailabilityService(backend, ServeConfig())
        server = await serve_http(
            service, self.config.host, self.config.serve_port
        )
        self._serve_backend = backend
        self._serve_service = service
        self._serve_server = server
        port = server.sockets[0].getsockname()[1]
        self.journal.emit("live.serve_started", port=port)
        print(
            f"live: serving availability on "
            f"http://{self.config.host}:{port}",
            file=sys.stderr,
        )

    async def _stop_serve(self) -> None:
        if self._serve_server is not None:
            self._serve_server.close()
            try:
                await self._serve_server.wait_closed()
            except Exception:  # noqa: BLE001 — teardown is best-effort
                pass
            self._serve_server = None
        if self._serve_backend is not None:
            await self._serve_backend.close()
            self._serve_backend = None

    async def _teardown(self) -> None:
        self._running = False
        self.journal.emit("live.teardown")
        await self._stop_serve()
        if self.sim is not None:
            self.sim.cancel_all()
        for handle in self._handles.values():
            self._stop_process(handle, sig=signal.SIGTERM)
        await self._reap_processes()
        if self._scraper is not None:
            self._scraper.close()
        if self._control is not None:
            self._control.close()
        self.introducer.close()
        if self._own_state_dir and self._state_dir is not None:
            shutil.rmtree(self._state_dir, ignore_errors=True)

    async def _reap_processes(self, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._handles.values():
            process = handle.process
            if process is None:
                continue
            while process.poll() is None and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            if process.poll() is None:
                process.kill()
                await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def _spawn_new(self, introducer_addr: Address) -> NodeId:
        node = self._next_id
        self._next_id += 1
        spec = self.config.node_spec(
            node,
            introducer_addr,
            epoch=self.introducer.epoch,
            state_file=str(self._state_dir / f"node-{node}.json"),
            fault=self._fault_json,
            introducers=self.introducer.addresses,
        )
        handle = _NodeHandle(node=node, spec=spec)
        self._handles[node] = handle
        self._start_process(handle)
        handle.first_spawn = time.time() - self.introducer.epoch
        self.journal.emit("live.node_spawned", node=node)
        return node

    def _start_process(self, handle: _NodeHandle) -> None:
        # A respawn boots with the *current* fault plan: `avmon live chaos
        # --loss` may have replaced the one this spec was created with.
        handle.spec.fault = self._fault_json
        src_root = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p
        )
        # stderr goes to a per-node log next to the state file (not
        # /dev/null): a node whose ticks raise logs there, and the file is
        # the first place to look when a gate fails.
        log_path = pathlib.Path(handle.spec.state_file).with_suffix(".log")
        try:
            stderr = open(log_path, "ab")
        except OSError:
            stderr = subprocess.DEVNULL
        handle.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.live.node_main",
                "--spec",
                handle.spec.to_json(),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=stderr,
            start_new_session=True,
        )
        if stderr is not subprocess.DEVNULL:
            stderr.close()  # the child holds its own descriptor now
        handle.alive = True
        handle.up_since = time.monotonic()

    def _stop_process(
        self, handle: _NodeHandle, *, sig: int = signal.SIGTERM
    ) -> None:
        process = handle.process
        if process is not None and process.poll() is None:
            try:
                process.send_signal(sig)
            except OSError:
                pass
        if handle.alive:
            handle.alive = False
            if handle.up_since is not None:
                handle.last_life_seconds = time.monotonic() - handle.up_since
                handle.up_since = None
        self.introducer.drop(handle.node)

    def _respawn(self, node: NodeId) -> None:
        handle = self._handles.get(node)
        if handle is None or handle.dead or handle.alive or not self._running:
            return
        process = handle.process
        if process is not None and process.poll() is None:
            process.kill()
        self._start_process(handle)
        self.journal.emit("live.node_respawned", node=node)
        if self._model is not None:
            self._model.on_node_up(node)

    def life_seconds(self, node: NodeId) -> float:
        """Seconds of the node's *current* process life (or its last one).

        The right denominator for counter-derived rates: a respawned
        process restarts its counters at zero (only CV/PS/TS and ping
        records persist), so dividing by cumulative uptime would
        understate every crash victim's rates.
        """
        handle = self._handles[node]
        if handle.up_since is not None:
            return time.monotonic() - handle.up_since
        return handle.last_life_seconds

    # ------------------------------------------------------------------
    # ChurnDriver interface (what registered churn components call)
    # ------------------------------------------------------------------

    def request_leave(self, node: NodeId) -> None:
        handle = self._handles.get(node)
        if handle is None or not handle.alive or not self._running:
            return
        self.journal.emit("live.node_leave", node=node)
        self._stop_process(handle, sig=signal.SIGTERM)
        if self._model is not None:
            self._model.on_node_down(node)

    def request_rejoin(self, node: NodeId) -> None:
        self._respawn(node)

    def request_birth(self) -> NodeId:
        if not self._running:
            return -1
        node = self._spawn_new(self.introducer.address)
        # Mirror the simulator's Cluster.request_birth: the model must hear
        # about the newborn or it would never schedule its next transition.
        if self._model is not None:
            self._model.on_node_up(node)
        return node

    def request_death(self, node: NodeId) -> None:
        handle = self._handles.get(node)
        if handle is None or handle.dead:
            return
        self.journal.emit("live.node_death", node=node)
        self._stop_process(handle, sig=signal.SIGKILL)
        handle.dead = True
        # Death is permanent: stop re-broadcasting fault plans at it.
        self._known_addresses.pop(node, None)
        # Death is final: the paper grants persistent storage to rejoining
        # nodes only, so a dead node's store goes with it.
        try:
            pathlib.Path(handle.spec.state_file).unlink(missing_ok=True)
        except OSError:
            pass
        if self._model is not None:
            self._model.on_node_death(node)

    def random_alive(self) -> Optional[NodeId]:
        alive = [h.node for h in self._handles.values() if h.alive]
        if not alive:
            return None
        return alive[self.rng.randrange(len(alive))]

    def is_alive(self, node: NodeId) -> bool:
        handle = self._handles.get(node)
        return handle is not None and handle.alive

    def is_dead(self, node: NodeId) -> bool:
        handle = self._handles.get(node)
        return handle is not None and handle.dead

    # ------------------------------------------------------------------
    # Chaos
    # ------------------------------------------------------------------

    def _inject_crash(self, downtime: Optional[float] = None) -> Optional[NodeId]:
        """SIGKILL a random alive node; respawn it after *downtime*."""
        if not self._running:
            return None
        victim = self.random_alive()
        if victim is None:
            return None
        handle = self._handles[victim]
        self._stop_process(handle, sig=signal.SIGKILL)
        handle.crashes += 1
        self._crash_victims.append(victim)
        self.journal.emit(
            "live.node_crashed",
            node=victim,
            downtime_s=self.config.crash_downtime if downtime is None else downtime,
        )
        # Deliberately NOT telling the churn model: its on_node_down would
        # schedule a competing rejoin timer and the earlier of the two
        # would win, silently overriding the requested crash downtime.
        # _respawn notifies on_node_up, which resumes the model's cycle.
        wait = self.config.crash_downtime if downtime is None else downtime
        self.sim.schedule(wait, lambda: self._respawn(victim))
        return victim

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------

    async def scrape(
        self, timeout: float = 1.0, *, attempts: int = 3
    ) -> Dict[NodeId, StatusReply]:
        """One status sweep of every currently-registered node.

        Delegates to :class:`StatusProber`: concurrent per-node retry
        schedules, so one partitioned or dead node never stalls the other
        nodes' results and a lost probe datagram is retried rather than
        blanking the sample.
        """
        return await self._prober.probe(
            self._scraper,
            self.introducer.alive_entries(),
            timeout=timeout,
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    # Runtime fault injection
    # ------------------------------------------------------------------

    def push_fault_plan(self, plan_json: str, *, merge: bool = False) -> int:
        """Replace (or update) the overlay-wide fault plan.

        Broadcasts a :class:`FaultUpdate` to every known node and
        remembers the plan so respawned processes boot with it.  With
        *merge*, *plan_json* is a sparse dict of plan fields laid over
        the current plan — pushing a partition onto a ``--fault WAN``
        overlay keeps the WAN loss/latency.  A malformed plan is
        rejected (returns -1) without touching state; returns the number
        of nodes the update was sent to.
        """
        try:
            if merge:
                base = (
                    FaultPlan.from_json(self._fault_json).to_dict()
                    if self._fault_json
                    else FaultPlan().to_dict()
                )
                overrides = json.loads(plan_json) if plan_json else {}
                if not isinstance(overrides, dict):
                    return -1
                base.update(overrides)
                plan = FaultPlan.from_dict(base)
                # Collapse to "" only for a fully-default plan: is_null()
                # ignores the seed (deliberately, for cache-key
                # compatibility), but a pushed --fault-seed must survive
                # here or later merges would re-base from seed 0.
                plan_json = "" if plan == FaultPlan() else plan.to_json()
            elif plan_json:
                FaultPlan.from_json(plan_json)
        except (ValueError, TypeError):
            return -1
        self._fault_json = plan_json
        self._fault_pushed = True
        sent = self._broadcast_fault_plan()
        self.journal.emit(
            "live.fault_plan_pushed", nodes=sent, merge=merge
        )
        return sent

    def _fault_targets(self) -> Dict[NodeId, Address]:
        """Every node a plan push should reach.

        The live directory, topped up with the last known address of
        every node that ever registered: a plan that severs
        node->introducer traffic (loss 1.0, an introducer partition)
        empties ``alive_entries()`` within one TTL, and the subsequent
        *heal* must still reach those nodes or the overlay stays faulted
        forever.  Permanently-dead nodes are dropped (``request_death``
        prunes them; re-registrations refresh stale ports), so the map is
        bounded by the overlay's living membership.
        """
        for node, host, port in self.introducer.alive_entries():
            self._known_addresses[node] = (host, port)
        return dict(self._known_addresses)

    def _broadcast_fault_plan(self) -> int:
        update = FaultUpdate(plan=self._fault_json)
        targets = self._fault_targets()
        for address in targets.values():
            self._scraper.send_to(address, update)
        return len(targets)

    def _rebroadcast_fault_plan(self) -> None:
        """Re-send the current plan ahead of each scrape sample.

        A push is one unacked datagram per node, and under the very loss
        regimes plans configure, a node can miss it (or drop off the
        directory past the TTL and re-register later with the stale
        plan).  Nodes treat a repeat of their current plan as a no-op, so
        this periodic re-send converges stragglers without resetting
        anyone's decision streams.
        """
        if not self._fault_pushed:
            return  # boot-time plans travel in the spec; nothing changed
        self._broadcast_fault_plan()

    # ------------------------------------------------------------------
    # Operator control plane (avmon live status/chaos/down)
    # ------------------------------------------------------------------

    @property
    def control_address(self) -> Optional[Address]:
        return self._control.local_address if self._control is not None else None

    def _on_control(self, message, addr: Address) -> None:
        if isinstance(message, OverlayStatusRequest):
            discovered, expected, _ = pair_coverage(
                self.condition, self._last_statuses
            )
            self._control.send_to(
                addr,
                OverlayStatusReply(
                    probe=message.probe,
                    nodes=len(self._handles),
                    alive=self.introducer.alive_count(),
                    elapsed=self.sim.now if self.sim is not None else 0.0,
                    discovered_pairs=discovered,
                    expected_pairs=expected,
                    crashes=len(self._crash_victims),
                ),
            )
        elif isinstance(message, ChaosRequest):
            victims = []
            # Cap at the overlay size and stop when nobody is left alive:
            # the control port is an unauthenticated UDP socket, so a huge
            # kill count must not pin the supervisor's event loop.
            budget = min(max(0, message.kill), len(self._handles))
            for _ in range(budget):
                victim = self._inject_crash(downtime=message.downtime)
                if victim is None:
                    break
                victims.append(victim)
            killed: List[str] = []
            for _ in range(max(0, message.kill_introducers)):
                name = self.introducer.kill_primary()
                if name is None:  # never kill the last surviving replica
                    break
                killed.append(name)
            self._control.send_to(
                addr,
                ChaosReply(
                    victims=tuple(victims),
                    introducers_killed=tuple(killed),
                ),
            )
        elif isinstance(message, OverlayInfoRequest):
            self._control.send_to(
                addr,
                OverlayInfoReply(
                    probe=message.probe,
                    nodes=self.config.nodes,
                    k=self.config.resolved_k(),
                    cvs=self.config.resolved_cvs(),
                    hash_algorithm=self.config.hash_algorithm,
                    introducer_host=self.introducer.address[0],
                    introducer_port=self.introducer.address[1],
                    epoch=self.introducer.epoch,
                ),
            )
        elif isinstance(message, ServeStatusRequest):
            # Only answered when a serving front end is attached: the
            # client's timeout is the "no serving surface" signal.
            if self._serve_service is not None:
                self._control.send_to(
                    addr,
                    self._serve_service.serve_status_reply(message.probe),
                )
        elif isinstance(message, FaultRequest):
            applied = self.push_fault_plan(
                message.plan, merge=message.merge
            )
            self._control.send_to(
                addr, FaultReply(probe=message.probe, applied=applied)
            )
        elif isinstance(message, DownRequest):
            self._control.send_to(addr, DownAck(probe=message.probe))
            self._stop_early.set()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _build_report(
        self,
        statuses: Dict[NodeId, StatusReply],
        final_alive: int,
        elapsed: float,
    ) -> LiveReport:
        return build_live_report(
            self.config,
            self.condition,
            statuses,
            crash_victims=self._crash_victims,
            final_alive=final_alive,
            elapsed=elapsed,
            join_times={
                node: handle.first_spawn
                for node, handle in self._handles.items()
            },
            life_seconds=self.life_seconds,
            memory_series=self._memory_series,
            n_longterm=self._next_id,
        )


def run_live(
    config: LiveConfig,
    *,
    store: Optional[SummaryStore] = None,
    journal=None,
) -> LiveReport:
    """Synchronous front door: deploy, run, summarise, tear down."""
    supervisor = LiveSupervisor(config, store=store, journal=journal)
    return asyncio.run(supervisor.run())


def live_store_filename(config: LiveConfig) -> str:
    """The store-relative filename a live run's summary persists under."""
    return f"{stable_key_hash(live_config_key(config))}.json"


async def _control_call(address: Address, request, timeout: float):
    loop = asyncio.get_running_loop()
    reply = loop.create_future()

    def handler(message, _addr) -> None:
        if not reply.done():
            reply.set_result(message)

    # Bind the wildcard address, not loopback: `--host <remote>` must be
    # able to reach a supervisor on another machine.
    transport = await UdpTransport.create(handler, host="0.0.0.0", port=0)
    try:
        transport.send_to(address, request)
        return await asyncio.wait_for(reply, timeout)
    finally:
        transport.close()


def control_call(address: Address, request, timeout: float = 2.0):
    """Send one operator request to a running supervisor, await the reply.

    The client behind ``avmon live status|chaos|down``.  Raises
    ``TimeoutError`` when nothing answers at *address* (no overlay up, or a
    wrong port).
    """
    return asyncio.run(_control_call(address, request, timeout))
