"""Analytical results of Section 4: performance and optimal AVMON variants.

The coarse-view size ``cvs`` trades memory/bandwidth (M) and computation (C)
against discovery time (D):

* memory and per-period bandwidth are ``O(cvs)``,
* computation per period is ``O(cvs²)``,
* expected discovery time is ``E[D] = 1 / (1 − e^{−cvs²/N})`` periods,
  asymptotically ``N / cvs²``.

Minimising the combined costs yields the paper's three named variants:

==============  =======================  ===========================
Variant         minimises                optimal ``cvs``
==============  =======================  ===========================
Optimal-MD      ``cvs + N/cvs²``         ``(2N)^{1/3}``
Optimal-MDC     ``cvs + cvs² + N/cvs²``  ``≈ N^{1/4}``
Optimal-DC      ``cvs² + N/cvs²``        ``N^{1/4}``
==============  =======================  ===========================

This module provides those closed forms, a numeric cross-check minimiser,
the K-selection and collusion-resilience bounds of Section 4.3, and the
generator for Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = [
    "expected_discovery_time",
    "expected_discovery_time_asymptotic",
    "cost_md",
    "cost_mdc",
    "cost_dc",
    "cvs_optimal_md",
    "cvs_optimal_mdc",
    "cvs_optimal_dc",
    "cvs_log",
    "cvs_paper_default",
    "cvs_for_variant",
    "minimize_cost",
    "choose_k",
    "choose_k_for_min_monitors",
    "prob_node_monitored",
    "prob_all_nodes_monitored",
    "prob_ps_unpolluted",
    "prob_system_unpolluted",
    "expected_ts_size",
    "dead_node_cleanup_periods",
    "join_spread_time",
    "join_duplicate_probability",
    "TableRow",
    "variant_table",
    "VARIANTS",
]

#: Names accepted by :func:`cvs_for_variant`.
VARIANTS = ("md", "mdc", "dc", "log", "paper")


# ---------------------------------------------------------------------------
# Discovery time and cost functions (Section 4.1, 4.2)
# ---------------------------------------------------------------------------

def expected_discovery_time(cvs: float, n: float) -> float:
    """Upper bound on E[D] in protocol periods: ``1/(1 − e^{−cvs²/N})``."""
    if cvs <= 0:
        raise ValueError(f"cvs must be positive, got {cvs}")
    if n <= 0:
        raise ValueError(f"N must be positive, got {n}")
    exponent = -(cvs * cvs) / n
    denominator = 1.0 - math.exp(exponent)
    if denominator <= 0.0:
        # cvs²/N so small that e^{-cvs²/N} rounds to 1; fall back to the
        # asymptotic form, which is exact in that regime.
        return expected_discovery_time_asymptotic(cvs, n)
    return 1.0 / denominator


def expected_discovery_time_asymptotic(cvs: float, n: float) -> float:
    """Asymptotic simplification ``N / cvs²`` (valid for cvs = o(sqrt(N)))."""
    if cvs <= 0:
        raise ValueError(f"cvs must be positive, got {cvs}")
    return n / (cvs * cvs)


def cost_md(cvs: float, n: float) -> float:
    """Optimal-MD objective ``f(cvs) = cvs + N/cvs²`` (memory+bandwidth, D)."""
    return cvs + expected_discovery_time_asymptotic(cvs, n)


def cost_mdc(cvs: float, n: float) -> float:
    """Optimal-MDC objective ``g(cvs) = cvs + cvs² + N/cvs²``."""
    return cvs + cvs * cvs + expected_discovery_time_asymptotic(cvs, n)


def cost_dc(cvs: float, n: float) -> float:
    """Optimal-DC objective ``cvs² + N/cvs²`` (computation and D only)."""
    return cvs * cvs + expected_discovery_time_asymptotic(cvs, n)


def cvs_optimal_md(n: float, *, rounded: bool = True):
    """``cvs`` minimising M and D: the paper's ``(2N)^{1/3}``."""
    if n <= 0:
        raise ValueError(f"N must be positive, got {n}")
    value = (2.0 * n) ** (1.0 / 3.0)
    return max(1, round(value)) if rounded else value


def cvs_optimal_mdc(n: float, *, rounded: bool = True):
    """``cvs`` minimising M, D and C: the paper's ``≈ N^{1/4}``."""
    if n <= 0:
        raise ValueError(f"N must be positive, got {n}")
    value = n ** 0.25
    return max(1, round(value)) if rounded else value


def cvs_optimal_dc(n: float, *, rounded: bool = True):
    """``cvs`` minimising D and C: also ``N^{1/4}`` (Section 4.2)."""
    return cvs_optimal_mdc(n, rounded=rounded)


def cvs_log(n: float, *, rounded: bool = True):
    """The logarithmic design point from Table 1: ``cvs = log2(N)``."""
    if n <= 1:
        raise ValueError(f"N must exceed 1, got {n}")
    value = math.log2(n)
    return max(1, round(value)) if rounded else value


def cvs_paper_default(n: float) -> int:
    """The experimental default of Section 5: ``cvs = 4 · N^{1/4}``.

    The authors set cvs a factor of 4 above Optimal-MDC "for performance
    reasons" (their footnote 7).
    """
    return max(1, round(4.0 * n ** 0.25))


def cvs_for_variant(n: float, variant: str) -> int:
    """Dispatch table over the named variants (see :data:`VARIANTS`)."""
    key = variant.lower()
    if key == "md":
        return cvs_optimal_md(n)
    if key == "mdc":
        return cvs_optimal_mdc(n)
    if key == "dc":
        return cvs_optimal_dc(n)
    if key == "log":
        return cvs_log(n)
    if key == "paper":
        return cvs_paper_default(n)
    raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")


def minimize_cost(
    cost: Callable[[float, float], float],
    n: float,
    *,
    lower: float = 1.0,
    upper: float | None = None,
    tolerance: float = 1e-6,
) -> float:
    """Golden-section minimiser used to cross-check the closed forms.

    All three objectives are strictly unimodal on ``[1, sqrt(N)]`` (their
    second derivatives are positive at the stationary point, as the paper
    notes), so golden-section search converges to the global minimum.
    """
    if upper is None:
        upper = max(lower + 1.0, math.sqrt(n) * 2.0)
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lower, upper
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = cost(c, n), cost(d, n)
    while (b - a) > tolerance:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = cost(c, n)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = cost(d, n)
    return (a + b) / 2.0


# ---------------------------------------------------------------------------
# K selection and collusion resilience (Section 4.3)
# ---------------------------------------------------------------------------

def choose_k(n: float, average_availability: float) -> int:
    """Smallest ``K = c·ln(N)`` ensuring continuous monitoring w.h.p.

    Section 4.3: with system-wide average availability ``a``, choosing ``c``
    such that ``c / ln(1/(1−a)) >= 2`` makes the probability that every node
    has at least one live monitor tend to 1.
    """
    if n <= 1:
        raise ValueError(f"N must exceed 1, got {n}")
    if not 0.0 < average_availability < 1.0:
        raise ValueError(
            f"availability must lie strictly between 0 and 1, got {average_availability}"
        )
    c = 2.0 / math.log(1.0 / (1.0 - average_availability))
    return max(1, math.ceil(c * math.log(n)))


def choose_k_for_min_monitors(n: float, min_monitors: int) -> int:
    """``K = (l+1)·ln(N)`` so every PS has at least ``l`` nodes w.h.p.

    Supports the "l out of K" reporting policy of Section 3.3.
    """
    if n <= 1:
        raise ValueError(f"N must exceed 1, got {n}")
    if min_monitors < 1:
        raise ValueError(f"min_monitors must be >= 1, got {min_monitors}")
    return max(1, math.ceil((min_monitors + 1) * math.log(n)))


def prob_node_monitored(k: int, average_availability: float) -> float:
    """P(at least one of K monitors is up) = ``1 − (1−a)^K``."""
    if k < 0:
        raise ValueError(f"K must be non-negative, got {k}")
    if not 0.0 <= average_availability <= 1.0:
        raise ValueError(f"availability must lie in [0, 1], got {average_availability}")
    return 1.0 - (1.0 - average_availability) ** k


def prob_all_nodes_monitored(n: int, k: int, average_availability: float) -> float:
    """P(every one of N nodes has a live monitor) = ``(1 − (1−a)^K)^N``."""
    if n < 0:
        raise ValueError(f"N must be non-negative, got {n}")
    return prob_node_monitored(k, average_availability) ** n


def prob_ps_unpolluted(n: int, k: int, colluders: int) -> float:
    """P(no colluder of a node lands in its PS) = ``(1 − K/N)^C``."""
    if colluders < 0:
        raise ValueError(f"colluders must be non-negative, got {colluders}")
    if k > n:
        raise ValueError(f"K ({k}) must not exceed N ({n})")
    return (1.0 - k / n) ** colluders


def prob_system_unpolluted(n: int, k: int, collusion_pairs: int) -> float:
    """P(no colludee-colluder pair is in any PS) = ``(1 − K/N)^D``."""
    return prob_ps_unpolluted(n, k, collusion_pairs)


def expected_ts_size(k: int, n_longterm: int, n: int) -> float:
    """Expected ``|TS(x)|`` including garbage: ``K · N_longterm / N``.

    ``N_longterm`` counts every node ever born; dead nodes leave garbage
    entries behind because deaths are silent (Section 4.2, "In practice").
    """
    if n <= 0:
        raise ValueError(f"N must be positive, got {n}")
    if n_longterm < 0:
        raise ValueError(f"N_longterm must be non-negative, got {n_longterm}")
    return k * n_longterm / n


def dead_node_cleanup_periods(cvs: int, n: int) -> float:
    """``T* = cvs·ln(N)``: periods until a dead node leaves all CVs w.h.p.

    From the discussion after Theorem 2: deletion probability in T rounds is
    ``1 − (1 − 1/cvs)^T ≈ 1 − 1/N`` at ``T = cvs·ln(N)``.
    """
    if cvs <= 0:
        raise ValueError(f"cvs must be positive, got {cvs}")
    if n <= 1:
        raise ValueError(f"N must exceed 1, got {n}")
    return cvs * math.log(n)


def join_spread_time(cvs: int) -> float:
    """Expected JOIN dissemination time in periods: ``O(log2(cvs))``."""
    if cvs <= 0:
        raise ValueError(f"cvs must be positive, got {cvs}")
    return math.log2(cvs) if cvs > 1 else 1.0


def join_duplicate_probability(cvs: int, n: int) -> float:
    """Upper bound on P(a node receives a duplicate JOIN) ≈ ``2·cvs/N``."""
    if n <= 0:
        raise ValueError(f"N must be positive, got {n}")
    return min(1.0, 2.0 * cvs / n)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TableRow:
    """One row of Table 1, both asymptotic and instantiated at a given N."""

    approach: str
    memory_bandwidth: str
    discovery_time: str
    computation: str
    cvs_value: int | None
    memory_value: float | None
    discovery_value: float | None
    computation_value: float | None


def _avmon_row(name: str, cvs: int, n: int, asymptotics: Sequence[str]) -> TableRow:
    memory, discovery, computation = asymptotics
    return TableRow(
        approach=name,
        memory_bandwidth=memory,
        discovery_time=discovery,
        computation=computation,
        cvs_value=cvs,
        memory_value=float(cvs),
        discovery_value=expected_discovery_time(cvs, n),
        computation_value=float(cvs * cvs),
    )


def variant_table(n: int) -> List[TableRow]:
    """Regenerate Table 1 for a concrete system size ``N``.

    The Broadcast row reproduces the approach of AVCast [11]: each joining
    node broadcasts to everyone, giving O(N) bandwidth, O(log N) spread time
    and a one-time O(1)-per-receiver computation.
    """
    if n <= 1:
        raise ValueError(f"N must exceed 1, got {n}")
    rows = [
        TableRow(
            approach="Broadcast (from AVCast [11])",
            memory_bandwidth="O(N)",
            discovery_time="O(log N)",
            computation="(one-time only)",
            cvs_value=None,
            memory_value=float(n),
            discovery_value=math.log2(n),
            computation_value=None,
        )
    ]
    generic = cvs_paper_default(n)
    rows.append(
        _avmon_row(
            "AVMON, generic cvs (paper default 4*N^1/4)",
            generic,
            n,
            ("O(cvs)", "1/(1-e^(-cvs^2/N))", "O(cvs^2)"),
        )
    )
    rows.append(
        _avmon_row(
            "AVMON, cvs = log2(N)",
            cvs_log(n),
            n,
            ("O(log N)", "N/(log N)^2", "O((log N)^2)"),
        )
    )
    rows.append(
        _avmon_row(
            "AVMON Optimal-MD, cvs = (2N)^1/3",
            cvs_optimal_md(n),
            n,
            ("O((2N)^1/3)", "(2N)^1/3", "O((2N)^2/3)"),
        )
    )
    rows.append(
        _avmon_row(
            "AVMON Optimal-MDC/-DC, cvs = N^1/4",
            cvs_optimal_mdc(n),
            n,
            ("O(N^1/4)", "sqrt(N)", "O(sqrt(N))"),
        )
    )
    return rows
