"""AVMON core: the paper's primary contribution (Sections 3 and 4).

Public surface of the protocol layer — hashing, the consistency condition,
the monitor relation, coarse views, the node itself, monitoring state,
reporting, availability histories, configuration and the Section-4
optimality analysis.
"""

from .condition import ConsistencyCondition
from .config import AvmonConfig
from .coarse_view import CoarseView
from .hashing import NodeId, available_algorithms, hash_pair, pack_endpoint
from .history import (
    AgedHistory,
    AvailabilityHistory,
    RawHistory,
    RecentWindowHistory,
    make_history,
)
from .monitoring import MonitoringStore, TargetRecord
from .node import AvmonNode, MetricsSink, NodeRuntime, NullMetrics
from .relation import MonitorRelation, count_cross_pairs
from .reporting import (
    ReportVerdict,
    aggregate_availability,
    audit_subject,
    verify_monitor_report,
)
from . import messages, optimal

__all__ = [
    "AgedHistory",
    "AvailabilityHistory",
    "AvmonConfig",
    "AvmonNode",
    "CoarseView",
    "ConsistencyCondition",
    "MetricsSink",
    "MonitorRelation",
    "MonitoringStore",
    "NodeId",
    "NodeRuntime",
    "NullMetrics",
    "RawHistory",
    "RecentWindowHistory",
    "ReportVerdict",
    "TargetRecord",
    "aggregate_availability",
    "audit_subject",
    "available_algorithms",
    "count_cross_pairs",
    "hash_pair",
    "make_history",
    "messages",
    "optimal",
    "pack_endpoint",
    "verify_monitor_report",
]
