"""Consistent pair hashing for the AVMON monitor-selection scheme.

Section 3.1 of the paper defines the monitoring relationship through a
consistent hash function ``H`` applied to the ``<IPaddress, portnumber>``
pairs of two nodes, with its range normalised to the real interval
``[0, 1)``.  The paper's implementation used libSSL's MD5 and considered only
the first 64 bits of the digest (Section 5); we reproduce exactly that, and
additionally offer SHA-1, BLAKE2b and a fast non-cryptographic SplitMix64
mixer for very large simulations.

Node identities in this library are plain integers.  To stay faithful to the
paper's hashing over endpoints, each integer id is packed into a synthetic
6-byte ``<IP, port>`` endpoint (4 bytes of address, 2 bytes of port) before
hashing, so a hashed pair covers 12 bytes of input exactly as in the paper's
back-of-the-envelope computation cost analysis (Section 4.1).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

__all__ = [
    "NodeId",
    "ENDPOINT_BYTES",
    "pack_endpoint",
    "unpack_endpoint",
    "hash_pair",
    "PairHasher",
    "available_algorithms",
]

NodeId = int

#: Number of bytes a packed ``<IP, port>`` endpoint occupies.
ENDPOINT_BYTES = 6

#: Normalisation constant: first 64 bits of a digest divided by 2**64.
_TWO_64 = float(2**64)

# SplitMix64 constants (Steele, Lea, Flood 2014); used by the fast
# non-cryptographic algorithm only.
_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_MIX1 = 0xBF58476D1CE4E5B9
_SM64_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def pack_endpoint(node: NodeId) -> bytes:
    """Pack an integer node id into a synthetic 6-byte ``<IP, port>`` pair.

    The low 16 bits become the port and the next 32 bits the IPv4 address,
    mirroring how a deployment would feed a real endpoint to the hash.  Ids
    must be non-negative and fit in 48 bits.
    """
    if node < 0:
        raise ValueError(f"node id must be non-negative, got {node}")
    if node >= 1 << 48:
        raise ValueError(f"node id must fit in 48 bits, got {node}")
    return node.to_bytes(ENDPOINT_BYTES, "big")


def unpack_endpoint(data: bytes) -> NodeId:
    """Inverse of :func:`pack_endpoint`."""
    if len(data) != ENDPOINT_BYTES:
        raise ValueError(f"endpoint must be {ENDPOINT_BYTES} bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def _digest_to_unit(digest: bytes) -> float:
    """Map the first 64 bits of a digest to ``[0, 1)``."""
    return int.from_bytes(digest[:8], "big") / _TWO_64


def _md5_pair(a: NodeId, b: NodeId) -> float:
    return _digest_to_unit(hashlib.md5(pack_endpoint(a) + pack_endpoint(b)).digest())


def _sha1_pair(a: NodeId, b: NodeId) -> float:
    return _digest_to_unit(hashlib.sha1(pack_endpoint(a) + pack_endpoint(b)).digest())


def _blake2b_pair(a: NodeId, b: NodeId) -> float:
    digest = hashlib.blake2b(
        pack_endpoint(a) + pack_endpoint(b), digest_size=8
    ).digest()
    return _digest_to_unit(digest)


def _splitmix64(value: int) -> int:
    """One round of the SplitMix64 finaliser over a 64-bit value."""
    value = (value + _SM64_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * _SM64_MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _SM64_MIX2) & _MASK64
    return value ^ (value >> 31)


def _splitmix_pair(a: NodeId, b: NodeId) -> float:
    # Two dependent rounds keep the pair ordering significant: H(a,b) and
    # H(b,a) are unrelated values, exactly as for the cryptographic hashes.
    mixed = _splitmix64(_splitmix64(a) ^ ((b << 1) & _MASK64) ^ 0xA5A5A5A5A5A5A5A5)
    return mixed / _TWO_64

_ALGORITHMS: Dict[str, Callable[[NodeId, NodeId], float]] = {
    "md5": _md5_pair,
    "sha1": _sha1_pair,
    "blake2b": _blake2b_pair,
    "splitmix64": _splitmix_pair,
}


def available_algorithms() -> tuple:
    """Names of the registered pair-hash algorithms."""
    return tuple(sorted(_ALGORITHMS))


def hash_pair(a: NodeId, b: NodeId, algorithm: str = "md5") -> float:
    """Return ``H(a, b)`` in ``[0, 1)`` for the ordered node pair ``(a, b)``.

    ``H`` is consistent (a pure function of the two ids), verifiable by any
    third party, and behaves like a uniform random value over ``[0, 1)`` —
    the three properties Section 3.1 requires of the selection scheme.
    """
    try:
        fn = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown hash algorithm {algorithm!r}; "
            f"available: {', '.join(available_algorithms())}"
        ) from None
    return fn(a, b)


class PairHasher:
    """A bound pair-hash function with per-instance evaluation counting.

    The counter lets callers measure how many *actual* hash evaluations an
    algorithm performed, which the analysis in Section 4.1 cares about.
    """

    __slots__ = ("algorithm", "_fn", "evaluations")

    def __init__(self, algorithm: str = "md5") -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown hash algorithm {algorithm!r}; "
                f"available: {', '.join(available_algorithms())}"
            )
        self.algorithm = algorithm
        self._fn = _ALGORITHMS[algorithm]
        self.evaluations = 0

    def __call__(self, a: NodeId, b: NodeId) -> float:
        self.evaluations += 1
        return self._fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairHasher(algorithm={self.algorithm!r}, evaluations={self.evaluations})"
