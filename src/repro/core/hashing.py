"""Consistent pair hashing for the AVMON monitor-selection scheme.

Section 3.1 of the paper defines the monitoring relationship through a
consistent hash function ``H`` applied to the ``<IPaddress, portnumber>``
pairs of two nodes, with its range normalised to the real interval
``[0, 1)``.  The paper's implementation used libSSL's MD5 and considered only
the first 64 bits of the digest (Section 5); we reproduce exactly that, and
additionally offer SHA-1, BLAKE2b and a fast non-cryptographic SplitMix64
mixer for very large simulations.

Node identities in this library are plain integers.  To stay faithful to the
paper's hashing over endpoints, each integer id is packed into a synthetic
6-byte ``<IP, port>`` endpoint (4 bytes of address, 2 bytes of port) before
hashing, so a hashed pair covers 12 bytes of input exactly as in the paper's
back-of-the-envelope computation cost analysis (Section 4.1).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict

__all__ = [
    "NodeId",
    "ENDPOINT_BYTES",
    "pack_endpoint",
    "unpack_endpoint",
    "hash_pair",
    "hash_pair_u64",
    "unit_threshold_bound",
    "PairHasher",
    "available_algorithms",
]

NodeId = int

#: Number of bytes a packed ``<IP, port>`` endpoint occupies.
ENDPOINT_BYTES = 6

#: Normalisation constant: first 64 bits of a digest divided by 2**64.
_TWO_64 = float(2**64)

# SplitMix64 constants (Steele, Lea, Flood 2014); used by the fast
# non-cryptographic algorithm only.
_SM64_GAMMA = 0x9E3779B97F4A7C15
_SM64_MIX1 = 0xBF58476D1CE4E5B9
_SM64_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def pack_endpoint(node: NodeId) -> bytes:
    """Pack an integer node id into a synthetic 6-byte ``<IP, port>`` pair.

    The low 16 bits become the port and the next 32 bits the IPv4 address,
    mirroring how a deployment would feed a real endpoint to the hash.  Ids
    must be non-negative and fit in 48 bits.
    """
    if node < 0:
        raise ValueError(f"node id must be non-negative, got {node}")
    if node >= 1 << 48:
        raise ValueError(f"node id must fit in 48 bits, got {node}")
    return node.to_bytes(ENDPOINT_BYTES, "big")


def unpack_endpoint(data: bytes) -> NodeId:
    """Inverse of :func:`pack_endpoint`."""
    if len(data) != ENDPOINT_BYTES:
        raise ValueError(f"endpoint must be {ENDPOINT_BYTES} bytes, got {len(data)}")
    return int.from_bytes(data, "big")


def _digest_to_unit(digest: bytes) -> float:
    """Map the first 64 bits of a digest to ``[0, 1)``."""
    return int.from_bytes(digest[:8], "big") / _TWO_64


def _md5_pair(a: NodeId, b: NodeId) -> float:
    return _digest_to_unit(hashlib.md5(pack_endpoint(a) + pack_endpoint(b)).digest())


def _sha1_pair(a: NodeId, b: NodeId) -> float:
    return _digest_to_unit(hashlib.sha1(pack_endpoint(a) + pack_endpoint(b)).digest())


def _blake2b_pair(a: NodeId, b: NodeId) -> float:
    digest = hashlib.blake2b(
        pack_endpoint(a) + pack_endpoint(b), digest_size=8
    ).digest()
    return _digest_to_unit(digest)


def _splitmix64(value: int) -> int:
    """One round of the SplitMix64 finaliser over a 64-bit value."""
    value = (value + _SM64_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * _SM64_MIX1) & _MASK64
    value = ((value ^ (value >> 27)) * _SM64_MIX2) & _MASK64
    return value ^ (value >> 31)


def _splitmix_pair(a: NodeId, b: NodeId) -> float:
    # Two dependent rounds keep the pair ordering significant: H(a,b) and
    # H(b,a) are unrelated values, exactly as for the cryptographic hashes.
    mixed = _splitmix64(_splitmix64(a) ^ ((b << 1) & _MASK64) ^ 0xA5A5A5A5A5A5A5A5)
    return mixed / _TWO_64

_ALGORITHMS: Dict[str, Callable[[NodeId, NodeId], float]] = {
    "md5": _md5_pair,
    "sha1": _sha1_pair,
    "blake2b": _blake2b_pair,
    "splitmix64": _splitmix_pair,
}


# -- integer-domain evaluation ----------------------------------------------
#
# The float functions above all take the form ``u / 2**64`` for a 64-bit
# integer ``u`` derived from the pair.  Comparing against a threshold is
# therefore a pure integer comparison once the threshold is converted to the
# exact integer boundary of the float comparison (unit_threshold_bound), so
# the consistency condition's hot path needs no float division at all while
# remaining bit-for-bit equivalent to ``hash_pair(a, b) <= threshold``.

#: Salt mixed into the SplitMix64 pair derivation (see _splitmix_pair).
_SM64_PAIR_SALT = 0xA5A5A5A5A5A5A5A5


def _md5_pair_u64(a: NodeId, b: NodeId) -> int:
    digest = hashlib.md5(pack_endpoint(a) + pack_endpoint(b)).digest()
    return int.from_bytes(digest[:8], "big")


def _sha1_pair_u64(a: NodeId, b: NodeId) -> int:
    digest = hashlib.sha1(pack_endpoint(a) + pack_endpoint(b)).digest()
    return int.from_bytes(digest[:8], "big")


def _blake2b_pair_u64(a: NodeId, b: NodeId) -> int:
    digest = hashlib.blake2b(
        pack_endpoint(a) + pack_endpoint(b), digest_size=8
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _splitmix_pair_u64(a: NodeId, b: NodeId) -> int:
    return _splitmix64(_splitmix64(a) ^ ((b << 1) & _MASK64) ^ _SM64_PAIR_SALT)


_ALGORITHMS_U64: Dict[str, Callable[[NodeId, NodeId], int]] = {
    "md5": _md5_pair_u64,
    "sha1": _sha1_pair_u64,
    "blake2b": _blake2b_pair_u64,
    "splitmix64": _splitmix_pair_u64,
}


def unit_threshold_bound(threshold: float) -> int:
    """Largest 64-bit ``u`` with ``u / 2**64 <= threshold`` (float compare).

    ``u / 2**64`` is the correctly-rounded double of the real quotient —
    exactly the value every float pair hash yields — and is monotone
    non-decreasing in ``u``, so ``hash_pair(a, b) <= threshold`` holds iff
    ``hash_pair_u64(a, b) <= unit_threshold_bound(threshold)``.  Returns -1
    (no value satisfies the comparison) for NaN or negative thresholds.
    """
    if threshold != threshold or threshold < 0.0:  # NaN or negative
        return -1
    if threshold >= 1.0:
        return _MASK64
    lo, hi = 0, _MASK64  # invariant: pred(lo) true (0.0 <= t), pred(hi) false
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mid / 2**64 <= threshold:
            lo = mid
        else:
            hi = mid
    return lo


def hash_pair_u64(a: NodeId, b: NodeId, algorithm: str = "md5") -> int:
    """``H(a, b)`` as the raw 64-bit integer the float value derives from.

    ``hash_pair(a, b, alg) == hash_pair_u64(a, b, alg) / 2**64`` exactly.
    """
    try:
        fn = _ALGORITHMS_U64[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown hash algorithm {algorithm!r}; "
            f"available: {', '.join(available_algorithms())}"
        ) from None
    return fn(a, b)


# -- chunked scan kernels ---------------------------------------------------
#
# One universe scan evaluates the condition for a fixed node against every
# known id (repro.core.relation).  Doing that through per-pair function
# calls costs more in interpreter overhead than in hashing, so each
# algorithm provides two tight-loop kernels — the fixed node as monitor
# (scan for targets) and as target (scan for monitors) — that walk
# preconverted id/endpoint arrays in slices of _SCAN_CHUNK and emit matching
# ids through an ``emit`` callable (typically ``set.add``).  Kernels return
# the number of pairs hashed so callers can maintain evaluation counters.

_SCAN_CHUNK = 4096


def _digest_scan_kernels(new_digest):
    """Kernels for digest algorithms; *new_digest* maps bytes -> hash object.

    The fixed node's endpoint is packed once; candidates come from the
    caller's preconverted ``packed`` array, so the inner loop is one digest,
    one slice and one integer compare per pair.
    """

    def scan_targets(fixed, ids, packed, start, stop, bound, emit):
        prefix = pack_endpoint(fixed)
        from_bytes = int.from_bytes
        count = 0
        for base in range(start, stop, _SCAN_CHUNK):
            limit = min(base + _SCAN_CHUNK, stop)
            for v, pv in zip(ids[base:limit], packed[base:limit]):
                if v == fixed:
                    continue
                count += 1
                if from_bytes(new_digest(prefix + pv).digest()[:8], "big") <= bound:
                    emit(v)
        return count

    def scan_monitors(fixed, ids, packed, start, stop, bound, emit):
        suffix = pack_endpoint(fixed)
        from_bytes = int.from_bytes
        count = 0
        for base in range(start, stop, _SCAN_CHUNK):
            limit = min(base + _SCAN_CHUNK, stop)
            for v, pv in zip(ids[base:limit], packed[base:limit]):
                if v == fixed:
                    continue
                count += 1
                if from_bytes(new_digest(pv + suffix).digest()[:8], "big") <= bound:
                    emit(v)
        return count

    return scan_targets, scan_monitors


def _blake2b_8(data: bytes):
    return hashlib.blake2b(data, digest_size=8)


def _splitmix_scan_targets(fixed, ids, packed, start, stop, bound, emit):
    mixed_fixed = _splitmix64(fixed) ^ _SM64_PAIR_SALT
    count = 0
    for base in range(start, stop, _SCAN_CHUNK):
        for v in ids[base : min(base + _SCAN_CHUNK, stop)]:
            if v == fixed:
                continue
            count += 1
            x = ((mixed_fixed ^ ((v << 1) & _MASK64)) + _SM64_GAMMA) & _MASK64
            x = ((x ^ (x >> 30)) * _SM64_MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _SM64_MIX2) & _MASK64
            if (x ^ (x >> 31)) <= bound:
                emit(v)
    return count


def _splitmix_scan_monitors(fixed, ids, packed, start, stop, bound, emit):
    suffix = ((fixed << 1) & _MASK64) ^ _SM64_PAIR_SALT
    count = 0
    for base in range(start, stop, _SCAN_CHUNK):
        for v in ids[base : min(base + _SCAN_CHUNK, stop)]:
            if v == fixed:
                continue
            count += 1
            x = (v + _SM64_GAMMA) & _MASK64
            x = ((x ^ (x >> 30)) * _SM64_MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _SM64_MIX2) & _MASK64
            x = (x ^ (x >> 31)) ^ suffix
            x = (x + _SM64_GAMMA) & _MASK64
            x = ((x ^ (x >> 30)) * _SM64_MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _SM64_MIX2) & _MASK64
            if (x ^ (x >> 31)) <= bound:
                emit(v)
    return count


_SCAN_KERNELS = {
    "md5": _digest_scan_kernels(hashlib.md5),
    "sha1": _digest_scan_kernels(hashlib.sha1),
    "blake2b": _digest_scan_kernels(_blake2b_8),
    "splitmix64": (_splitmix_scan_targets, _splitmix_scan_monitors),
}


def available_algorithms() -> tuple:
    """Names of the registered pair-hash algorithms."""
    return tuple(sorted(_ALGORITHMS))


def hash_pair(a: NodeId, b: NodeId, algorithm: str = "md5") -> float:
    """Return ``H(a, b)`` in ``[0, 1)`` for the ordered node pair ``(a, b)``.

    ``H`` is consistent (a pure function of the two ids), verifiable by any
    third party, and behaves like a uniform random value over ``[0, 1)`` —
    the three properties Section 3.1 requires of the selection scheme.
    """
    try:
        fn = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown hash algorithm {algorithm!r}; "
            f"available: {', '.join(available_algorithms())}"
        ) from None
    return fn(a, b)


class PairHasher:
    """A bound pair-hash function with per-instance evaluation counting.

    The counter lets callers measure how many *actual* hash evaluations an
    algorithm performed, which the analysis in Section 4.1 cares about.
    Both the float view (``hasher(a, b)``) and the integer view
    (:meth:`pair_u64`, the scan kernels) count into the same total.
    """

    __slots__ = ("algorithm", "_fn", "_fn_u64", "_scan_kernels", "evaluations")

    def __init__(self, algorithm: str = "md5") -> None:
        if algorithm not in _ALGORITHMS:
            raise ValueError(
                f"unknown hash algorithm {algorithm!r}; "
                f"available: {', '.join(available_algorithms())}"
            )
        self.algorithm = algorithm
        self._fn = _ALGORITHMS[algorithm]
        self._fn_u64 = _ALGORITHMS_U64[algorithm]
        self._scan_kernels = _SCAN_KERNELS[algorithm]
        self.evaluations = 0

    def __call__(self, a: NodeId, b: NodeId) -> float:
        self.evaluations += 1
        return self._fn(a, b)

    def pair_u64(self, a: NodeId, b: NodeId) -> int:
        """``H(a, b)`` as the raw 64-bit integer (see :func:`hash_pair_u64`)."""
        self.evaluations += 1
        return self._fn_u64(a, b)

    def scan_targets(self, fixed, ids, packed, start, stop, bound, emit) -> None:
        """Emit every ``v`` in ``ids[start:stop]`` with ``H(fixed, v) <= bound``.

        ``packed`` must hold ``pack_endpoint(ids[i])`` at matching indexes
        (digest algorithms read it; SplitMix64 ignores it).  Self pairs are
        skipped without hashing, exactly as in single-pair evaluation.
        """
        self.evaluations += self._scan_kernels[0](
            fixed, ids, packed, start, stop, bound, emit
        )

    def scan_monitors(self, fixed, ids, packed, start, stop, bound, emit) -> None:
        """Emit every ``v`` in ``ids[start:stop]`` with ``H(v, fixed) <= bound``."""
        self.evaluations += self._scan_kernels[1](
            fixed, ids, packed, start, stop, bound, emit
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairHasher(algorithm={self.algorithm!r}, evaluations={self.evaluations})"
