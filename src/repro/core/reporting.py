"""The "l out of K" monitor-reporting policy with verification (§3.3, §4.3).

When a node ``y`` wants a node ``x``'s availability, it is ``x``'s burden to
report at least ``l <= K`` of its monitors.  ``x`` can choose *which*
monitors to reveal but cannot lie: ``y`` re-checks the consistency condition
``H(m, x) <= K/N`` for every reported monitor and rejects the report
otherwise.  ``y`` then queries each verified monitor for ``x``'s measured
availability and aggregates.

These helpers are deliberately synchronous/pure so that application code,
tests and the collusion-audit example can use them without a simulator; the
message-level path (``ReportRequest``/``HistoryRequest``) lives on
:class:`~repro.core.node.AvmonNode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from .condition import ConsistencyCondition
from .hashing import NodeId

__all__ = [
    "ReportVerdict",
    "verify_monitor_report",
    "aggregate_availability",
    "audit_subject",
]


@dataclass(frozen=True)
class ReportVerdict:
    """Outcome of verifying one monitor report."""

    subject: NodeId
    accepted: Tuple[NodeId, ...]
    rejected: Tuple[NodeId, ...]
    satisfied: bool

    @property
    def all_genuine(self) -> bool:
        return not self.rejected


def verify_monitor_report(
    condition: ConsistencyCondition,
    subject: NodeId,
    reported: Sequence[NodeId],
    min_monitors: int = 1,
) -> ReportVerdict:
    """Third-party verification of a reported monitor list.

    A report *satisfies* the policy when at least *min_monitors* of its
    entries genuinely pass the consistency condition for *subject*.  Fake
    entries (colluders the subject tried to slip in) land in ``rejected``.
    """
    if min_monitors < 1:
        raise ValueError(f"min_monitors must be >= 1, got {min_monitors}")
    accepted = []
    rejected = []
    seen = set()
    for monitor in reported:
        if monitor in seen:
            continue
        seen.add(monitor)
        if condition.holds(monitor, subject):
            accepted.append(monitor)
        else:
            rejected.append(monitor)
    return ReportVerdict(
        subject=subject,
        accepted=tuple(accepted),
        rejected=tuple(rejected),
        satisfied=len(accepted) >= min_monitors,
    )


def aggregate_availability(reports: Iterable[float]) -> float:
    """Combine per-monitor availability reports (plain average).

    The paper leaves aggregation to the application ("We do not consider the
    problem of aggregating node availability histories"); the experiments of
    Figure 20 average over the PS, which is what we do here.
    """
    values = list(reports)
    if not values:
        return 0.0
    return sum(values) / len(values)


def audit_subject(
    condition: ConsistencyCondition,
    subject: NodeId,
    reported: Sequence[NodeId],
    monitor_reports: Dict[NodeId, float],
    min_monitors: int = 1,
) -> Tuple[ReportVerdict, float]:
    """Full audit: verify the monitor list, aggregate verified reports.

    *monitor_reports* maps monitor id -> that monitor's measured
    availability for *subject* (as returned by
    :meth:`AvmonNode.availability_report`).  Only *verified* monitors
    contribute to the aggregate, so unverifiable colluders cannot inflate
    the subject's availability even if the subject names them.
    """
    verdict = verify_monitor_report(condition, subject, reported, min_monitors)
    aggregate = aggregate_availability(
        monitor_reports[m] for m in verdict.accepted if m in monitor_reports
    )
    return verdict, aggregate
