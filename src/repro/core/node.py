"""The AVMON node: join, discovery and monitoring protocols (Section 3).

:class:`AvmonNode` is pure protocol logic.  It talks to the outside world
only through a :class:`NodeRuntime` — a small interface providing the clock,
message transport, timer scheduling, a per-node RNG and a bootstrap oracle —
so the same class runs unchanged under the discrete-event simulator (see
:mod:`repro.net.network`) or any other harness a downstream user provides.

Protocol summary
----------------

* **Joining sub-protocol (Figure 1)**: a (re-)joining node sends a weighted
  ``JOIN`` to one random node and inherits that node's coarse view.  Each
  recipient adds the joiner to its coarse view (decrementing the weight) and
  forwards two half-weight copies to random coarse-view members, building a
  random spanning tree that reaches an expected ``cvs`` nodes in
  ``O(log cvs)`` periods.  A rejoining node uses weight
  ``min(cvs, t_down / T)`` to replace exactly the entries lost while away.

* **Coarse-view maintenance and discovery (Figure 2)**: once per protocol
  period a node (a) pings one random coarse-view entry and prunes it on
  timeout, and (b) fetches the coarse view of another random entry ``w``,
  checks the consistency condition over all ordered pairs of the two views
  (plus ``x`` and ``w`` themselves), sends ``NOTIFY(u, v)`` to both endpoints
  of every match, and reshuffles its view to ``cvs`` random entries from the
  union.

* **Monitoring (Section 3.3)**: ``NOTIFY`` receipts are re-verified against
  the consistency condition before updating ``PS``/``TS``.  Once per
  monitoring period the node pings every target in ``TS`` (modulated by
  forgetful pinging) and records the outcome in its persistent store.

* **PR2 (Section 5.4)**: optionally, a node that has not received a
  monitoring ping for two successive protocol periods forces itself back
  into its coarse-view members' views.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Protocol, Set

from .coarse_view import CoarseView
from .config import AvmonConfig
from .hashing import NodeId
from .messages import (
    CvFetchReply,
    CvFetchRequest,
    CvPing,
    CvPong,
    HistoryReply,
    HistoryRequest,
    Join,
    Message,
    MonitorPing,
    MonitorPong,
    Notify,
    Pr2Refresh,
    ReportReply,
    ReportRequest,
)
from .monitoring import MonitoringStore
from .relation import MonitorRelation, count_cross_pairs

__all__ = ["NodeRuntime", "TimerHandle", "MetricsSink", "NullMetrics", "AvmonNode"]


class TimerHandle(Protocol):
    """Handle returned by :meth:`NodeRuntime.schedule`; supports cancel()."""

    def cancel(self) -> None: ...


class NodeRuntime(Protocol):
    """Environment services an :class:`AvmonNode` needs."""

    rng: random.Random

    def now(self) -> float: ...

    def send(self, dst: NodeId, message: Message) -> None: ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle: ...

    def choose_bootstrap(self, exclude: NodeId) -> Optional[NodeId]:
        """A uniformly random currently-alive node other than *exclude*."""
        ...

    def target_in_system(self, node: NodeId) -> bool:
        """Global oracle used only for the useless-ping *metric* (§5.4)."""
        ...


class MetricsSink(Protocol):
    """Observer hooks the experiment harness wires into every node."""

    def on_monitor_discovered(
        self, target: NodeId, monitor: NodeId, time: float, ps_size: int
    ) -> None: ...

    def on_target_discovered(
        self, monitor: NodeId, target: NodeId, time: float
    ) -> None: ...

    def on_computations(self, node: NodeId, count: int) -> None: ...

    def on_monitor_ping_sent(
        self, monitor: NodeId, target: NodeId, useless: bool
    ) -> None: ...


class NullMetrics:
    """Default sink: ignores everything."""

    def on_monitor_discovered(self, target, monitor, time, ps_size) -> None:
        pass

    def on_target_discovered(self, monitor, target, time) -> None:
        pass

    def on_computations(self, node, count) -> None:
        pass

    def on_monitor_ping_sent(self, monitor, target, useless) -> None:
        pass


class AvmonNode:
    """One AVMON participant; see the module docstring for the protocol."""

    def __init__(
        self,
        node_id: NodeId,
        config: AvmonConfig,
        relation: MonitorRelation,
        runtime: NodeRuntime,
        metrics: Optional[MetricsSink] = None,
    ) -> None:
        self.id = node_id
        self.config = config
        self.relation = relation
        self.runtime = runtime
        self.metrics: MetricsSink = metrics if metrics is not None else NullMetrics()

        self.cv = CoarseView(owner=node_id, capacity=config.cvs)
        #: Discovered pinging set: monitor id -> discovery time.
        self.ps: Dict[NodeId, float] = {}
        #: Discovered target set (ids this node monitors).
        self.ts: Set[NodeId] = set()
        #: Persistent availability records for TS targets (survives rejoins).
        self.store = MonitoringStore()

        #: Total consistency-condition evaluations this node has performed,
        #: charged at protocol fidelity (see repro.core.relation docstring).
        self.computations = 0
        #: When this node last left the system (for the rejoin JOIN weight).
        self.last_leave_time: Optional[float] = None
        #: When this node last received a monitoring ping (PR2 trigger).
        self.last_monitor_ping_received: float = 0.0
        #: Attack flag for Figure 20: report 100% availability for TS nodes.
        self.overreports = False

        self._joined_before = False
        self._seq = 0
        self._pending: Dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Lifecycle: joining, rejoining, leaving
    # ------------------------------------------------------------------

    def begin_join(self) -> None:
        """Execute Figure 1 for this node (first join or rejoin)."""
        now = self.runtime.now()
        self.last_monitor_ping_received = now
        bootstrap = self.runtime.choose_bootstrap(exclude=self.id)
        if self._joined_before:
            weight = self._rejoin_weight(now)
        else:
            weight = self.config.cvs
            self._joined_before = True
        if bootstrap is None:
            # First node in the system: nobody to announce to.
            return
        if weight > 0:
            self.runtime.send(bootstrap, Join(sender=self.id, origin=self.id, weight=weight))
        # "Inherit view from this random node": fetch its coarse view and
        # adopt it (no pair-checking during inheritance).
        seq = self._next_seq()
        self._pending[seq] = {"kind": "fetch", "peer": bootstrap, "inherit": True}
        self.runtime.send(bootstrap, CvFetchRequest(sender=self.id, seq=seq))
        self._arm_timeout(seq)

    def _rejoin_weight(self, now: float) -> int:
        if self.last_leave_time is None:
            return self.config.cvs
        periods_down = int(
            (now - self.last_leave_time) / self.config.protocol_period
        )
        return min(self.config.cvs, periods_down)

    def on_leave(self, now: float) -> None:
        """Called by the host when this node leaves or fails.

        Coarse view, PS/TS and the store stay in persistent storage; only
        in-flight request state is dropped.
        """
        self.last_leave_time = now
        self._pending.clear()

    # ------------------------------------------------------------------
    # Periodic activity
    # ------------------------------------------------------------------

    def protocol_tick(self) -> None:
        """One round of the coarse-membership protocol (Figure 2)."""
        rng = self.runtime.rng
        ping_target = self.cv.random_choice(rng)
        if ping_target is not None:
            seq = self._next_seq()
            self._pending[seq] = {"kind": "cvping", "peer": ping_target}
            self.runtime.send(ping_target, CvPing(sender=self.id, seq=seq))
            self._arm_timeout(seq)

        fetch_target = self.cv.random_choice(rng)
        if fetch_target is not None:
            seq = self._next_seq()
            self._pending[seq] = {"kind": "fetch", "peer": fetch_target, "inherit": False}
            self.runtime.send(fetch_target, CvFetchRequest(sender=self.id, seq=seq))
            self._arm_timeout(seq)

        if self.config.enable_pr2:
            self._maybe_pr2_refresh()

    def monitoring_tick(self) -> None:
        """One round of monitoring pings to every TS target (Section 3.3)."""
        now = self.runtime.now()
        rng = self.runtime.rng
        config = self.config
        for target in list(self.ts):
            if not self.store.should_ping(
                target,
                now,
                config.forgetful_tau,
                config.forgetful_c,
                rng,
                enabled=config.enable_forgetful,
            ):
                continue
            record = self.store.record_for(target)
            record.record_sent()
            useless = not self.runtime.target_in_system(target)
            if useless:
                self.store.useless_pings += 1
            self.metrics.on_monitor_ping_sent(self.id, target, useless)
            seq = self._next_seq()
            self._pending[seq] = {"kind": "mping", "peer": target}
            self.runtime.send(target, MonitorPing(sender=self.id, seq=seq))
            self._arm_timeout(seq)

    def _maybe_pr2_refresh(self) -> None:
        now = self.runtime.now()
        silent_for = now - self.last_monitor_ping_received
        if silent_for < 2.0 * self.config.protocol_period:
            return
        for neighbour in self.cv.entries():
            self.runtime.send(neighbour, Pr2Refresh(sender=self.id))
        # Reset the trigger so the refresh is not spammed every period.
        self.last_monitor_ping_received = now

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Dispatch one delivered message (called by the host while alive)."""
        if isinstance(message, Join):
            self._handle_join(message)
        elif isinstance(message, CvPing):
            self.runtime.send(message.sender, CvPong(sender=self.id, seq=message.seq))
        elif isinstance(message, CvPong):
            self._pending.pop(message.seq, None)
        elif isinstance(message, CvFetchRequest):
            self.runtime.send(
                message.sender,
                CvFetchReply(sender=self.id, seq=message.seq, view=self.cv.entries()),
            )
        elif isinstance(message, CvFetchReply):
            self._handle_fetch_reply(message)
        elif isinstance(message, Notify):
            self._accept_notify(message.monitor, message.target)
        elif isinstance(message, MonitorPing):
            self.last_monitor_ping_received = self.runtime.now()
            self.runtime.send(
                message.sender, MonitorPong(sender=self.id, seq=message.seq)
            )
        elif isinstance(message, MonitorPong):
            info = self._pending.pop(message.seq, None)
            if info is not None and info["kind"] == "mping":
                self.store.record_for(info["peer"]).record_reply(self.runtime.now())
        elif isinstance(message, Pr2Refresh):
            self.cv.add(message.sender, self.runtime.rng)
        elif isinstance(message, ReportRequest):
            self._handle_report_request(message)
        elif isinstance(message, HistoryRequest):
            self._handle_history_request(message)
        # ReportReply / HistoryReply are consumed by application-level
        # callers (see repro.core.reporting), not by the protocol node.

    # -- joining ---------------------------------------------------------

    def _handle_join(self, message: Join) -> None:
        weight = message.weight
        if weight <= 0:
            return
        origin = message.origin
        if origin != self.id and origin not in self.cv:
            self.cv.add(origin, self.runtime.rng)
            weight -= 1
        if weight <= 0:
            return
        low, high = weight // 2, weight - weight // 2
        rng = self.runtime.rng
        for part in (low, high):
            if part <= 0:
                continue
            next_hop = self.cv.random_choice_excluding(rng, excluded=origin)
            if next_hop is None:
                continue
            self.runtime.send(next_hop, Join(sender=self.id, origin=origin, weight=part))

    # -- coarse-view exchange ---------------------------------------------

    def _handle_fetch_reply(self, message: CvFetchReply) -> None:
        info = self._pending.pop(message.seq, None)
        if info is None or info["kind"] != "fetch":
            return
        peer = info["peer"]
        fetched = set(message.view)
        if info["inherit"]:
            self.cv.reshuffle(fetched | {peer}, self.runtime.rng)
            return
        view_a = self.cv.as_set() | {self.id, peer}
        view_b = fetched | {self.id, peer}
        checked = count_cross_pairs(view_a, view_b)
        self.computations += checked
        self.metrics.on_computations(self.id, checked)
        for monitor, target in self.relation.find_matches(view_a, view_b):
            self._dispatch_notify(monitor, target)
        self.cv.reshuffle(fetched | {peer}, self.runtime.rng)

    def _dispatch_notify(self, monitor: NodeId, target: NodeId) -> None:
        for endpoint in (monitor, target):
            if endpoint == self.id:
                self._accept_notify(monitor, target)
            else:
                self.runtime.send(
                    endpoint, Notify(sender=self.id, monitor=monitor, target=target)
                )

    def _accept_notify(self, monitor: NodeId, target: NodeId) -> None:
        """Apply a NOTIFY at this node, re-verifying the condition (§3.3)."""
        condition = self.relation.condition
        now = self.runtime.now()
        if target == self.id and monitor != self.id and monitor not in self.ps:
            self.computations += 1
            if condition.holds(monitor, self.id):
                self.ps[monitor] = now
                self.metrics.on_monitor_discovered(self.id, monitor, now, len(self.ps))
        if monitor == self.id and target != self.id and target not in self.ts:
            self.computations += 1
            if condition.holds(self.id, target):
                self.ts.add(target)
                self.store.record_for(target)
                self.metrics.on_target_discovered(self.id, target, now)

    # -- application-facing requests ----------------------------------------

    def _handle_report_request(self, message: ReportRequest) -> None:
        monitors = self.report_monitors(message.min_monitors)
        self.runtime.send(
            message.sender,
            ReportReply(sender=self.id, subject=self.id, monitors=monitors),
        )

    def report_monitors(self, min_monitors: int) -> tuple:
        """Select ``l`` discovered monitors to report (cannot be forged).

        The node may pick *any* of its PS — callers verify each against the
        consistency condition, so only genuine monitors pass.
        """
        known = list(self.ps)
        if len(known) <= min_monitors:
            return tuple(known)
        return tuple(self.runtime.rng.sample(known, min_monitors))

    def _handle_history_request(self, message: HistoryRequest) -> None:
        self.runtime.send(
            message.sender,
            HistoryReply(
                sender=self.id,
                subject=message.subject,
                availability=self.availability_report(message.subject),
            ),
        )

    def availability_report(self, target: NodeId) -> float:
        """This monitor's measured availability of *target*.

        An overreporting colluder (Figure 20's attack) returns 100 % for
        every node it monitors.
        """
        if self.overreports:
            return 1.0
        return self.store.estimated_availability(target)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """The paper's memory metric: ``|CV| + |PS| + |TS|``."""
        return len(self.cv) + len(self.ps) + len(self.ts)

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _arm_timeout(self, seq: int) -> None:
        self.runtime.schedule(
            self.config.ping_timeout, lambda: self._on_timeout(seq)
        )

    def _on_timeout(self, seq: int) -> None:
        info = self._pending.pop(seq, None)
        if info is None:
            return
        kind = info["kind"]
        if kind == "cvping":
            self.cv.remove(info["peer"])
        elif kind == "mping":
            self.store.record_for(info["peer"]).record_timeout(self.runtime.now())
        # A timed-out fetch is simply skipped for this round (Figure 2 picks
        # a fresh partner next period).

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmonNode(id={self.id}, cv={len(self.cv)}, ps={len(self.ps)}, "
            f"ts={len(self.ts)})"
        )
