"""The AVMON node: join, discovery and monitoring protocols (Section 3).

:class:`AvmonNode` is pure protocol logic.  It talks to the outside world
only through a :class:`NodeRuntime` — a small interface providing the clock,
message transport, timer scheduling, a per-node RNG and a bootstrap oracle —
so the same class runs unchanged under the discrete-event simulator (see
:mod:`repro.net.network`) or any other harness a downstream user provides.

Protocol summary
----------------

* **Joining sub-protocol (Figure 1)**: a (re-)joining node sends a weighted
  ``JOIN`` to one random node and inherits that node's coarse view.  Each
  recipient adds the joiner to its coarse view (decrementing the weight) and
  forwards two half-weight copies to random coarse-view members, building a
  random spanning tree that reaches an expected ``cvs`` nodes in
  ``O(log cvs)`` periods.  A rejoining node uses weight
  ``min(cvs, t_down / T)`` to replace exactly the entries lost while away.

* **Coarse-view maintenance and discovery (Figure 2)**: once per protocol
  period a node (a) pings one random coarse-view entry and prunes it on
  timeout, and (b) fetches the coarse view of another random entry ``w``,
  checks the consistency condition over all ordered pairs of the two views
  (plus ``x`` and ``w`` themselves), sends ``NOTIFY(u, v)`` to both endpoints
  of every match, and reshuffles its view to ``cvs`` random entries from the
  union.

* **Monitoring (Section 3.3)**: ``NOTIFY`` receipts are re-verified against
  the consistency condition before updating ``PS``/``TS``.  Once per
  monitoring period the node pings every target in ``TS`` (modulated by
  forgetful pinging) and records the outcome in its persistent store.

* **PR2 (Section 5.4)**: optionally, a node that has not received a
  monitoring ping for two successive protocol periods forces itself back
  into its coarse-view members' views.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Protocol, Set, Tuple

from .coarse_view import CoarseView
from .config import AvmonConfig
from .hashing import NodeId
from .messages import (
    CvFetchReply,
    CvFetchRequest,
    CvPing,
    CvPong,
    HistoryReply,
    HistoryRequest,
    Join,
    Message,
    MonitorPing,
    MonitorPong,
    Notify,
    Pr2Refresh,
    ReportReply,
    ReportRequest,
)
from .monitoring import MonitoringStore
from .relation import MonitorRelation, count_cross_pairs

__all__ = ["NodeRuntime", "TimerHandle", "MetricsSink", "NullMetrics", "AvmonNode"]


class TimerHandle(Protocol):
    """Handle returned by :meth:`NodeRuntime.schedule`; supports cancel()."""

    def cancel(self) -> None: ...


class NodeRuntime(Protocol):
    """Environment services an :class:`AvmonNode` needs."""

    rng: random.Random

    def now(self) -> float: ...

    def send(self, dst: NodeId, message: Message) -> None: ...

    def schedule(
        self, delay: float, callback: Callable[..., None], *args
    ) -> TimerHandle: ...

    # Runtimes may additionally provide ``schedule_call(delay, fn, *args)``,
    # a fire-and-forget variant that returns no handle; the node uses it for
    # its (never cancelled) ping timeouts when available and falls back to
    # ``schedule`` otherwise, so implementing it is optional.

    def choose_bootstrap(self, exclude: NodeId) -> Optional[NodeId]:
        """A uniformly random currently-alive node other than *exclude*."""
        ...

    def target_in_system(self, node: NodeId) -> bool:
        """Global oracle used only for the useless-ping *metric* (§5.4)."""
        ...


class MetricsSink(Protocol):
    """Observer hooks the experiment harness wires into every node."""

    def on_monitor_discovered(
        self, target: NodeId, monitor: NodeId, time: float, ps_size: int
    ) -> None: ...

    def on_target_discovered(
        self, monitor: NodeId, target: NodeId, time: float
    ) -> None: ...

    def on_computations(self, node: NodeId, count: int) -> None: ...

    def on_monitor_ping_sent(
        self, monitor: NodeId, target: NodeId, useless: bool
    ) -> None: ...


class NullMetrics:
    """Default sink: ignores everything."""

    def on_monitor_discovered(self, target, monitor, time, ps_size) -> None:
        pass

    def on_target_discovered(self, monitor, target, time) -> None:
        pass

    def on_computations(self, node, count) -> None:
        pass

    def on_monitor_ping_sent(self, monitor, target, useless) -> None:
        pass


class AvmonNode:
    """One AVMON participant; see the module docstring for the protocol."""

    def __init__(
        self,
        node_id: NodeId,
        config: AvmonConfig,
        relation: MonitorRelation,
        runtime: NodeRuntime,
        metrics: Optional[MetricsSink] = None,
    ) -> None:
        self.id = node_id
        self.config = config
        self.relation = relation
        self.runtime = runtime
        self.metrics: MetricsSink = metrics if metrics is not None else NullMetrics()

        self.cv = CoarseView(owner=node_id, capacity=config.cvs)
        #: Discovered pinging set: monitor id -> discovery time.
        self.ps: Dict[NodeId, float] = {}
        #: Discovered target set (ids this node monitors).
        self.ts: Set[NodeId] = set()
        #: Persistent availability records for TS targets (survives rejoins).
        self.store = MonitoringStore()

        #: Total consistency-condition evaluations this node has performed,
        #: charged at protocol fidelity (see repro.core.relation docstring).
        self.computations = 0
        #: When this node last left the system (for the rejoin JOIN weight).
        self.last_leave_time: Optional[float] = None
        #: When this node last received a monitoring ping (PR2 trigger).
        self.last_monitor_ping_received: float = 0.0
        #: Attack flag for Figure 20: report 100% availability for TS nodes.
        self.overreports = False

        self._joined_before = False
        self._seq = 0
        #: In-flight request state: seq -> (kind, peer, inherit).
        self._pending: Dict[int, Tuple[str, NodeId, bool]] = {}
        # Timeouts are never cancelled, so use the runtime's fire-and-forget
        # scheduling lane when it offers one (see NodeRuntime).
        schedule_call = getattr(runtime, "schedule_call", None)
        self._schedule_call = schedule_call if schedule_call is not None else runtime.schedule

    # ------------------------------------------------------------------
    # Lifecycle: joining, rejoining, leaving
    # ------------------------------------------------------------------

    def begin_join(self) -> None:
        """Execute Figure 1 for this node (first join or rejoin)."""
        now = self.runtime.now()
        self.last_monitor_ping_received = now
        bootstrap = self.runtime.choose_bootstrap(exclude=self.id)
        if self._joined_before:
            weight = self._rejoin_weight(now)
        else:
            weight = self.config.cvs
            self._joined_before = True
        if bootstrap is None:
            # First node in the system: nobody to announce to.
            return
        if weight > 0:
            self.runtime.send(bootstrap, Join(self.id, self.id, weight))
        # "Inherit view from this random node": fetch its coarse view and
        # adopt it (no pair-checking during inheritance).
        seq = self._next_seq()
        self._pending[seq] = ("fetch", bootstrap, True)
        self.runtime.send(bootstrap, CvFetchRequest(self.id, seq))
        self._arm_timeout(seq)

    def _rejoin_weight(self, now: float) -> int:
        if self.last_leave_time is None:
            return self.config.cvs
        periods_down = int(
            (now - self.last_leave_time) / self.config.protocol_period
        )
        return min(self.config.cvs, periods_down)

    def on_leave(self, now: float) -> None:
        """Called by the host when this node leaves or fails.

        Coarse view, PS/TS and the store stay in persistent storage; only
        in-flight request state is dropped.
        """
        self.last_leave_time = now
        self._pending.clear()

    # ------------------------------------------------------------------
    # Periodic activity
    # ------------------------------------------------------------------

    def protocol_tick(self) -> None:
        """One round of the coarse-membership protocol (Figure 2)."""
        rng = self.runtime.rng
        ping_target = self.cv.random_choice(rng)
        if ping_target is not None:
            seq = self._next_seq()
            self._pending[seq] = ("cvping", ping_target, False)
            self.runtime.send(ping_target, CvPing(self.id, seq))
            self._arm_timeout(seq)

        fetch_target = self.cv.random_choice(rng)
        if fetch_target is not None:
            seq = self._next_seq()
            self._pending[seq] = ("fetch", fetch_target, False)
            self.runtime.send(fetch_target, CvFetchRequest(self.id, seq))
            self._arm_timeout(seq)

        if self.config.enable_pr2:
            self._maybe_pr2_refresh()

    def monitoring_tick(self) -> None:
        """One round of monitoring pings to every TS target (Section 3.3).

        The per-target services are hoisted into locals: with |TS| ≈ K this
        loop runs K times per node per period for the entire simulation.
        """
        runtime = self.runtime
        config = self.config
        store = self.store
        now = runtime.now()
        rng = runtime.rng
        record_for = store.record_for
        records_get = store._records.get
        target_in_system = runtime.target_in_system
        on_ping_sent = self.metrics.on_monitor_ping_sent
        send = runtime.send
        schedule = self._schedule_call
        on_timeout = self._on_timeout
        pending = self._pending
        my_id = self.id
        tau = config.forgetful_tau
        c = config.forgetful_c
        forgetful = config.enable_forgetful
        timeout = config.ping_timeout
        seq = self._seq
        for target in list(self.ts):
            if forgetful:
                # Inline of MonitoringStore.should_ping: the overwhelmingly
                # common cases — target never seen up, or currently
                # responsive — ping unconditionally and draw no randomness,
                # exactly as the store method would.
                record = records_get(target)
                if record is None:
                    record = record_for(target)
                if (
                    record.pings_answered != 0
                    and record._down_since is not None
                    and not record.should_ping(now, tau, c, rng)
                ):
                    continue
            else:
                record = record_for(target)
            record.pings_sent += 1  # inline record_sent()
            useless = not target_in_system(target)
            if useless:
                store.useless_pings += 1
            on_ping_sent(my_id, target, useless)
            seq += 1
            pending[seq] = ("mping", target, False)
            send(target, MonitorPing(my_id, seq))
            schedule(timeout, on_timeout, seq)
        self._seq = seq

    def _maybe_pr2_refresh(self) -> None:
        now = self.runtime.now()
        silent_for = now - self.last_monitor_ping_received
        if silent_for < 2.0 * self.config.protocol_period:
            return
        for neighbour in self.cv.entries():
            self.runtime.send(neighbour, Pr2Refresh(sender=self.id))
        # Reset the trigger so the refresh is not spammed every period.
        self.last_monitor_ping_received = now

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle_message(self, message: Message) -> None:
        """Dispatch one delivered message (called by the host while alive).

        The high-frequency message kinds are matched by exact type and
        handled inline, most frequent first — NOTIFY floods alone are more
        than half of all delivered traffic, and at N=10,000 the handler
        frame plus a dispatch lookup per message costs more than the
        handlers themselves.  Each inline block mirrors the standalone
        ``_handle_*`` method of the same kind (kept as the readable
        reference and for the dispatch fallback); everything else — rare
        kinds, subclasses, unknown types — goes through the type-keyed
        ``_DISPATCH`` table below.
        """
        cls = message.__class__
        if cls is Notify:
            self._accept_notify(message.monitor, message.target)
            return
        if cls is MonitorPong:
            info = self._pending.pop(message.seq, None)
            if info is not None and info[0] == "mping":
                self.store.record_for(info[1]).record_reply(self.runtime.now())
            return
        if cls is MonitorPing:
            self.last_monitor_ping_received = self.runtime.now()
            self.runtime.send(message.sender, MonitorPong(self.id, message.seq))
            return
        if cls is CvPong:
            self._pending.pop(message.seq, None)
            return
        if cls is CvPing:
            self.runtime.send(message.sender, CvPong(self.id, message.seq))
            return
        if cls is CvFetchReply:
            self._handle_fetch_reply(message)
            return
        handler = _DISPATCH.get(cls)
        if handler is None:
            handler = _resolve_handler(cls)
        handler(self, message)

    def _handle_cv_ping(self, message: CvPing) -> None:
        self.runtime.send(message.sender, CvPong(sender=self.id, seq=message.seq))

    def _handle_cv_pong(self, message: CvPong) -> None:
        self._pending.pop(message.seq, None)

    def _handle_fetch_request(self, message: CvFetchRequest) -> None:
        self.runtime.send(
            message.sender,
            CvFetchReply(sender=self.id, seq=message.seq, view=self.cv.entries()),
        )

    def _handle_notify(self, message: Notify) -> None:
        self._accept_notify(message.monitor, message.target)

    def _handle_monitor_ping(self, message: MonitorPing) -> None:
        self.last_monitor_ping_received = self.runtime.now()
        self.runtime.send(message.sender, MonitorPong(sender=self.id, seq=message.seq))

    def _handle_monitor_pong(self, message: MonitorPong) -> None:
        info = self._pending.pop(message.seq, None)
        if info is not None and info[0] == "mping":
            self.store.record_for(info[1]).record_reply(self.runtime.now())

    def _handle_pr2_refresh(self, message: Pr2Refresh) -> None:
        self.cv.add(message.sender, self.runtime.rng)

    def _ignore_message(self, message: Message) -> None:
        pass

    # -- joining ---------------------------------------------------------

    def _handle_join(self, message: Join) -> None:
        weight = message.weight
        if weight <= 0:
            return
        origin = message.origin
        if origin != self.id and origin not in self.cv:
            self.cv.add(origin, self.runtime.rng)
            weight -= 1
        if weight <= 0:
            return
        low, high = weight // 2, weight - weight // 2
        rng = self.runtime.rng
        for part in (low, high):
            if part <= 0:
                continue
            next_hop = self.cv.random_choice_excluding(rng, excluded=origin)
            if next_hop is None:
                continue
            self.runtime.send(next_hop, Join(self.id, origin, part))

    # -- coarse-view exchange ---------------------------------------------

    def _handle_fetch_reply(self, message: CvFetchReply) -> None:
        info = self._pending.pop(message.seq, None)
        if info is None or info[0] != "fetch":
            return
        _, peer, inherit = info
        fetched = set(message.view)
        if inherit:
            self.cv.reshuffle(fetched | {peer}, self.runtime.rng)
            return
        view_a = self.cv.as_set() | {self.id, peer}
        view_b = fetched | {self.id, peer}
        checked = count_cross_pairs(view_a, view_b)
        self.computations += checked
        self.metrics.on_computations(self.id, checked)
        for monitor, target in self.relation.find_matches(view_a, view_b):
            self._dispatch_notify(monitor, target)
        self.cv.reshuffle(fetched | {peer}, self.runtime.rng)

    def _dispatch_notify(self, monitor: NodeId, target: NodeId) -> None:
        # Both endpoints receive the same (immutable) Notify, built at most
        # once; matches always have monitor != target, so at most one
        # endpoint is this node itself.
        my_id = self.id
        notify = None
        if monitor == my_id:
            self._accept_notify(monitor, target)
        else:
            notify = Notify(my_id, monitor, target)
            self.runtime.send(monitor, notify)
        if target == my_id:
            self._accept_notify(monitor, target)
        else:
            if notify is None:
                notify = Notify(my_id, monitor, target)
            self.runtime.send(target, notify)

    def _accept_notify(self, monitor: NodeId, target: NodeId) -> None:
        """Apply a NOTIFY at this node, re-verifying the condition (§3.3).

        Most notifies are rediscoveries of pairs already in PS/TS (the
        protocol re-finds matches every period), so the membership checks
        come first and the clock is only read on an actual discovery.
        """
        my_id = self.id
        if target == my_id and monitor != my_id and monitor not in self.ps:
            self.computations += 1
            if self.relation.condition.holds(monitor, my_id):
                now = self.runtime.now()
                self.ps[monitor] = now
                self.metrics.on_monitor_discovered(my_id, monitor, now, len(self.ps))
        if monitor == my_id and target != my_id and target not in self.ts:
            self.computations += 1
            if self.relation.condition.holds(my_id, target):
                self.ts.add(target)
                self.store.record_for(target)
                self.metrics.on_target_discovered(my_id, target, self.runtime.now())

    # -- application-facing requests ----------------------------------------

    def _handle_report_request(self, message: ReportRequest) -> None:
        monitors = self.report_monitors(message.min_monitors)
        self.runtime.send(
            message.sender,
            ReportReply(sender=self.id, subject=self.id, monitors=monitors),
        )

    def report_monitors(self, min_monitors: int) -> tuple:
        """Select ``l`` discovered monitors to report (cannot be forged).

        The node may pick *any* of its PS — callers verify each against the
        consistency condition, so only genuine monitors pass.
        """
        known = list(self.ps)
        if len(known) <= min_monitors:
            return tuple(known)
        return tuple(self.runtime.rng.sample(known, min_monitors))

    def _handle_history_request(self, message: HistoryRequest) -> None:
        self.runtime.send(
            message.sender,
            HistoryReply(
                sender=self.id,
                subject=message.subject,
                availability=self.availability_report(message.subject),
            ),
        )

    def availability_report(self, target: NodeId) -> float:
        """This monitor's measured availability of *target*.

        An overreporting colluder (Figure 20's attack) returns 100 % for
        every node it monitors.
        """
        if self.overreports:
            return 1.0
        return self.store.estimated_availability(target)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """The paper's memory metric: ``|CV| + |PS| + |TS|``."""
        return len(self.cv) + len(self.ps) + len(self.ts)

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _arm_timeout(self, seq: int) -> None:
        self._schedule_call(self.config.ping_timeout, self._on_timeout, seq)

    def _on_timeout(self, seq: int) -> None:
        info = self._pending.pop(seq, None)
        if info is None:
            return
        kind = info[0]
        if kind == "cvping":
            self.cv.remove(info[1])
        elif kind == "mping":
            self.store.record_for(info[1]).record_timeout(self.runtime.now())
        # A timed-out fetch is simply skipped for this round (Figure 2 picks
        # a fresh partner next period).

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AvmonNode(id={self.id}, cv={len(self.cv)}, ps={len(self.ps)}, "
            f"ts={len(self.ts)})"
        )


#: Exact-type message dispatch for :meth:`AvmonNode.handle_message`.
_DISPATCH: Dict[type, Callable[[AvmonNode, Message], None]] = {
    Join: AvmonNode._handle_join,
    CvPing: AvmonNode._handle_cv_ping,
    CvPong: AvmonNode._handle_cv_pong,
    CvFetchRequest: AvmonNode._handle_fetch_request,
    CvFetchReply: AvmonNode._handle_fetch_reply,
    Notify: AvmonNode._handle_notify,
    MonitorPing: AvmonNode._handle_monitor_ping,
    MonitorPong: AvmonNode._handle_monitor_pong,
    Pr2Refresh: AvmonNode._handle_pr2_refresh,
    ReportRequest: AvmonNode._handle_report_request,
    HistoryRequest: AvmonNode._handle_history_request,
}


def _resolve_handler(message_type: type) -> Callable[[AvmonNode, Message], None]:
    """Slow-path resolution for subclasses and unknown message types.

    The result is memoised into ``_DISPATCH`` so each concrete type pays the
    isinstance scan at most once per process.
    """
    for registered, handler in list(_DISPATCH.items()):
        if issubclass(message_type, registered):
            _DISPATCH[message_type] = handler
            return handler
    _DISPATCH[message_type] = AvmonNode._ignore_message
    return AvmonNode._ignore_message
