"""Monitoring-layer state: per-target records and forgetful pinging (§3.3).

A monitor keeps, for every node in its target set ``TS``, a persistent
:class:`TargetRecord` that tracks ping outcomes, the target's last observed
session length, and how long the target has currently been unresponsive.
The record implements the *forgetful pinging* optimisation: once a target
has been unresponsive for longer than τ, it is pinged only with probability

    ``c · ts(u) / (ts(u) + t)``

per monitoring period, where ``ts(u)`` is the last measured up-session
length and ``t`` the current downtime.  On average a dead-until-rejoin node
still receives an expected ``c`` pings from each monitor between two
successive joins, but the bandwidth wasted on nodes that never return drops
by an order of magnitude (Figure 18).

Records live in a :class:`MonitoringStore`, which models the persistent
storage the system model grants each node ("Nodes are assumed to have
persistent storage that can be retrieved after a failure or a rejoin").
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .hashing import NodeId
from .history import AvailabilityHistory, RawHistory

__all__ = ["TargetRecord", "MonitoringStore"]


class TargetRecord:
    """Availability bookkeeping for one TS target at one monitor."""

    __slots__ = (
        "target",
        "pings_sent",
        "pings_answered",
        "history",
        "_session_start",
        "_last_response",
        "_down_since",
        "last_session_length",
    )

    def __init__(self, target: NodeId, history: Optional[AvailabilityHistory] = None):
        self.target = target
        self.pings_sent = 0
        self.pings_answered = 0
        self.history = history if history is not None else RawHistory()
        # Start of the up-session currently being observed (None if the
        # target has not answered since the last gap).
        self._session_start: Optional[float] = None
        self._last_response: Optional[float] = None
        # Time of the first unanswered ping after the last response.
        self._down_since: Optional[float] = None
        #: ``ts(u)`` in the paper: length of the last fully observed session.
        self.last_session_length: float = 0.0

    # -- ping outcomes ---------------------------------------------------------

    def record_sent(self) -> None:
        self.pings_sent += 1

    def record_reply(self, now: float) -> None:
        """The target answered a monitoring ping at *now*."""
        self.pings_answered += 1
        self.history.record(now, True)
        if self._session_start is None:
            self._session_start = now
        self._last_response = now
        self._down_since = None

    def record_timeout(self, now: float) -> None:
        """A monitoring ping to the target went unanswered."""
        self.history.record(now, False)
        if self._session_start is not None and self._last_response is not None:
            # The observed session just ended; remember its length.
            self.last_session_length = max(
                0.0, self._last_response - self._session_start
            )
        self._session_start = None
        if self._down_since is None:
            self._down_since = now

    # -- state queries -----------------------------------------------------------

    def downtime(self, now: float) -> float:
        """Seconds the target has currently been unresponsive (0 if up)."""
        if self._down_since is None:
            return 0.0
        return max(0.0, now - self._down_since)

    def is_responsive(self) -> bool:
        return self._down_since is None and self._last_response is not None

    def estimated_availability(self) -> float:
        """The paper's §5.4 estimator: answered pings / sent pings."""
        if self.pings_sent == 0:
            return 0.0
        return self.pings_answered / self.pings_sent

    # -- forgetful pinging ----------------------------------------------------------

    def ping_probability(self, now: float, tau: float, c: float) -> float:
        """Probability of pinging this period under forgetful pinging.

        1.0 while the target is responsive or only briefly down (t <= τ);
        ``min(1, c·ts/(ts+t))`` afterwards.  A target that was never seen up
        has ``ts = 0``, and the paper's formula would silence it forever; we
        floor ``ts`` at one monitoring period's worth of time only through
        the caller's choice of ``c``, i.e. we faithfully return 0 — the
        *store* handles never-seen targets by keeping their probe alive
        until a first session is observed (see
        :meth:`MonitoringStore.should_ping`).
        """
        downtime = self.downtime(now)
        if downtime <= tau:
            return 1.0
        ts = self.last_session_length
        if ts <= 0.0:
            return 0.0
        return min(1.0, c * ts / (ts + downtime))

    def should_ping(
        self, now: float, tau: float, c: float, rng: random.Random
    ) -> bool:
        """Bernoulli draw against :meth:`ping_probability`."""
        probability = self.ping_probability(now, tau, c)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        return rng.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TargetRecord(target={self.target}, sent={self.pings_sent}, "
            f"answered={self.pings_answered})"
        )


class MonitoringStore:
    """Persistent per-monitor storage of every target's record.

    Survives leaves and rejoins of the monitor (the node's persistent
    storage); only a *death* of the monitor discards it, and deaths never
    rejoin by definition.
    """

    def __init__(self) -> None:
        self._records: Dict[NodeId, TargetRecord] = {}
        #: Pings sent to nodes that were not in the system at send time.
        self.useless_pings = 0

    def record_for(self, target: NodeId) -> TargetRecord:
        """Get-or-create the record for *target*."""
        record = self._records.get(target)
        if record is None:
            record = TargetRecord(target)
            self._records[target] = record
        return record

    def get(self, target: NodeId) -> Optional[TargetRecord]:
        return self._records.get(target)

    def __contains__(self, target: NodeId) -> bool:
        return target in self._records

    def __len__(self) -> int:
        return len(self._records)

    def targets(self):
        return self._records.keys()

    def records(self):
        return self._records.values()

    def should_ping(
        self,
        target: NodeId,
        now: float,
        tau: float,
        c: float,
        rng: random.Random,
        enabled: bool = True,
    ) -> bool:
        """Forgetful-pinging decision for *target* this monitoring period.

        With the optimisation disabled every target is pinged every period
        (the paper's NON-Forgetful baseline in Figures 17–18).  A target
        never yet observed up is always pinged — without at least one
        observed session there is no ``ts(u)`` to feed the formula.
        """
        if not enabled:
            return True
        record = self.record_for(target)
        if record.pings_answered == 0:
            return True
        return record.should_ping(now, tau, c, rng)

    def estimated_availability(self, target: NodeId) -> float:
        record = self._records.get(target)
        if record is None:
            return 0.0
        return record.estimated_availability()
