"""Universe-wide monitor relation with incremental indexing.

During a coarse-view exchange (Figure 2) a node checks the consistency
condition over the cross product of two views — up to ``2·(cvs+2)²`` ordered
pairs, once per node per protocol period.  A naive simulation of a multi-hour
run therefore evaluates tens of millions of hashes.  Because the condition
for a fixed pair never changes, the simulator instead maintains, for every
node ``u`` in the id universe, the *sets*

* ``TS_universe(u) = {v : H(u, v) <= K/N}``  (everyone ``u`` would monitor),
* ``PS_universe(u) = {v : H(v, u) <= K/N}``  (everyone who would monitor ``u``),

built lazily and extended incrementally as new ids are born.  A cross-product
check then reduces to a handful of small set intersections.

Faithful cost accounting: the *protocol-level* number of condition
evaluations a real node performs in an exchange is computed in closed form by
:func:`count_cross_pairs` and charged to the node's computation counter, so
measured computation overhead (Figures 7, 8, 12) reflects the real protocol,
not the memoisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from .condition import ConsistencyCondition
from .hashing import NodeId

__all__ = ["MonitorRelation", "count_cross_pairs"]


def count_cross_pairs(view_a: Set[NodeId], view_b: Set[NodeId]) -> int:
    """Number of ordered pairs checked in one Figure-2 exchange.

    The protocol checks every ordered pair ``(u, v)``, ``u != v``, in
    ``(A×B) ∪ (B×A)``.  With ``t = |A ∩ B|`` the exact count is

        ``2·|A|·|B| − t² − t``

    because ``A×B ∩ B×A = (A∩B)×(A∩B)`` (``t²`` pairs double-counted) and the
    ``t`` diagonal pairs ``(u, u)`` are excluded.  Verified against a brute
    force in the property tests.
    """
    overlap = len(view_a & view_b)
    return 2 * len(view_a) * len(view_b) - overlap * overlap - overlap


class MonitorRelation:
    """Lazily materialised PS/TS indexes over a growing id universe."""

    def __init__(self, condition: ConsistencyCondition) -> None:
        self.condition = condition
        self._universe: List[NodeId] = []
        self._known: Set[NodeId] = set()
        # Per-node index of how far into self._universe the node's scan has
        # progressed, plus the materialised directed sets.
        self._ts_scan: Dict[NodeId, int] = {}
        self._ps_scan: Dict[NodeId, int] = {}
        self._ts: Dict[NodeId, Set[NodeId]] = {}
        self._ps: Dict[NodeId, Set[NodeId]] = {}

    # -- universe management -------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        """Register a (possibly newborn) id into the universe."""
        if node in self._known:
            return
        self._known.add(node)
        self._universe.append(node)

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            self.add_node(node)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._known

    def universe_size(self) -> int:
        return len(self._universe)

    # -- directed set queries -------------------------------------------------

    def targets_of(self, monitor: NodeId) -> Set[NodeId]:
        """``TS_universe(monitor)``: every known id *monitor* would watch.

        The returned set is owned by the relation; callers must not mutate
        it.  It grows automatically as the universe grows.
        """
        self._require_known(monitor)
        targets = self._ts.setdefault(monitor, set())
        scanned = self._ts_scan.get(monitor, 0)
        total = len(self._universe)
        if scanned < total:
            holds = self.condition.holds
            for index in range(scanned, total):
                candidate = self._universe[index]
                if holds(monitor, candidate):
                    targets.add(candidate)
            self._ts_scan[monitor] = total
        return targets

    def monitors_of(self, target: NodeId) -> Set[NodeId]:
        """``PS_universe(target)``: every known id that would watch *target*."""
        self._require_known(target)
        monitors = self._ps.setdefault(target, set())
        scanned = self._ps_scan.get(target, 0)
        total = len(self._universe)
        if scanned < total:
            holds = self.condition.holds
            for index in range(scanned, total):
                candidate = self._universe[index]
                if holds(candidate, target):
                    monitors.add(candidate)
            self._ps_scan[target] = total
        return monitors

    def find_matches(self, view_a: Set[NodeId], view_b: Set[NodeId]):
        """All ordered pairs ``(u, v)`` with ``u ∈ PS(v)`` found by one exchange.

        Mirrors the Figure-2 check over ``(A×B) ∪ (B×A)`` minus the diagonal;
        each returned pair means "``u`` monitors ``v``" and corresponds to one
        ``NOTIFY(u, v)``.
        """
        matches = set()
        for u in view_a:
            for v in view_b & self.targets_of(u):
                if u != v:
                    matches.add((u, v))
        for u in view_b:
            for v in view_a & self.targets_of(u):
                if u != v:
                    matches.add((u, v))
        return matches

    def _require_known(self, node: NodeId) -> None:
        if node not in self._known:
            raise KeyError(f"node {node} is not in the relation universe")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonitorRelation(universe={len(self._universe)}, "
            f"condition={self.condition!r})"
        )
