"""Universe-wide monitor relation with incremental indexing.

During a coarse-view exchange (Figure 2) a node checks the consistency
condition over the cross product of two views — up to ``2·(cvs+2)²`` ordered
pairs, once per node per protocol period.  A naive simulation of a multi-hour
run therefore evaluates tens of millions of hashes.  Because the condition
for a fixed pair never changes, the simulator instead maintains, for every
node ``u`` in the id universe, the *sets*

* ``TS_universe(u) = {v : H(u, v) <= K/N}``  (everyone ``u`` would monitor),
* ``PS_universe(u) = {v : H(v, u) <= K/N}``  (everyone who would monitor ``u``),

built lazily and extended incrementally as new ids are born.  A cross-product
check then reduces to a handful of small set intersections.

The universe is kept as parallel arrays of ids and preconverted endpoint
bytes, and each set extension is one chunked tight-loop scan
(:meth:`~repro.core.condition.ConsistencyCondition.scan_targets` /
``scan_monitors``) over an array slice rather than a per-pair ``holds()``
call — at N=10,000 the difference between a scan being hash-bound and being
interpreter-bound.

Faithful cost accounting: the *protocol-level* number of condition
evaluations a real node performs in an exchange is computed in closed form by
:func:`count_cross_pairs` and charged to the node's computation counter, so
measured computation overhead (Figures 7, 8, 12) reflects the real protocol,
not the index.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Set

from .condition import ConsistencyCondition
from .hashing import NodeId, pack_endpoint

__all__ = ["MonitorRelation", "count_cross_pairs"]


def count_cross_pairs(view_a: Set[NodeId], view_b: Set[NodeId]) -> int:
    """Number of ordered pairs checked in one Figure-2 exchange.

    The protocol checks every ordered pair ``(u, v)``, ``u != v``, in
    ``(A×B) ∪ (B×A)``.  With ``t = |A ∩ B|`` the exact count is

        ``2·|A|·|B| − t² − t``

    because ``A×B ∩ B×A = (A∩B)×(A∩B)`` (``t²`` pairs double-counted) and the
    ``t`` diagonal pairs ``(u, u)`` are excluded.  Verified against a brute
    force in the property tests.
    """
    overlap = len(view_a & view_b)
    return 2 * len(view_a) * len(view_b) - overlap * overlap - overlap


class MonitorRelation:
    """Lazily materialised PS/TS indexes over a growing id universe."""

    def __init__(self, condition: ConsistencyCondition) -> None:
        self.condition = condition
        self._universe: List[NodeId] = []
        #: pack_endpoint(id) for every universe entry, index-aligned.
        self._packed: List[bytes] = []
        self._known: Set[NodeId] = set()
        # Per-node ``[materialised set, universe index the scan reached]``
        # pairs; one dict probe answers both "what is known" and "is it
        # current".
        self._ts: Dict[NodeId, list] = {}
        self._ps: Dict[NodeId, list] = {}
        # Opt-in observability: ``(scans counter, pairs counter, timer)`` or
        # None.  The guard is one identity check per *extension call* (not
        # per pair), so the disabled hot path pays ~nothing.
        self._obs: Optional[tuple] = None

    def observe(self, registry, prefix: str = "sim.relation") -> None:
        """Attach scan-kernel instrumentation to an obs registry.

        Registers deterministic counters for scan calls and pairs scanned
        plus a wall-clock histogram of scan-phase durations, and callback
        gauges for universe size and materialised index entries.
        """
        from ..obs.registry import WALL

        self._obs = (
            registry.counter(f"{prefix}.scans"),
            registry.counter(f"{prefix}.pairs_scanned"),
            registry.histogram(f"{prefix}.scan_seconds", kind=WALL),
        )
        registry.gauge(f"{prefix}.universe", fn=self.universe_size)
        registry.gauge(f"{prefix}.index_entries", fn=self.index_entries)

    # -- universe management -------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        """Register a (possibly newborn) id into the universe."""
        if node in self._known:
            return
        self._known.add(node)
        self._universe.append(node)
        self._packed.append(pack_endpoint(node))

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            self.add_node(node)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._known

    def universe_size(self) -> int:
        return len(self._universe)

    def index_entries(self) -> int:
        """Total materialised TS/PS set entries (memory diagnostics)."""
        return sum(len(entry[0]) for entry in self._ts.values()) + sum(
            len(entry[0]) for entry in self._ps.values()
        )

    # -- directed set queries -------------------------------------------------

    def targets_of(self, monitor: NodeId) -> Set[NodeId]:
        """``TS_universe(monitor)``: every known id *monitor* would watch.

        The returned set is owned by the relation; callers must not mutate
        it.  It grows automatically as the universe grows.
        """
        entry = self._ts.get(monitor)
        if entry is not None and entry[1] == len(self._universe):
            return entry[0]
        return self._extend_targets(monitor, entry)

    def _extend_targets(self, monitor: NodeId, entry) -> Set[NodeId]:
        if entry is None:
            self._require_known(monitor)
            entry = self._ts[monitor] = [set(), 0]
        targets = entry[0]
        total = len(self._universe)
        obs = self._obs
        if obs is None:
            self.condition.scan_targets(
                monitor, self._universe, self._packed, entry[1], total, targets.add
            )
        else:
            started = perf_counter()
            self.condition.scan_targets(
                monitor, self._universe, self._packed, entry[1], total, targets.add
            )
            obs[0].inc()
            obs[1].inc(total - entry[1])
            obs[2].observe(perf_counter() - started)
        entry[1] = total
        return targets

    def monitors_of(self, target: NodeId) -> Set[NodeId]:
        """``PS_universe(target)``: every known id that would watch *target*."""
        entry = self._ps.get(target)
        if entry is not None and entry[1] == len(self._universe):
            return entry[0]
        return self._extend_monitors(target, entry)

    def _extend_monitors(self, target: NodeId, entry) -> Set[NodeId]:
        if entry is None:
            self._require_known(target)
            entry = self._ps[target] = [set(), 0]
        monitors = entry[0]
        total = len(self._universe)
        obs = self._obs
        if obs is None:
            self.condition.scan_monitors(
                target, self._universe, self._packed, entry[1], total, monitors.add
            )
        else:
            started = perf_counter()
            self.condition.scan_monitors(
                target, self._universe, self._packed, entry[1], total, monitors.add
            )
            obs[0].inc()
            obs[1].inc(total - entry[1])
            obs[2].observe(perf_counter() - started)
        entry[1] = total
        return monitors

    def find_matches(self, view_a: Set[NodeId], view_b: Set[NodeId]):
        """All ordered pairs ``(u, v)`` with ``u ∈ PS(v)`` found by one exchange.

        Mirrors the Figure-2 check over ``(A×B) ∪ (B×A)`` minus the diagonal;
        each returned pair means "``u`` monitors ``v``" and corresponds to one
        ``NOTIFY(u, v)``.
        """
        matches = set()
        add = matches.add
        ts = self._ts
        extend = self._extend_targets
        total = len(self._universe)
        for u in view_a:
            # Inline warm-path targets_of: one dict probe per view member.
            entry = ts.get(u)
            if entry is not None and entry[1] == total:
                targets = entry[0]
            else:
                targets = extend(u, entry)
            for v in view_b & targets:
                add((u, v))  # u is never in targets (self pairs skipped)
        for u in view_b:
            entry = ts.get(u)
            if entry is not None and entry[1] == total:
                targets = entry[0]
            else:
                targets = extend(u, entry)
            for v in view_a & targets:
                add((u, v))
        return matches

    def _require_known(self, node: NodeId) -> None:
        if node not in self._known:
            raise KeyError(f"node {node} is not in the relation universe")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonitorRelation(universe={len(self._universe)}, "
            f"condition={self.condition!r})"
        )
