"""Availability-history maintenance (the paper's sub-problem II).

Section 1 splits availability monitoring into (I) selecting/discovering the
monitoring overlay — the paper's focus — and (II) how a monitor stores a
target's availability history, which is orthogonal: "any existing technique
for availability history maintenance, such as raw, aged, recent, etc. [9],
can be used orthogonally with any availability monitoring overlay".

This module implements the three classic stores so that the monitoring layer
and the example applications (availability-aware replication, prediction)
have a real sub-problem-II implementation to plug in:

* :class:`RawHistory` — every (time, up?) sample, exact availability;
* :class:`RecentWindowHistory` — sliding window of the last W samples;
* :class:`AgedHistory` — exponentially weighted moving average.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

__all__ = [
    "AvailabilityHistory",
    "RawHistory",
    "RecentWindowHistory",
    "AgedHistory",
    "make_history",
]


class AvailabilityHistory:
    """Interface: record ping outcomes, report an availability estimate."""

    def record(self, time: float, up: bool) -> None:
        raise NotImplementedError

    def availability(self) -> float:
        """Estimated availability in ``[0, 1]`` (0.0 when no samples)."""
        raise NotImplementedError

    def sample_count(self) -> int:
        raise NotImplementedError


class RawHistory(AvailabilityHistory):
    """Stores every sample; availability = fraction of up samples."""

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: List[Tuple[float, bool]] = []

    def record(self, time: float, up: bool) -> None:
        self._samples.append((time, up))

    def availability(self) -> float:
        if not self._samples:
            return 0.0
        up = sum(1 for _, alive in self._samples if alive)
        return up / len(self._samples)

    def sample_count(self) -> int:
        return len(self._samples)

    def samples(self) -> Tuple[Tuple[float, bool], ...]:
        """Full raw record (for prediction-style consumers)."""
        return tuple(self._samples)

    def availability_between(self, start: float, end: float) -> float:
        """Fraction of up samples whose timestamp lies in ``[start, end]``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        window = [alive for when, alive in self._samples if start <= when <= end]
        if not window:
            return 0.0
        return sum(window) / len(window)


class RecentWindowHistory(AvailabilityHistory):
    """Keeps only the last *window* samples ("recent" in [9])."""

    __slots__ = ("window", "_samples", "_up_count")

    def __init__(self, window: int = 128) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: Deque[bool] = deque(maxlen=window)
        self._up_count = 0

    def record(self, time: float, up: bool) -> None:
        if len(self._samples) == self.window and self._samples[0]:
            self._up_count -= 1
        self._samples.append(up)
        if up:
            self._up_count += 1

    def availability(self) -> float:
        if not self._samples:
            return 0.0
        return self._up_count / len(self._samples)

    def sample_count(self) -> int:
        return len(self._samples)


class AgedHistory(AvailabilityHistory):
    """Exponentially aged estimate ("aged" in [9]).

    ``estimate ← (1 − alpha)·estimate + alpha·sample`` with smoothing factor
    *alpha*; recent behaviour dominates, old sessions fade.
    """

    __slots__ = ("alpha", "_estimate", "_count")

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimate = 0.0
        self._count = 0

    def record(self, time: float, up: bool) -> None:
        sample = 1.0 if up else 0.0
        if self._count == 0:
            self._estimate = sample
        else:
            self._estimate = (1.0 - self.alpha) * self._estimate + self.alpha * sample
        self._count += 1

    def availability(self) -> float:
        return self._estimate if self._count else 0.0

    def sample_count(self) -> int:
        return self._count


def make_history(kind: str = "raw", **kwargs) -> AvailabilityHistory:
    """Factory over the three history flavours: raw / recent / aged."""
    key = kind.lower()
    if key == "raw":
        return RawHistory(**kwargs)
    if key == "recent":
        return RecentWindowHistory(**kwargs)
    if key == "aged":
        return AgedHistory(**kwargs)
    raise ValueError(f"unknown history kind {kind!r}; expected raw, recent or aged")
