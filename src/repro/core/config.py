"""AVMON node configuration (protocol constants of Sections 3 and 5)."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from . import optimal
from .hashing import available_algorithms

__all__ = ["AvmonConfig"]


@dataclass(frozen=True)
class AvmonConfig:
    """All tunables of an AVMON deployment.

    Defaults follow the paper's experimental setup (Section 5): protocol
    period T = 60 s, monitoring period T_A = 60 s, ``K = log2(N)``,
    ``cvs = 4·N^{1/4}``, forgetful pinging with τ = 120 s and c = 1, and
    8-byte wire entries.
    """

    #: Expected stable system size (the consistent parameter ``N``).
    n_expected: int
    #: Expected pinging-set size (the consistent parameter ``K``).
    k: int
    #: Maximum coarse-view size.
    cvs: int
    #: Coarse-membership protocol period T, in seconds (Figure 2).
    protocol_period: float = 60.0
    #: Monitoring-ping period T_A, in seconds (Section 3.3).
    monitoring_period: float = 60.0
    #: Forgetful-pinging time threshold τ, in seconds.
    forgetful_tau: float = 120.0
    #: Forgetful-pinging target ping count c between successive joins.
    forgetful_c: float = 1.0
    #: Whether the forgetful-pinging optimisation is active.
    enable_forgetful: bool = True
    #: Whether the PR2 in-degree refresh of Section 5.4 is active.
    enable_pr2: bool = False
    #: Seconds a node waits for a ping/fetch reply before declaring failure.
    ping_timeout: float = 5.0
    #: Wire size of one view entry / ping message, in bytes (Section 5.1).
    entry_bytes: int = 8
    #: Pair-hash algorithm backing the consistency condition.
    hash_algorithm: str = "md5"

    def __post_init__(self) -> None:
        if self.n_expected <= 1:
            raise ValueError(f"n_expected must exceed 1, got {self.n_expected}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.k > self.n_expected:
            raise ValueError(f"k ({self.k}) must not exceed N ({self.n_expected})")
        if self.cvs <= 0:
            raise ValueError(f"cvs must be positive, got {self.cvs}")
        if self.protocol_period <= 0:
            raise ValueError(f"protocol_period must be positive, got {self.protocol_period}")
        if self.monitoring_period <= 0:
            raise ValueError(
                f"monitoring_period must be positive, got {self.monitoring_period}"
            )
        if self.forgetful_tau < 0:
            raise ValueError(f"forgetful_tau must be non-negative, got {self.forgetful_tau}")
        if self.forgetful_c <= 0:
            raise ValueError(f"forgetful_c must be positive, got {self.forgetful_c}")
        if self.ping_timeout <= 0:
            raise ValueError(f"ping_timeout must be positive, got {self.ping_timeout}")
        if self.ping_timeout >= min(self.protocol_period, self.monitoring_period):
            raise ValueError(
                "ping_timeout must be shorter than both protocol periods "
                f"(got {self.ping_timeout})"
            )
        if self.entry_bytes <= 0:
            raise ValueError(f"entry_bytes must be positive, got {self.entry_bytes}")
        if self.hash_algorithm not in available_algorithms():
            raise ValueError(
                f"unknown hash algorithm {self.hash_algorithm!r}; "
                f"available: {', '.join(available_algorithms())}"
            )

    @classmethod
    def paper_defaults(cls, n_expected: int, **overrides) -> "AvmonConfig":
        """Section 5 defaults: ``K = log2(N)``, ``cvs = 4·N^{1/4}``."""
        k = overrides.pop("k", max(1, round(math.log2(n_expected))))
        cvs = overrides.pop("cvs", optimal.cvs_paper_default(n_expected))
        return cls(n_expected=n_expected, k=k, cvs=cvs, **overrides)

    @classmethod
    def for_variant(cls, n_expected: int, variant: str, **overrides) -> "AvmonConfig":
        """Build a config for a named optimal variant (md/mdc/dc/log/paper)."""
        k = overrides.pop("k", max(1, round(math.log2(n_expected))))
        cvs = overrides.pop("cvs", optimal.cvs_for_variant(n_expected, variant))
        return cls(n_expected=n_expected, k=k, cvs=cvs, **overrides)

    def with_overrides(self, **changes) -> "AvmonConfig":
        """Functional update preserving immutability."""
        return replace(self, **changes)

    @property
    def consistency_threshold(self) -> float:
        """``K/N``, the probability mass of the consistency condition."""
        return self.k / self.n_expected

    @property
    def expected_memory_entries(self) -> float:
        """Expected steady-state ``|CV| + |PS| + |TS|`` = ``cvs + 2K``."""
        return self.cvs + 2.0 * self.k

    @property
    def expected_discovery_periods(self) -> float:
        """E[D] for this cvs/N, in protocol periods (Section 4.1)."""
        return optimal.expected_discovery_time(self.cvs, self.n_expected)
