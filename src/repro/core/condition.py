"""The AVMON consistency condition (Section 3.1).

Two nodes are related as ``u ∈ PS(v)`` (``u`` monitors ``v``) if and only if

    ``H(u, v) <= K / N``

where ``K`` is a small constant (the expected pinging-set size) and ``N`` is
the expected stable system size.  The relationship is *consistent* (it never
changes while ``K`` and ``N`` are fixed), *verifiable* (any third node can
recompute it), and *random* (``H`` behaves uniformly).

:class:`ConsistencyCondition` is the object every component shares: protocol
nodes use it to re-check NOTIFY messages, third parties use it to audit
reported monitors, and the discovery relation (:mod:`repro.core.relation`)
builds its indexes on top of it.  Evaluations are memoised — the condition
for a fixed pair never changes, so caching is sound — and the number of
distinct hash evaluations is tracked for cost accounting.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .hashing import NodeId, PairHasher

__all__ = ["ConsistencyCondition"]


class ConsistencyCondition:
    """Evaluates and memoises ``H(u, v) <= K/N`` for ordered node pairs."""

    __slots__ = ("k", "n", "threshold", "_hasher", "_cache")

    def __init__(self, k: int, n: int, hash_algorithm: str = "md5") -> None:
        if k <= 0:
            raise ValueError(f"K must be positive, got {k}")
        if n <= 0:
            raise ValueError(f"N must be positive, got {n}")
        if k > n:
            raise ValueError(f"K ({k}) must not exceed N ({n})")
        self.k = k
        self.n = n
        #: The probability that an ordered pair is in the monitoring relation.
        self.threshold = k / n
        self._hasher = PairHasher(hash_algorithm)
        self._cache: Dict[Tuple[NodeId, NodeId], bool] = {}

    @property
    def hash_algorithm(self) -> str:
        """Name of the underlying pair-hash algorithm."""
        return self._hasher.algorithm

    @property
    def hash_evaluations(self) -> int:
        """Number of distinct pair hashes actually computed so far."""
        return self._hasher.evaluations

    def hash_value(self, monitor: NodeId, target: NodeId) -> float:
        """Raw ``H(monitor, target)`` value (not memoised)."""
        return self._hasher(monitor, target)

    def holds(self, monitor: NodeId, target: NodeId) -> bool:
        """True iff ``monitor ∈ PS(target)``, i.e. *monitor* monitors *target*.

        The pair is ordered: ``holds(u, v)`` and ``holds(v, u)`` are
        independent relations (``u`` may monitor ``v`` without the reverse).
        """
        if monitor == target:
            # A node never monitors itself; self-reporting is exactly what
            # the scheme is designed to rule out (Section 1, goal 3a).
            return False
        key = (monitor, target)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._hasher(monitor, target) <= self.threshold
            self._cache[key] = cached
        return cached

    # The two directed views of the same relation, named for readability at
    # call sites that think in terms of pinging sets and target sets.

    def is_monitor_of(self, candidate: NodeId, target: NodeId) -> bool:
        """Alias of :meth:`holds`: is *candidate* in ``PS(target)``?"""
        return self.holds(candidate, target)

    def is_target_of(self, candidate: NodeId, monitor: NodeId) -> bool:
        """Is *candidate* in ``TS(monitor)``, i.e. does *monitor* watch it?"""
        return self.holds(monitor, candidate)

    def verify_report(self, target: NodeId, reported_monitors) -> bool:
        """Third-party verification used by the "l out of K" policy.

        Returns True iff every node in *reported_monitors* genuinely
        satisfies the consistency condition for *target*.  This is what makes
        monitor reports unforgeable (Section 3.3): a selfish node cannot
        slip a colluder into its report because any recipient runs this
        check.
        """
        return all(self.holds(monitor, target) for monitor in reported_monitors)

    def expected_ps_size(self) -> float:
        """Expected ``|PS(x)|`` over a population of exactly ``N`` nodes."""
        return self.threshold * (self.n - 1)

    def cache_size(self) -> int:
        """Number of memoised ordered pairs (diagnostics/tests)."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistencyCondition(k={self.k}, n={self.n}, "
            f"algorithm={self.hash_algorithm!r})"
        )
