"""The AVMON consistency condition (Section 3.1).

Two nodes are related as ``u ∈ PS(v)`` (``u`` monitors ``v``) if and only if

    ``H(u, v) <= K / N``

where ``K`` is a small constant (the expected pinging-set size) and ``N`` is
the expected stable system size.  The relationship is *consistent* (it never
changes while ``K`` and ``N`` are fixed), *verifiable* (any third node can
recompute it), and *random* (``H`` behaves uniformly).

:class:`ConsistencyCondition` is the object every component shares: protocol
nodes use it to re-check NOTIFY messages, third parties use it to audit
reported monitors, and the discovery relation (:mod:`repro.core.relation`)
builds its indexes on top of it.

Evaluation is integer-domain: every pair hash derives from a 64-bit integer
``u`` via ``u / 2**64``, so ``H(u, v) <= K/N`` is decided by comparing the
raw integer against :attr:`ConsistencyCondition.bound` — the exact integer
boundary of the float comparison (:func:`repro.core.hashing.
unit_threshold_bound`) — with no float division on the hot path.  The result
is bit-for-bit identical to comparing ``hash_pair(u, v) <= threshold``; the
property suite proves the equivalence exhaustively.

Earlier versions memoised each ordered pair's verdict in a dict.  That memo
was O(population²) memory — the reason N=10,000 runs died — and a dict probe
plus tuple allocation costs about as much as recomputing a non-cryptographic
hash, so evaluations are now always computed.  The number of hash
evaluations performed is still tracked for cost accounting.
"""

from __future__ import annotations

from .hashing import NodeId, PairHasher, unit_threshold_bound

__all__ = ["ConsistencyCondition"]


class ConsistencyCondition:
    """Evaluates ``H(u, v) <= K/N`` for ordered node pairs."""

    __slots__ = ("k", "n", "threshold", "bound", "_hasher")

    def __init__(self, k: int, n: int, hash_algorithm: str = "md5") -> None:
        if k <= 0:
            raise ValueError(f"K must be positive, got {k}")
        if n <= 0:
            raise ValueError(f"N must be positive, got {n}")
        if k > n:
            raise ValueError(f"K ({k}) must not exceed N ({n})")
        self.k = k
        self.n = n
        #: The probability that an ordered pair is in the monitoring relation.
        self.threshold = k / n
        #: Largest raw 64-bit hash value satisfying the condition; comparing
        #: against it is exactly equivalent to the float comparison.
        self.bound = unit_threshold_bound(self.threshold)
        self._hasher = PairHasher(hash_algorithm)

    @property
    def hash_algorithm(self) -> str:
        """Name of the underlying pair-hash algorithm."""
        return self._hasher.algorithm

    @property
    def hash_evaluations(self) -> int:
        """Number of pair hashes computed so far (single-pair and scans)."""
        return self._hasher.evaluations

    def hash_value(self, monitor: NodeId, target: NodeId) -> float:
        """Raw ``H(monitor, target)`` value in ``[0, 1)``."""
        return self._hasher(monitor, target)

    def holds(self, monitor: NodeId, target: NodeId) -> bool:
        """True iff ``monitor ∈ PS(target)``, i.e. *monitor* monitors *target*.

        The pair is ordered: ``holds(u, v)`` and ``holds(v, u)`` are
        independent relations (``u`` may monitor ``v`` without the reverse).
        """
        if monitor == target:
            # A node never monitors itself; self-reporting is exactly what
            # the scheme is designed to rule out (Section 1, goal 3a).
            return False
        return self._hasher.pair_u64(monitor, target) <= self.bound

    # -- batch evaluation ---------------------------------------------------

    def scan_targets(self, monitor, ids, packed, start, stop, emit) -> None:
        """Emit every id in ``ids[start:stop]`` that *monitor* would watch.

        Tight-loop equivalent of ``holds(monitor, v)`` over a universe
        slice; ``packed`` carries the ids' preconverted endpoints (see
        :meth:`repro.core.hashing.PairHasher.scan_targets`).
        """
        self._hasher.scan_targets(monitor, ids, packed, start, stop, self.bound, emit)

    def scan_monitors(self, target, ids, packed, start, stop, emit) -> None:
        """Emit every id in ``ids[start:stop]`` that would watch *target*."""
        self._hasher.scan_monitors(target, ids, packed, start, stop, self.bound, emit)

    # The two directed views of the same relation, named for readability at
    # call sites that think in terms of pinging sets and target sets.

    def is_monitor_of(self, candidate: NodeId, target: NodeId) -> bool:
        """Alias of :meth:`holds`: is *candidate* in ``PS(target)``?"""
        return self.holds(candidate, target)

    def is_target_of(self, candidate: NodeId, monitor: NodeId) -> bool:
        """Is *candidate* in ``TS(monitor)``, i.e. does *monitor* watch it?"""
        return self.holds(monitor, candidate)

    def verify_report(self, target: NodeId, reported_monitors) -> bool:
        """Third-party verification used by the "l out of K" policy.

        Returns True iff every node in *reported_monitors* genuinely
        satisfies the consistency condition for *target*.  This is what makes
        monitor reports unforgeable (Section 3.3): a selfish node cannot
        slip a colluder into its report because any recipient runs this
        check.
        """
        return all(self.holds(monitor, target) for monitor in reported_monitors)

    def expected_ps_size(self) -> float:
        """Expected ``|PS(x)|`` over a population of exactly ``N`` nodes."""
        return self.threshold * (self.n - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistencyCondition(k={self.k}, n={self.n}, "
            f"algorithm={self.hash_algorithm!r})"
        )
