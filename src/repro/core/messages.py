"""Protocol messages with wire-size accounting.

Every message reports its wire size so the network layer can account
per-node outgoing bandwidth the way Section 5 does (8 bytes per coarse-view
entry and per ping message).  Sizes are parameterised on ``entry_bytes`` so
experiments may model 6-byte entries (Section 4.1's example) or 8-byte
entries (Section 5.1's).

Messages are immutable by contract: once constructed they are shared across
deliveries (the simulated network re-delivers the same object to several
endpoints) and must never be mutated.  The contract is by convention rather
than ``frozen=True`` — large-N simulations construct millions of messages,
and the frozen dataclass ``__setattr__`` detour nearly doubles construction
cost.  ``unsafe_hash`` keeps the field-based hashing/equality a frozen
dataclass would have had.

``fixed_wire_size`` marks the types whose :meth:`Message.size_bytes` depends
only on ``entry_bytes``, letting the network memoise the size per type; any
message carrying a variable-length payload must leave it False.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Tuple

from .hashing import NodeId

__all__ = [
    "Message",
    "Join",
    "CvPing",
    "CvPong",
    "CvFetchRequest",
    "CvFetchReply",
    "Notify",
    "MonitorPing",
    "MonitorPong",
    "Pr2Refresh",
    "ReportRequest",
    "ReportReply",
    "HistoryRequest",
    "HistoryReply",
    "MESSAGE_TYPES",
]

#: Fixed overhead charged per message (type tag + sequence number).
_HEADER_BYTES = 4


@dataclass(unsafe_hash=True)
class Message:
    """Base class; ``sender`` is the node id the reply should go to."""

    #: True when size_bytes depends only on entry_bytes (memoisable per type).
    fixed_wire_size: ClassVar[bool] = True

    sender: NodeId

    def size_bytes(self, entry_bytes: int = 8) -> int:
        """Wire size of this message; one endpoint entry by default."""
        return _HEADER_BYTES + entry_bytes


@dataclass(unsafe_hash=True)
class Join(Message):
    """``JOIN(origin, weight)`` of the joining sub-protocol (Figure 1)."""

    origin: NodeId
    weight: int

    def size_bytes(self, entry_bytes: int = 8) -> int:
        # Origin endpoint + small integer weight.
        return _HEADER_BYTES + entry_bytes + 2


@dataclass(unsafe_hash=True)
class CvPing(Message):
    """Liveness probe of a coarse-view entry (first step of Figure 2)."""

    seq: int = 0


@dataclass(unsafe_hash=True)
class CvPong(Message):
    """Reply to :class:`CvPing`."""

    seq: int = 0


@dataclass(unsafe_hash=True)
class CvFetchRequest(Message):
    """Request for the recipient's coarse view (Figure 2)."""

    seq: int = 0


@dataclass(unsafe_hash=True)
class CvFetchReply(Message):
    """The recipient's coarse view; dominates AVMON's bandwidth."""

    fixed_wire_size: ClassVar[bool] = False

    seq: int = 0
    view: Tuple[NodeId, ...] = field(default_factory=tuple)

    def size_bytes(self, entry_bytes: int = 8) -> int:
        return _HEADER_BYTES + entry_bytes * len(self.view)


@dataclass(unsafe_hash=True)
class Notify(Message):
    """``NOTIFY(monitor, target)``: *monitor* ∈ PS(*target*) was discovered."""

    monitor: NodeId = 0
    target: NodeId = 0

    def size_bytes(self, entry_bytes: int = 8) -> int:
        # Two endpoints: the matched ordered pair.
        return _HEADER_BYTES + 2 * entry_bytes


@dataclass(unsafe_hash=True)
class MonitorPing(Message):
    """Availability-measurement ping from a monitor to a TS target."""

    seq: int = 0


@dataclass(unsafe_hash=True)
class MonitorPong(Message):
    """Reply to :class:`MonitorPing`."""

    seq: int = 0


@dataclass(unsafe_hash=True)
class Pr2Refresh(Message):
    """PR2 (Section 5.4): sender forces itself into the recipient's CV."""


@dataclass(unsafe_hash=True)
class ReportRequest(Message):
    """Ask *subject* to report at least ``min_monitors`` of its PS (§3.3)."""

    subject: NodeId = 0
    min_monitors: int = 1

    def size_bytes(self, entry_bytes: int = 8) -> int:
        return _HEADER_BYTES + entry_bytes + 2


@dataclass(unsafe_hash=True)
class ReportReply(Message):
    """The subject's (verifiable) list of monitor ids."""

    fixed_wire_size: ClassVar[bool] = False

    subject: NodeId = 0
    monitors: Tuple[NodeId, ...] = field(default_factory=tuple)

    def size_bytes(self, entry_bytes: int = 8) -> int:
        return _HEADER_BYTES + entry_bytes * (1 + len(self.monitors))


@dataclass(unsafe_hash=True)
class HistoryRequest(Message):
    """Ask a monitor for its measured availability of *subject*."""

    subject: NodeId = 0

    def size_bytes(self, entry_bytes: int = 8) -> int:
        return _HEADER_BYTES + entry_bytes


@dataclass(unsafe_hash=True)
class HistoryReply(Message):
    """A monitor's measured availability for *subject* in ``[0, 1]``."""

    subject: NodeId = 0
    availability: float = 0.0

    def size_bytes(self, entry_bytes: int = 8) -> int:
        return _HEADER_BYTES + entry_bytes + 8


#: Every concrete protocol message, in wire-registration order.  This is the
#: codec hook: :mod:`repro.live.codec` registers exactly these types on the
#: wire, and the property suite round-trips each of them, so adding a message
#: here is all it takes to make it transportable over UDP.
MESSAGE_TYPES = (
    Join,
    CvPing,
    CvPong,
    CvFetchRequest,
    CvFetchReply,
    Notify,
    MonitorPing,
    MonitorPong,
    Pr2Refresh,
    ReportRequest,
    ReportReply,
    HistoryRequest,
    HistoryReply,
)
