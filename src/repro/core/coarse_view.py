"""The coarse view: a bounded random neighbour set (Section 3.2).

Each node keeps at most ``cvs`` other node ids.  The view supports O(1)
membership tests, O(1) uniform random choice, and the Figure-2 reshuffle
(select ``cvs`` random entries from the union of the old view, the fetched
view and the exchange partner).

Invariants (enforced here, property-tested in the suite):

* never contains the owner id,
* never contains duplicates,
* never exceeds its capacity.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .hashing import NodeId

__all__ = ["CoarseView"]


class CoarseView:
    """Bounded random set of neighbour ids with O(1) sample/removal."""

    __slots__ = ("owner", "capacity", "_items", "_index")

    def __init__(self, owner: NodeId, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.owner = owner
        self.capacity = capacity
        self._items: List[NodeId] = []
        self._index: Dict[NodeId, int] = {}

    # -- basic container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._items)

    def entries(self) -> Tuple[NodeId, ...]:
        """Snapshot of the current view (order is internal, not meaningful)."""
        return tuple(self._items)

    def as_set(self) -> set:
        """Snapshot as a set (handy for the Figure-2 cross-product check)."""
        return set(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    # -- mutation --------------------------------------------------------------

    def add(self, node: NodeId, rng: Optional[random.Random] = None) -> bool:
        """Insert *node*; returns True if the view changed.

        When the view is full the insert evicts a uniformly random victim
        (used by JOIN handling and PR2, which must make room).  The owner id
        and duplicates are rejected.
        """
        if node == self.owner or node in self._index:
            return False
        if len(self._items) >= self.capacity:
            victim_rng = rng if rng is not None else random
            self._remove_at(victim_rng.randrange(len(self._items)))
        self._index[node] = len(self._items)
        self._items.append(node)
        return True

    def add_if_room(self, node: NodeId) -> bool:
        """Insert *node* only if the view has spare capacity."""
        if self.is_full:
            return False
        return self.add(node)

    def remove(self, node: NodeId) -> bool:
        """Remove *node*; returns True if it was present."""
        position = self._index.get(node)
        if position is None:
            return False
        self._remove_at(position)
        return True

    def _remove_at(self, position: int) -> None:
        # Swap-remove to keep sampling O(1).
        last = self._items[-1]
        victim = self._items[position]
        self._items[position] = last
        self._index[last] = position
        self._items.pop()
        del self._index[victim]

    def clear(self) -> None:
        self._items.clear()
        self._index.clear()

    # -- protocol operations -----------------------------------------------------

    def random_choice(self, rng: random.Random) -> Optional[NodeId]:
        """Uniform random entry, or None when empty."""
        if not self._items:
            return None
        return self._items[rng.randrange(len(self._items))]

    def random_choice_excluding(
        self, rng: random.Random, excluded: NodeId
    ) -> Optional[NodeId]:
        """Uniform random entry different from *excluded* (None if impossible)."""
        if not self._items:
            return None
        if len(self._items) == 1 and self._items[0] == excluded:
            return None
        while True:
            candidate = self._items[rng.randrange(len(self._items))]
            if candidate != excluded:
                return candidate

    def reshuffle(self, candidates: Iterable[NodeId], rng: random.Random) -> None:
        """Figure-2 view refresh.

        Replaces the view with ``min(cvs, |pool|)`` ids sampled uniformly
        without replacement from ``pool = current ∪ candidates − {owner}``.
        """
        pool = set(self._items)
        pool.update(candidates)
        pool.discard(self.owner)
        selected = (
            list(pool)
            if len(pool) <= self.capacity
            else rng.sample(sorted(pool), self.capacity)
        )
        self.clear()
        for node in selected:
            self._index[node] = len(self._items)
            self._items.append(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CoarseView(owner={self.owner}, size={len(self._items)}/"
            f"{self.capacity})"
        )
