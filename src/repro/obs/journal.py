"""Structured JSONL event journal with span support.

One line per event: ``{"ts": ..., "event": ..., **fields}``.  The
timestamp comes from an injectable clock — the virtual clock on the
in-memory fabric, ``time.time`` live — so journals from deterministic
fabrics are themselves deterministic.

A :class:`Journal` always keeps per-event counts (``journal.counts``)
even when no sink is attached; the fleet derives its human stats line
from those counts so the line and the journal can never disagree.
:data:`NULL_JOURNAL` is the true no-op for call sites that want zero
bookkeeping.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Union

__all__ = [
    "Journal",
    "NullJournal",
    "NULL_JOURNAL",
    "JOURNAL_ENV",
    "journal_from_env",
    "read_events",
    "tail_events",
    "summarize_events",
    "render_event",
]

JOURNAL_ENV = "AVMON_JOURNAL"


class Journal:
    """Append-only event stream with optional JSONL file sink."""

    def __init__(
        self,
        sink: Union[str, Path, TextIO, None] = None,
        *,
        clock=None,
        retain: int = 4096,
    ) -> None:
        self._clock = clock if clock is not None else time.time
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {}
        self.events: List[dict] = []
        self._retain = retain
        self._fh: Optional[TextIO] = None
        self._owns_fh = False
        if sink is None:
            pass
        elif isinstance(sink, (str, Path)):
            path = Path(sink)
            if path.parent and not path.parent.exists():
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("a", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = sink

    @property
    def clock(self):
        return self._clock

    def bind_clock(self, clock) -> None:
        """Rebind the timestamp source (e.g. a fabric's virtual clock)."""
        self._clock = clock

    def emit(self, event: str, **fields) -> dict:
        record = {"ts": round(float(self._clock()), 6), "event": event}
        record.update(fields)
        with self._lock:
            self.counts[event] = self.counts.get(event, 0) + 1
            self.events.append(record)
            if len(self.events) > self._retain:
                del self.events[: len(self.events) - self._retain]
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
        return record

    @contextmanager
    def span(self, event: str, **fields) -> Iterator[dict]:
        """Emit ``<event>.start`` / ``<event>.end`` around a block.

        The end record carries ``duration_s`` measured on the journal's
        clock; the yielded dict can be mutated to add fields to the end
        record.
        """
        started = float(self._clock())
        self.emit(event + ".start", **fields)
        extra: dict = {}
        try:
            yield extra
        finally:
            duration = round(float(self._clock()) - started, 6)
            self.emit(event + ".end", duration_s=duration, **{**fields, **extra})

    def count(self, event: str) -> int:
        return self.counts.get(event, 0)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._owns_fh:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullJournal:
    """A journal that records nothing — the disabled-hooks fast path."""

    counts: Dict[str, int] = {}
    events: List[dict] = []

    def emit(self, event: str, **fields) -> dict:
        return {}

    @contextmanager
    def span(self, event: str, **fields) -> Iterator[dict]:
        yield {}

    def count(self, event: str) -> int:
        return 0

    def bind_clock(self, clock) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullJournal":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_JOURNAL = NullJournal()


def journal_from_env(*, clock=None) -> Journal:
    """A journal sinking to ``$AVMON_JOURNAL`` when set, in-memory otherwise."""
    path = os.environ.get(JOURNAL_ENV)
    return Journal(path if path else None, clock=clock)


# -- readers ------------------------------------------------------------


def read_events(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL journal file; malformed lines are skipped."""
    events: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


def tail_events(path: Union[str, Path], limit: int = 20) -> List[dict]:
    events = read_events(path)
    return events[-limit:] if limit > 0 else events


def summarize_events(events: List[dict]) -> dict:
    """Aggregate a journal: totals, per-event counts, span durations."""
    by_event: Dict[str, int] = {}
    spans: Dict[str, Dict[str, float]] = {}
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    for record in events:
        event = record.get("event", "?")
        by_event[event] = by_event.get(event, 0) + 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            first_ts = ts if first_ts is None else min(first_ts, ts)
            last_ts = ts if last_ts is None else max(last_ts, ts)
        if event.endswith(".end") and "duration_s" in record:
            base = event[: -len(".end")]
            agg = spans.setdefault(base, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            duration = float(record["duration_s"])
            agg["count"] += 1
            agg["total_s"] = round(agg["total_s"] + duration, 6)
            agg["max_s"] = max(agg["max_s"], duration)
    return {
        "events": len(events),
        "by_event": dict(sorted(by_event.items())),
        "spans": dict(sorted(spans.items())),
        "first_ts": first_ts,
        "last_ts": last_ts,
    }


def render_event(record: dict) -> str:
    """One-line human rendering of a journal record."""
    ts = record.get("ts")
    event = record.get("event", "?")
    rest = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("ts", "event")
    )
    prefix = f"{ts:.3f}" if isinstance(ts, (int, float)) else "-"
    return f"{prefix} {event} {rest}".rstrip()
