"""Unified observability layer: metrics registry + structured event journal.

``repro.obs`` is the single emission surface for every subsystem — the
simulator engine, the fleet orchestrator, the store daemon, and the
serving tier all report through a :class:`MetricsRegistry` and/or a
:class:`Journal`.  The registry structurally separates *deterministic*
series (byte-equal across identical seeded runs, CI-gateable) from
*wall-clock* series (latencies, durations), and the journal is JSONL
with span support, timestamped from whatever clock the fabric runs on.
"""

from .journal import (
    JOURNAL_ENV,
    NULL_JOURNAL,
    Journal,
    NullJournal,
    journal_from_env,
    read_events,
    render_event,
    summarize_events,
    tail_events,
)
from .hooks import observe_condition, observe_relation, observe_simulator
from .registry import (
    DETERMINISTIC,
    WALL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "DETERMINISTIC",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "Journal",
    "NullJournal",
    "NULL_JOURNAL",
    "JOURNAL_ENV",
    "journal_from_env",
    "read_events",
    "tail_events",
    "summarize_events",
    "render_event",
    "observe_simulator",
    "observe_condition",
    "observe_relation",
]
