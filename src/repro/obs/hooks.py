"""Cheap opt-in observability hooks for the simulator core.

Everything here is callback-gauge based: attaching an observer stores a
bound method in the registry and the observed object's hot path is
untouched — the values are read only when a snapshot is taken.  The one
exception is the relation scan timer, which the relation itself guards
behind a single ``is None`` check per extension call
(:meth:`repro.core.relation.MonitorRelation.observe`).
"""

from __future__ import annotations

from .registry import MetricsRegistry

__all__ = ["observe_simulator", "observe_condition", "observe_relation"]


def observe_simulator(registry: MetricsRegistry, sim, prefix: str = "sim.engine"):
    """Register engine gauges: events processed, pending, heap compactions."""
    registry.gauge(f"{prefix}.events_processed", fn=lambda: sim.processed_events)
    registry.gauge(f"{prefix}.pending_events", fn=sim.pending_events)
    registry.gauge(f"{prefix}.cancelled_pending", fn=sim.cancelled_pending)
    registry.gauge(f"{prefix}.heap_compactions", fn=lambda: sim.heap_compactions)
    return registry


def observe_condition(
    registry: MetricsRegistry, condition, prefix: str = "sim.condition"
):
    """Register the consistency-condition hash-evaluation gauge."""
    registry.gauge(f"{prefix}.hash_evaluations", fn=lambda: condition.hash_evaluations)
    return registry


def observe_relation(
    registry: MetricsRegistry, relation, prefix: str = "sim.relation"
):
    """Attach relation scan instrumentation (counters + wall timer + gauges)."""
    relation.observe(registry, prefix)
    return registry
