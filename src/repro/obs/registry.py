"""Process-wide metrics registry with a deterministic / wall-clock split.

The registry is the single sink every subsystem (simulator engine, fleet
orchestrator, store daemon, serving surface) emits through.  Metrics carry
a *kind*:

- ``DETERMINISTIC`` — counts that are a pure function of the seeded run
  (events processed, hash evaluations, retries, cache hits).  Snapshots of
  this slice are byte-equal across identical seeded runs and are gated in
  CI exactly like the bench counters.
- ``WALL`` — anything measured against a real clock (latencies, scan
  phase durations).  Structurally excluded from deterministic snapshots
  so timing noise can never leak into the compared bytes.

Three metric shapes cover the repo's needs: :class:`Counter` (monotonic
int), :class:`Gauge` (set value *or* a zero-cost callback evaluated only
at snapshot time), and :class:`Histogram` (bounded sliding window with
nearest-rank percentiles — the generalisation of the serving tier's
latency tracker).
"""

from __future__ import annotations

import json
import re
import threading
from typing import Callable, Dict, List, Optional, Union

__all__ = [
    "DETERMINISTIC",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

DETERMINISTIC = "deterministic"
WALL = "wall"

_KINDS = (DETERMINISTIC, WALL)


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "kind", "value")

    def __init__(self, name: str, kind: str = DETERMINISTIC) -> None:
        self.name = name
        self.kind = kind
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot_value(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.kind!r}, value={self.value})"


class Gauge:
    """Point-in-time value: either explicitly ``set()`` or a callback.

    Callback gauges are the zero-cost hook shape: the observed object
    pays nothing on its hot path; the function runs only when a snapshot
    is taken.
    """

    __slots__ = ("name", "kind", "_value", "_fn")

    def __init__(
        self,
        name: str,
        kind: str = DETERMINISTIC,
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self._value: Union[int, float] = 0
        self._fn = fn

    def set(self, value: Union[int, float]) -> None:
        self._fn = None
        self._value = value

    def set_function(self, fn: Callable[[], Union[int, float]]) -> None:
        self._fn = fn

    @property
    def value(self) -> Union[int, float]:
        if self._fn is not None:
            return self._fn()
        return self._value

    def snapshot_value(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.kind!r})"


class Histogram:
    """Bounded sliding-window histogram with nearest-rank percentiles.

    Keeps the most recent ``window`` observations in a ring plus running
    ``count``/``total`` over the full stream.  ``percentile`` sorts the
    window on demand — observation stays O(1).
    """

    __slots__ = ("name", "kind", "window", "count", "total", "_samples", "_next")

    def __init__(self, name: str, kind: str = WALL, window: int = 2048) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.kind = kind
        self.window = window
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []
        self._next = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) < self.window:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % self.window

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * q // 100))
        return ordered[int(rank) - 1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_value(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(50), 6),
            "p95": round(self.percentile(95), 6),
            "p99": round(self.percentile(99), 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, {self.kind!r}, count={self.count})"


Metric = Union[Counter, Gauge, Histogram]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "avmon_" + sanitized


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    Thread-safe for creation (fleet heartbeat pumps run on threads);
    individual increments are plain int ops under the GIL.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- creation -------------------------------------------------------
    def _get_or_create(self, name, kind, cls, factory):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
                return metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered with kind {metric.kind!r}"
            )
        return metric

    def counter(self, name: str, kind: str = DETERMINISTIC) -> Counter:
        return self._get_or_create(name, kind, Counter, lambda: Counter(name, kind))

    def gauge(
        self,
        name: str,
        kind: str = DETERMINISTIC,
        fn: Optional[Callable[[], Union[int, float]]] = None,
    ) -> Gauge:
        gauge = self._get_or_create(name, kind, Gauge, lambda: Gauge(name, kind))
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(self, name: str, kind: str = WALL, window: int = 2048) -> Histogram:
        return self._get_or_create(
            name, kind, Histogram, lambda: Histogram(name, kind, window)
        )

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally built metric (e.g. a latency tracker)."""
        if metric.kind not in _KINDS:
            raise ValueError(f"unknown metric kind {metric.kind!r}")
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
        if existing is not metric:
            raise ValueError(f"metric {metric.name!r} already registered")
        return metric

    # -- introspection --------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # -- snapshots ------------------------------------------------------
    def snapshot(self, kind: Optional[str] = None) -> Dict[str, object]:
        """``{name: value}`` sorted by name, optionally filtered by kind."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if kind is not None and metric.kind != kind:
                continue
            out[name] = metric.snapshot_value()
        return out

    def deterministic_snapshot(self) -> Dict[str, object]:
        return self.snapshot(DETERMINISTIC)

    def wall_snapshot(self) -> Dict[str, object]:
        return self.snapshot(WALL)

    def deterministic_json(self) -> str:
        """Canonical JSON of the deterministic slice — the CI-gated bytes."""
        return json.dumps(
            self.deterministic_snapshot(), sort_keys=True, separators=(",", ":")
        )

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            "deterministic": self.deterministic_snapshot(),
            "wall": self.wall_snapshot(),
        }

    # -- prometheus -----------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric in the registry."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            prom = _prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {prom} counter")
                lines.append(f'{prom}{{kind="{metric.kind}"}} {metric.value}')
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f'{prom}{{kind="{metric.kind}"}} {metric.value}')
            else:
                lines.append(f"# TYPE {prom} summary")
                for q in (50, 95, 99):
                    lines.append(
                        f'{prom}{{kind="{metric.kind}",quantile="0.{q}"}} '
                        f"{metric.percentile(q)}"
                    )
                lines.append(f"{prom}_sum {metric.total}")
                lines.append(f"{prom}_count {metric.count}")
        return "\n".join(lines) + "\n"


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
