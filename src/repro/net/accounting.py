"""Per-node bandwidth accounting.

Section 5.4 plots the CDF of per-node *outgoing* bytes per second, so the
network charges each sent message's wire size to the sender at send time
(whether or not the destination turns out to be alive — the bytes leave the
NIC either way).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

__all__ = ["BandwidthAccountant"]


class BandwidthAccountant:
    """Accumulates outgoing bytes and message counts per node."""

    def __init__(self) -> None:
        self._bytes_out: Dict[int, int] = defaultdict(int)
        self._messages_out: Dict[int, int] = defaultdict(int)
        self.total_bytes = 0
        self.total_messages = 0

    def charge(self, sender: int, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        self._bytes_out[sender] += size_bytes
        self._messages_out[sender] += 1
        self.total_bytes += size_bytes
        self.total_messages += 1

    def bytes_out(self, node: int) -> int:
        return self._bytes_out.get(node, 0)

    def messages_out(self, node: int) -> int:
        return self._messages_out.get(node, 0)

    def rate_bps(self, node: int, duration: float) -> float:
        """Average outgoing bytes/second for *node* over *duration*."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self._bytes_out.get(node, 0) / duration

    def nodes(self):
        return self._bytes_out.keys()

    def snapshot(self) -> Dict[int, int]:
        """Copy of the per-node byte counters (for windowed measurement)."""
        return dict(self._bytes_out)
