"""Per-node bandwidth accounting.

Section 5.4 plots the CDF of per-node *outgoing* bytes per second, so the
network charges each sent message's wire size to the sender at send time
(whether or not the destination turns out to be alive — the bytes leave the
NIC either way).

Counters are kept as one ``[bytes, messages]`` entry per sender — a single
dict probe per charge, which matters because every simulated message is
charged exactly once.  Totals are derived on demand.  Entry insertion order
is first-charge order; :meth:`snapshot` preserves it, and downstream series
(the bandwidth CDF in the run summary) depend on that order being stable.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["BandwidthAccountant"]


class BandwidthAccountant:
    """Accumulates outgoing bytes and message counts per node."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        #: sender -> [bytes_out, messages_out], in first-charge order.
        self._entries: Dict[int, List[int]] = {}

    def charge(self, sender: int, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        entry = self._entries.get(sender)
        if entry is None:
            self._entries[sender] = [size_bytes, 1]
        else:
            entry[0] += size_bytes
            entry[1] += 1

    @property
    def total_bytes(self) -> int:
        return sum(entry[0] for entry in self._entries.values())

    @property
    def total_messages(self) -> int:
        return sum(entry[1] for entry in self._entries.values())

    def bytes_out(self, node: int) -> int:
        entry = self._entries.get(node)
        return entry[0] if entry is not None else 0

    def messages_out(self, node: int) -> int:
        entry = self._entries.get(node)
        return entry[1] if entry is not None else 0

    def rate_bps(self, node: int, duration: float) -> float:
        """Average outgoing bytes/second for *node* over *duration*."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return self.bytes_out(node) / duration

    def nodes(self):
        return self._entries.keys()

    def snapshot(self) -> Dict[int, int]:
        """Copy of the per-node byte counters (for windowed measurement)."""
        return {node: entry[0] for node, entry in self._entries.items()}
