"""Simulated network substrate: transport, latency models, accounting."""

from .accounting import BandwidthAccountant
from .latency import ConstantLatency, LatencyModel, LogNormalLatency, UniformLatency
from .network import Network, SimHost

__all__ = [
    "BandwidthAccountant",
    "ConstantLatency",
    "LatencyModel",
    "LogNormalLatency",
    "Network",
    "SimHost",
    "UniformLatency",
]
