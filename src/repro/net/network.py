"""Simulated message-passing network and per-node hosts.

:class:`Network` owns the registry of hosts, tracks which are alive,
delivers messages with a sampled latency, and charges outgoing bytes to
senders.  Delivery is gated on *destination* aliveness at arrival time —
messages to departed nodes vanish silently, which is what makes ping
timeouts (and therefore coarse-view pruning, forgetful pinging and
availability measurement) behave as in a real deployment.

:class:`SimHost` adapts a protocol node (an
:class:`~repro.core.node.AvmonNode` or a baseline node) to the simulator:
it implements the :class:`~repro.core.node.NodeRuntime` interface, guards
message handling and timer callbacks on aliveness, and manages the node's
periodic processes across leaves and rejoins.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..core.hashing import NodeId
from ..core.messages import Message
from ..live.faults import FaultInjector
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from .accounting import BandwidthAccountant
from .latency import LatencyModel, UniformLatency

__all__ = ["Network", "SimHost"]


class Network:
    """Latency-delayed, aliveness-gated message fabric with accounting.

    With a :class:`~repro.live.faults.FaultInjector` attached, every
    message additionally runs through the same loss/duplication/delay/
    partition decisions the live transports make — the sim half of the
    sim-vs-live fault conformance matrix.  Without one, behaviour (and the
    RNG stream, hence every cache key's payload) is exactly as before.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        entry_bytes: int = 8,
        fault: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else UniformLatency()
        self.rng = rng if rng is not None else random.Random(0)
        self.entry_bytes = entry_bytes
        self.fault = fault
        self.accountant = BandwidthAccountant()
        self._hosts: Dict[NodeId, "SimHost"] = {}
        self._alive_list: List[NodeId] = []
        self._alive_pos: Dict[NodeId, int] = {}
        #: Messages whose destination was down at delivery time.
        self.dropped_messages = 0
        #: Messages the fault injector decided to lose.
        self.fault_dropped = 0
        #: Total messages handed to the network.
        self.sent_messages = 0

    # -- registry ----------------------------------------------------------

    def register(self, host: "SimHost") -> None:
        if host.id in self._hosts:
            raise ValueError(f"host {host.id} already registered")
        self._hosts[host.id] = host

    def host(self, node_id: NodeId) -> "SimHost":
        return self._hosts[node_id]

    def hosts(self):
        return self._hosts.values()

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._hosts

    # -- aliveness ----------------------------------------------------------

    def set_alive(self, node_id: NodeId, alive: bool) -> None:
        currently = node_id in self._alive_pos
        if alive and not currently:
            self._alive_pos[node_id] = len(self._alive_list)
            self._alive_list.append(node_id)
        elif not alive and currently:
            position = self._alive_pos.pop(node_id)
            last = self._alive_list[-1]
            self._alive_list[position] = last
            if last != node_id:
                self._alive_pos[last] = position
            self._alive_list.pop()

    def is_alive(self, node_id: NodeId) -> bool:
        return node_id in self._alive_pos

    def alive_count(self) -> int:
        return len(self._alive_list)

    def alive_ids(self) -> tuple:
        return tuple(self._alive_list)

    def random_alive(self, exclude: Optional[NodeId] = None) -> Optional[NodeId]:
        """Uniform random alive node id, excluding *exclude* (may be None)."""
        population = len(self._alive_list)
        if population == 0:
            return None
        if population == 1:
            only = self._alive_list[0]
            return None if only == exclude else only
        while True:
            candidate = self._alive_list[self.rng.randrange(population)]
            if candidate != exclude:
                return candidate

    # -- transport ----------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Charge *src* for the bytes and deliver to *dst* after a delay.

        Bytes are charged before fault injection: loss happens in the
        network, after the sender paid to transmit.
        """
        self.sent_messages += 1
        self.accountant.charge(src, message.size_bytes(self.entry_bytes))
        delay = self.latency.sample(self.rng)
        if self.fault is None:
            self.sim.schedule(delay, lambda: self._deliver(dst, message))
            return
        deliveries = self.fault.plan_delivery(src, dst, self.sim.now)
        if not deliveries:
            self.fault_dropped += 1
            return
        for extra in deliveries:
            self.sim.schedule(
                delay + extra, lambda: self._deliver(dst, message)
            )

    def _deliver(self, dst: NodeId, message: Message) -> None:
        host = self._hosts.get(dst)
        if host is None or not host.alive:
            self.dropped_messages += 1
            return
        host.deliver(message)


class SimHost:
    """One machine: aliveness, runtime services and periodic processes."""

    def __init__(self, network: Network, node_id: NodeId, rng: random.Random) -> None:
        self.network = network
        self.id = node_id
        self.rng = rng
        self.alive = False
        #: Permanently departed (death is silent but final).
        self.dead = False
        self.node = None
        self._processes: List[PeriodicProcess] = []
        network.register(self)

    # -- wiring ----------------------------------------------------------------

    def attach(self, node) -> None:
        """Bind the protocol node handled by this host."""
        self.node = node

    def add_periodic(self, period: float, callback: Callable[[], None]) -> PeriodicProcess:
        """Register a periodic process gated on this host's aliveness."""
        process = PeriodicProcess(
            self.network.sim, period, callback, guard=lambda: self.alive
        )
        self._processes.append(process)
        return process

    # -- NodeRuntime interface ----------------------------------------------------

    def now(self) -> float:
        return self.network.sim.now

    def send(self, dst: NodeId, message: Message) -> None:
        if not self.alive:
            return
        self.network.send(self.id, dst, message)

    def schedule(self, delay: float, callback: Callable[[], None]):
        """Timer that only fires while this host is alive."""

        def guarded() -> None:
            if self.alive:
                callback()

        return self.network.sim.schedule(delay, guarded)

    def choose_bootstrap(self, exclude: NodeId) -> Optional[NodeId]:
        return self.network.random_alive(exclude=exclude)

    def target_in_system(self, node: NodeId) -> bool:
        return self.network.is_alive(node)

    # -- lifecycle -------------------------------------------------------------

    def bring_up(self) -> None:
        """Mark alive and (re)start periodic processes with fresh phases."""
        if self.dead:
            raise RuntimeError(f"host {self.id} is dead and cannot come back")
        if self.alive:
            return
        self.alive = True
        self.network.set_alive(self.id, True)
        for process in self._processes:
            process.start(self.rng)

    def take_down(self, *, death: bool = False) -> None:
        """Mark departed; silently stops responding, per the system model."""
        if not self.alive:
            if death:
                self.dead = True
            return
        self.alive = False
        self.network.set_alive(self.id, False)
        for process in self._processes:
            process.stop()
        if death:
            self.dead = True
        if self.node is not None and hasattr(self.node, "on_leave"):
            self.node.on_leave(self.network.sim.now)

    def deliver(self, message: Message) -> None:
        if self.alive and self.node is not None:
            self.node.handle_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else ("up" if self.alive else "down")
        return f"SimHost(id={self.id}, {state})"
