"""Simulated message-passing network and per-node hosts.

:class:`Network` owns the registry of hosts, tracks which are alive,
delivers messages with a sampled latency, and charges outgoing bytes to
senders.  Delivery is gated on *destination* aliveness at arrival time —
messages to departed nodes vanish silently, which is what makes ping
timeouts (and therefore coarse-view pruning, forgetful pinging and
availability measurement) behave as in a real deployment.

:class:`SimHost` adapts a protocol node (an
:class:`~repro.core.node.AvmonNode` or a baseline node) to the simulator:
it implements the :class:`~repro.core.node.NodeRuntime` interface, guards
message handling and timer callbacks on aliveness, and manages the node's
periodic processes across leaves and rejoins.
"""

from __future__ import annotations

import random
from heapq import heappush
from typing import Callable, Dict, List, Optional

from ..core.hashing import NodeId
from ..core.messages import Message
from ..live.faults import FaultInjector
from ..sim.engine import Simulator
from ..sim.process import PeriodicProcess
from .accounting import BandwidthAccountant
from .latency import LatencyModel, UniformLatency

__all__ = ["Network", "SimHost"]


class Network:
    """Latency-delayed, aliveness-gated message fabric with accounting.

    With a :class:`~repro.live.faults.FaultInjector` attached, every
    message additionally runs through the same loss/duplication/delay/
    partition decisions the live transports make — the sim half of the
    sim-vs-live fault conformance matrix.  Without one, behaviour (and the
    RNG stream, hence every cache key's payload) is exactly as before.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        rng: Optional[random.Random] = None,
        entry_bytes: int = 8,
        fault: Optional[FaultInjector] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else UniformLatency()
        self.rng = rng if rng is not None else random.Random(0)
        self.entry_bytes = entry_bytes
        self.fault = fault
        self.accountant = BandwidthAccountant()
        # Per-message hot-path bindings: one latency sampler closure for the
        # whole run (consumes the identical RNG stream as latency.sample)
        # and the delivery closure pushed into every heap entry.  Wire sizes
        # are memoised per message type for the types that declare a fixed
        # layout.
        self._sample_latency = self.latency.bind(self.rng)
        self._size_cache: Dict[type, int] = {}
        self._hosts: Dict[NodeId, "SimHost"] = {}
        self._alive_list: List[NodeId] = []
        self._alive_pos: Dict[NodeId, int] = {}
        #: Messages whose destination was down at delivery time.
        self.dropped_messages = 0
        #: Messages the fault injector decided to lose.
        self.fault_dropped = 0
        self._deliver_bound = self._make_deliver()

    @property
    def sent_messages(self) -> int:
        """Total messages handed to the network (fault losses included).

        Every send is charged to the accountant exactly once before fault
        injection, so the accountant's message total *is* this counter —
        derived here instead of paying an extra increment per send.
        """
        return self.accountant.total_messages

    # -- registry ----------------------------------------------------------

    def register(self, host: "SimHost") -> None:
        if host.id in self._hosts:
            raise ValueError(f"host {host.id} already registered")
        self._hosts[host.id] = host

    def host(self, node_id: NodeId) -> "SimHost":
        return self._hosts[node_id]

    def hosts(self):
        return self._hosts.values()

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._hosts

    # -- aliveness ----------------------------------------------------------

    def set_alive(self, node_id: NodeId, alive: bool) -> None:
        currently = node_id in self._alive_pos
        if alive and not currently:
            self._alive_pos[node_id] = len(self._alive_list)
            self._alive_list.append(node_id)
        elif not alive and currently:
            position = self._alive_pos.pop(node_id)
            last = self._alive_list[-1]
            self._alive_list[position] = last
            if last != node_id:
                self._alive_pos[last] = position
            self._alive_list.pop()

    def is_alive(self, node_id: NodeId) -> bool:
        return node_id in self._alive_pos

    def alive_count(self) -> int:
        return len(self._alive_list)

    def alive_ids(self) -> tuple:
        return tuple(self._alive_list)

    def random_alive(self, exclude: Optional[NodeId] = None) -> Optional[NodeId]:
        """Uniform random alive node id, excluding *exclude* (may be None)."""
        population = len(self._alive_list)
        if population == 0:
            return None
        if population == 1:
            only = self._alive_list[0]
            return None if only == exclude else only
        while True:
            candidate = self._alive_list[self.rng.randrange(population)]
            if candidate != exclude:
                return candidate

    # -- transport ----------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Charge *src* for the bytes and deliver to *dst* after a delay.

        Bytes are charged before fault injection: loss happens in the
        network, after the sender paid to transmit.

        This is the reference implementation; node-originated traffic goes
        through the per-host closure built by :meth:`_make_host_send`, which
        inlines the same logic (both consume one latency sample and one
        engine sequence number per delivery, so the two entry points are
        interchangeable without perturbing the run).
        """
        size = self._size_cache.get(message.__class__)
        if size is None:
            size = message.size_bytes(self.entry_bytes)
            if message.fixed_wire_size:
                self._size_cache[message.__class__] = size
        self.accountant.charge(src, size)
        delay = self._sample_latency()
        if self.fault is None:
            self.sim.schedule_call(delay, self._deliver_bound, dst, message)
            return
        deliveries = self.fault.plan_delivery(src, dst, self.sim.now)
        if not deliveries:
            self.fault_dropped += 1
            return
        for extra in deliveries:
            self.sim.schedule_call(delay + extra, self._deliver_bound, dst, message)

    def _make_deliver(self):
        """Delivery closure: every binding it needs is a local or cell var.

        Replaces what was a bound method doing four ``self`` attribute
        chases per message; ``_hosts``'s identity is stable, so the bound
        ``get`` stays valid as hosts register.
        """
        network = self
        hosts_get = self._hosts.get

        def deliver(dst: NodeId, message: Message) -> None:
            host = hosts_get(dst)
            if host is None or not host.alive:
                network.dropped_messages += 1
                return
            # Inline of SimHost.deliver (the per-message call stack matters
            # at scale); aliveness was checked above.
            node = host.node
            if node is not None:
                node.handle_message(message)

        return deliver

    def _make_host_send(self, host: "SimHost"):
        """Build the per-host send closure used as ``SimHost.send``.

        One Python frame per send: the aliveness guard, type-memoised size
        accounting, latency sampling and the heap push are all inlined with
        cell-variable bindings.  Mirrors :meth:`send` exactly (same RNG
        draws, same one-sequence-number-per-delivery contract); the fault
        injector is consulted per send, so attaching or clearing
        ``network.fault`` mid-run affects node traffic immediately, and the
        fault path itself defers to :meth:`send`, keeping that logic in one
        place.
        """
        network = self
        src = host.id
        sim = self.sim
        queue = sim._queue  # identity stable; see the engine module docstring
        next_seq = sim._counter.__next__
        deliver = self._deliver_bound
        size_cache = self._size_cache
        entry_bytes = self.entry_bytes
        entries = self.accountant._entries
        if type(self.latency) is UniformLatency:
            # Inline the uniform sampler: same arithmetic as
            # UniformLatency.bind, one rng.random() per message.
            low = self.latency.low
            span = self.latency.high - self.latency.low
            rng_random = self.rng.random
            sample_inline = True
        else:
            sample_latency = self._sample_latency
            sample_inline = False

        def send(dst: NodeId, message: Message, _heappush=heappush) -> None:
            if not host.alive:
                return
            if network.fault is not None:
                network.send(src, dst, message)
                return
            size = size_cache.get(message.__class__)
            if size is None:
                size = message.size_bytes(entry_bytes)
                if message.fixed_wire_size:
                    size_cache[message.__class__] = size
            entry = entries.get(src)
            if entry is None:
                entries[src] = [size, 1]
            else:
                entry[0] += size
                entry[1] += 1
            if sample_inline:
                delay = low + span * rng_random()  # >= 0 by construction
            elif (delay := sample_latency()) < 0:
                # Keep the engine's non-negative-delay invariant even for
                # custom latency models on the raw-push path.
                raise ValueError(f"latency sample must be non-negative, got {delay}")
            _heappush(queue, (sim.now + delay, next_seq(), deliver, (dst, message)))

        return send


class SimHost:
    """One machine: aliveness, runtime services and periodic processes."""

    def __init__(self, network: Network, node_id: NodeId, rng: random.Random) -> None:
        self.network = network
        self._sim = network.sim
        self.id = node_id
        self.rng = rng
        self.alive = False
        #: Permanently departed (death is silent but final).
        self.dead = False
        self.node = None
        self._processes: List[PeriodicProcess] = []
        network.register(self)
        #: NodeRuntime.send, as a closure over this host (shadows the class
        #: method of the same name): one frame per sent message.
        self.send = network._make_host_send(self)

    # -- wiring ----------------------------------------------------------------

    def attach(self, node) -> None:
        """Bind the protocol node handled by this host."""
        self.node = node

    def add_periodic(self, period: float, callback: Callable[[], None]) -> PeriodicProcess:
        """Register a periodic process gated on this host's aliveness."""
        process = PeriodicProcess(
            self.network.sim, period, callback, guard=lambda: self.alive
        )
        self._processes.append(process)
        return process

    # -- NodeRuntime interface ----------------------------------------------------

    def now(self) -> float:
        return self._sim.now

    def send(self, dst: NodeId, message: Message) -> None:
        # Fallback with the same semantics as the instance-attribute closure
        # assigned in __init__ (kept for subclasses that skip __init__).
        if self.alive:
            self.network.send(self.id, dst, message)

    def schedule(self, delay: float, callback: Callable[..., None], *args):
        """Timer that only fires while this host is alive.

        The aliveness guard is a prebound method carrying *callback* and
        *args* in the heap entry — no per-call closure allocation.
        """
        return self._sim.schedule(delay, self._run_guarded, callback, args)

    def schedule_call(self, delay: float, fn: Callable[..., None], *args) -> None:
        """Fire-and-forget :meth:`schedule`: aliveness-gated, no handle.

        The heap entry is pushed directly (no engine scheduling frame, no
        EventHandle); ping timeouts go through here — one per request sent.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        sim = self._sim
        heappush(
            sim._queue,
            (sim.now + delay, sim._counter.__next__(), self._run_guarded, (fn, args)),
        )

    def _run_guarded(self, callback: Callable[..., None], args: tuple) -> None:
        if self.alive:
            callback(*args)

    def choose_bootstrap(self, exclude: NodeId) -> Optional[NodeId]:
        return self.network.random_alive(exclude=exclude)

    def target_in_system(self, node: NodeId) -> bool:
        return self.network.is_alive(node)

    # -- lifecycle -------------------------------------------------------------

    def bring_up(self) -> None:
        """Mark alive and (re)start periodic processes with fresh phases."""
        if self.dead:
            raise RuntimeError(f"host {self.id} is dead and cannot come back")
        if self.alive:
            return
        self.alive = True
        self.network.set_alive(self.id, True)
        for process in self._processes:
            process.start(self.rng)

    def take_down(self, *, death: bool = False) -> None:
        """Mark departed; silently stops responding, per the system model."""
        if not self.alive:
            if death:
                self.dead = True
            return
        self.alive = False
        self.network.set_alive(self.id, False)
        for process in self._processes:
            process.stop()
        if death:
            self.dead = True
        if self.node is not None and hasattr(self.node, "on_leave"):
            self.node.on_leave(self.network.sim.now)

    def deliver(self, message: Message) -> None:
        if self.alive and self.node is not None:
            self.node.handle_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else ("up" if self.alive else "down")
        return f"SimHost(id={self.id}, {state})"
