"""Network latency models.

The paper assumes "communication between pairs of nodes is reliable and
timely if both nodes are currently alive"; concretely the simulator needs a
one-way delay for each message.  Latencies only matter at sub-second scale
(discovery-time CDFs are measured in seconds), so simple models suffice;
all are pluggable.
"""

from __future__ import annotations

import random

from ..registry import register

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "LogNormalLatency"]


class LatencyModel:
    """Interface: one-way message delay in seconds."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    def bind(self, rng: random.Random):
        """Zero-argument sampler bound to *rng* for the per-message hot path.

        Must consume exactly the same randomness as :meth:`sample` so that
        a run's RNG stream (and therefore its summary) is identical through
        either entry point.  The default wraps :meth:`sample`; subclasses
        override with a closure that skips per-call attribute lookups.
        """
        return lambda: self.sample(rng)


class ConstantLatency(LatencyModel):
    """Every message takes exactly *delay* seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def bind(self, rng: random.Random):
        delay = self.delay
        return lambda: delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay uniform in ``[low, high]`` — the experiments' default."""

    def __init__(self, low: float = 0.02, high: float = 0.1) -> None:
        if low < 0:
            raise ValueError(f"low must be non-negative, got {low}")
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def bind(self, rng: random.Random):
        # Same arithmetic as random.Random.uniform (one random() draw, then
        # ``low + (high - low) * r``), so the float stream is bit-identical.
        low = self.low
        span = self.high - self.low
        random = rng.random
        return lambda: low + span * random()

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Heavy-tailed wide-area delays, truncated at *cap* seconds."""

    def __init__(self, median: float = 0.06, sigma: float = 0.5, cap: float = 1.0):
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        import math

        self.mu = math.log(median)
        self.sigma = sigma
        self.cap = cap

    def sample(self, rng: random.Random) -> float:
        return min(self.cap, rng.lognormvariate(self.mu, self.sigma))

    def bind(self, rng: random.Random):
        mu, sigma, cap = self.mu, self.sigma, self.cap
        lognormvariate = rng.lognormvariate
        return lambda: min(cap, lognormvariate(mu, sigma))

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormalLatency(mu={self.mu:.3f}, sigma={self.sigma}, cap={self.cap})"


register("latency", "CONSTANT", ConstantLatency)
register("latency", "UNIFORM", UniformLatency)
register("latency", "LOGNORMAL", LogNormalLatency)
