"""Benchmark: regenerate the paper's Figure 11 (see DESIGN.md index)."""

from conftest import run_artifact


def test_fig11(benchmark, record_report, shared_cache, scale):
    report = run_artifact(benchmark, record_report, shared_cache, scale, "fig11")
    assert report.strip()
