"""Benchmark: regenerate the paper's Figure 4 (see DESIGN.md index)."""

from conftest import run_artifact


def test_fig4(benchmark, record_report, shared_cache, scale):
    report = run_artifact(benchmark, record_report, shared_cache, scale, "fig4")
    assert report.strip()
